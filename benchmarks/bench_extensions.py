"""Ablation: effect of the Section 7 extensions on the Section 5 workload.

Measures how enabling the optional matcher extensions (OR-range interval
sets, base-table backjoins, complex-expression mapping) changes the number
of substitutes found and the fraction of final plans using views, at a
fixed view count. The paper implements none of these; this quantifies what
its prototype left on the table for this workload.
"""

from __future__ import annotations

import pytest

from repro.core import MatchOptions, ViewMatcher
from repro.optimizer import Optimizer

OPTION_SETS = {
    "prototype": MatchOptions(),
    "or_ranges": MatchOptions(support_or_ranges=True),
    "backjoins": MatchOptions(allow_backjoins=True),
    "all_extensions": MatchOptions(
        support_or_ranges=True,
        allow_backjoins=True,
        map_complex_expressions=True,
    ),
}

VIEWS = 300


@pytest.mark.parametrize("label", sorted(OPTION_SETS))
def test_extension_effect_on_view_usage(benchmark, bench_workload, label):
    options = OPTION_SETS[label]
    matcher = ViewMatcher(bench_workload.catalog, options=options)
    for name, view in bench_workload.views[:VIEWS]:
        matcher.register_view(name, view.statement)
    optimizer = Optimizer(bench_workload.catalog, bench_workload.stats, matcher)

    results = benchmark.pedantic(
        bench_workload.optimize_batch,
        args=(optimizer,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["options"] = label
    benchmark.extra_info["plans_using_views"] = sum(r.uses_view for r in results)
    benchmark.extra_info["substitutes_per_query"] = round(
        sum(r.substitutes_produced for r in results) / len(results), 2
    )
