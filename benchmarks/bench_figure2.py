"""Figure 2: optimization time as a function of the number of views.

Each benchmark measures the optimization of the shared query batch for one
(view count, configuration) cell; the benchmark name encodes the cell, so
the pytest-benchmark table *is* the figure -- four lines (Alt/NoAlt x
Filter/NoFilter) over increasing view counts.

Paper's result: optimization time grows linearly with the number of views;
with the filter tree the increase at 1000 views is ~60%, without it ~110%,
and the absolute per-query time stays low.
"""

from __future__ import annotations

import pytest

from .common import VIEW_COUNTS

CONFIGURATIONS = [
    ("alt_filter", True, True),
    ("noalt_filter", False, True),
    ("alt_nofilter", True, False),
    ("noalt_nofilter", False, False),
]


@pytest.mark.parametrize("views", VIEW_COUNTS)
@pytest.mark.parametrize("label,substitutes,filtered", CONFIGURATIONS)
def test_figure2_optimization_time(
    benchmark, bench_workload, views, label, substitutes, filtered
):
    optimizer = bench_workload.optimizer(
        views, use_filter_tree=filtered, produce_substitutes=substitutes
    )
    results = benchmark.pedantic(
        bench_workload.optimize_batch,
        args=(optimizer,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["views"] = views
    benchmark.extra_info["configuration"] = label
    benchmark.extra_info["queries"] = len(results)
    benchmark.extra_info["plans_using_views"] = sum(r.uses_view for r in results)
