"""Figure 3: time spent inside the view-matching rule vs. total increase.

The benchmark measures, per view count, the full optimization of the query
batch; ``extra_info`` records how much of that time was spent inside the
view-matching rule (filter-tree search + per-candidate tests + substitute
construction), which is the paper's second series.

Paper's result: at 1000 views about half of the optimization-time increase
originates in the view-matching code; with few views, most of it does.
"""

from __future__ import annotations

import pytest

from .common import VIEW_COUNTS


@pytest.mark.parametrize("views", VIEW_COUNTS)
def test_figure3_matching_time_share(benchmark, bench_workload, views):
    optimizer = bench_workload.optimizer(views)
    results = benchmark.pedantic(
        bench_workload.optimize_batch,
        args=(optimizer,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    total = sum(r.optimize_seconds for r in results)
    matching = sum(r.matching_seconds for r in results)
    benchmark.extra_info["views"] = views
    benchmark.extra_info["total_seconds"] = round(total, 4)
    benchmark.extra_info["matching_seconds"] = round(matching, 4)
    benchmark.extra_info["matching_share"] = (
        round(matching / total, 3) if total else 0.0
    )
    benchmark.extra_info["invocations"] = sum(r.invocations for r in results)
