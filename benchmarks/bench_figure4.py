"""Figure 4: number of final query plans using materialized views.

The measured quantity is not a time but a count; the benchmark wraps the
optimization run (so the cost of producing the counts is also visible) and
reports the counts through ``extra_info``.

Paper's result: ~60% of queries use a view in their best plan at 200
views, rising to ~87% at 1000 -- the benefit of additional views tails off.
"""

from __future__ import annotations

import pytest

from .common import VIEW_COUNTS


@pytest.mark.parametrize("views", VIEW_COUNTS)
def test_figure4_plans_using_views(benchmark, bench_workload, views):
    optimizer = bench_workload.optimizer(views)
    results = benchmark.pedantic(
        bench_workload.optimize_batch,
        args=(optimizer,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    using = sum(r.uses_view for r in results)
    benchmark.extra_info["views"] = views
    benchmark.extra_info["plans_using_views"] = using
    benchmark.extra_info["fraction"] = round(using / len(results), 3)
    benchmark.extra_info["substitutes_per_query"] = round(
        sum(r.substitutes_produced for r in results) / len(results), 2
    )
