"""Ablation: per-invocation cost of candidate selection, filter vs. scan.

Separates the two components the paper's Figure 2 conflates: the filter
tree's search time per view-matching invocation, against checking every
registered view with the full matching tests. Also measures registration
(index maintenance) cost, which the paper does not report.
"""

from __future__ import annotations

import pytest

from repro.core import ViewMatcher, describe, match_view
from repro.core.filtertree import FilterTree


@pytest.mark.parametrize("views", [100, 500, 1000])
def test_candidate_selection_with_filter_tree(benchmark, bench_workload, views):
    matcher = bench_workload.matcher(views, use_filter_tree=True)
    catalog = bench_workload.catalog
    descriptions = [
        describe(query, catalog) for query in bench_workload.queries
    ]

    def run():
        return sum(
            len(matcher.filter_tree.candidates(query)) for query in descriptions
        )

    candidates = benchmark(run)
    benchmark.extra_info["views"] = views
    benchmark.extra_info["candidates"] = candidates


@pytest.mark.parametrize("views", [100, 500, 1000])
def test_candidate_selection_by_full_scan(benchmark, bench_workload, views):
    matcher = bench_workload.matcher(views, use_filter_tree=False)
    catalog = bench_workload.catalog
    registered = matcher.registered_views()
    descriptions = [
        describe(query, catalog) for query in bench_workload.queries
    ]

    def run():
        matches = 0
        for query in descriptions:
            for view in registered:
                if match_view(query, view.description).matched:
                    matches += 1
        return matches

    matches = benchmark(run)
    benchmark.extra_info["views"] = views
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("views", [100, 500, 1000])
def test_view_registration(benchmark, bench_workload, views):
    catalog = bench_workload.catalog
    pool = bench_workload.views[:views]

    def register_all():
        tree = FilterTree()
        matcher = ViewMatcher(catalog)
        matcher.filter_tree = tree
        for name, view in pool:
            matcher.register_view(name, view.statement)
        return matcher.view_count

    count = benchmark.pedantic(register_all, rounds=1, iterations=1, warmup_rounds=0)
    assert count == views
    benchmark.extra_info["views"] = views
