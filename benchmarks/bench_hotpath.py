"""Hot-path benchmark: bitset-interned candidate filtering, before/after.

Times one filter-tree ``candidates`` call and one full ``match``
invocation at 100/500/1000 registered views, comparing the interned
bitset path and registration-time match contexts against the frozenset
reference path with per-invocation context rebuilds. Both modes are
cross-checked to return identical candidate sets and matcher statistics
before anything is timed. Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke         # CI, seconds
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke \\
        --check-baseline BENCH_matching.json                          # CI gate

``--output`` writes the machine-readable report (the repository commits
it as ``BENCH_matching.json``); ``--check-baseline`` exits non-zero when
candidate filtering at the largest shared view count is more than 2x
slower than the committed baseline. ``--check-overhead`` applies the
much tighter disabled-tracing guard (calibration-normalized; run the
full sweep, not ``--smoke``, so the configuration matches the
baseline's). The module is also collectable by pytest (one smoke-sized
test), like the other bench files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    HotpathConfig,
    check_against_baseline,
    check_tracing_overhead,
    run_hotpath_benchmark,
)
from repro.experiments.hotpath import write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration finishing in seconds (CI); still "
        "measures the gated 1000-view point",
    )
    parser.add_argument(
        "--views",
        type=int,
        nargs="+",
        default=None,
        help="view counts to sweep (default 100 500 1000)",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--check-baseline",
        default=None,
        metavar="JSON",
        help="committed BENCH_matching.json to gate regressions against",
    )
    parser.add_argument(
        "--check-overhead",
        default=None,
        metavar="JSON",
        help="baseline for the disabled-tracing overhead guard "
        "(calibration-normalized; needs matching sweep configuration)",
    )
    parser.add_argument(
        "--overhead-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="override the overhead budget (default 0.05; CI uses more "
        "to absorb shared-runner scheduling noise)",
    )
    arguments = parser.parse_args(argv)

    config = HotpathConfig.smoke() if arguments.smoke else HotpathConfig()
    import dataclasses

    overrides = {}
    if arguments.views is not None:
        overrides["view_counts"] = tuple(arguments.views)
    if arguments.queries is not None:
        overrides["query_count"] = arguments.queries
    if arguments.seed is not None:
        overrides["seed"] = arguments.seed
    if overrides:
        config = dataclasses.replace(config, **overrides)

    report = run_hotpath_benchmark(config)
    if arguments.output:
        write_report(report, arguments.output)
        print(f"report written to {arguments.output}")

    failures = []
    if arguments.check_baseline:
        with open(arguments.check_baseline) as handle:
            baseline = json.load(handle)
        failures += check_against_baseline(report, baseline)
    if arguments.check_overhead:
        with open(arguments.check_overhead) as handle:
            baseline = json.load(handle)
        kwargs = (
            {}
            if arguments.overhead_tolerance is None
            else {"tolerance": arguments.overhead_tolerance}
        )
        failures += check_tracing_overhead(report, baseline, **kwargs)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def test_hotpath_bench_smoke():
    """Pytest entry point: modes agree and interning is not slower."""
    config = HotpathConfig(
        view_counts=(60,),
        query_count=6,
        filter_repetitions=3,
        filter_runs=1,
        match_repetitions=1,
    )
    report = run_hotpath_benchmark(config, echo=None)
    (entry,) = report["sizes"]
    assert entry["modes_identical"]
    assert entry["funnel"]["invocations"] == 6
    # Identical-result verification ran inside run_hotpath_benchmark; a
    # timing assertion here would be flaky, so only sanity-check shape.
    assert entry["candidate_filter_us"]["interned"] > 0
    assert entry["candidate_filter_us"]["reference"] > 0


if __name__ == "__main__":
    sys.exit(main())
