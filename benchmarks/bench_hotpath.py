"""Hot-path benchmark: bitset-interned candidate filtering, before/after.

Times one filter-tree ``candidates`` call and one full ``match``
invocation at 100/500/1000 registered views, comparing the interned
bitset path and registration-time match contexts against the frozenset
reference path with per-invocation context rebuilds. Both modes are
cross-checked to return identical candidate sets and matcher statistics
before anything is timed. Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke         # CI, seconds
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke \\
        --check-baseline BENCH_matching.json                          # CI gate

Each size point also times single-pass probe compilation against the
preserved reference pipeline, and the sweep finishes with an end-to-end
serving comparison: the legacy sequential submit loop against batched
``rewrite_many`` through the sharded ``ViewServer`` stack.

``--output`` writes the machine-readable report (the repository commits
it as ``BENCH_matching.json``); ``--check-baseline`` exits non-zero when
candidate filtering at the largest shared view count is more than 2x
slower than the committed baseline, or probe building more than 25 %
slower (calibration-normalized). ``--check-overhead`` applies the much
tighter disabled-tracing guard (calibration-normalized; run the full
sweep, not ``--smoke``, so the configuration matches the baseline's).
``--check-speedups`` enforces the absolute floors: probe compilation
>=2x over the reference pipeline and batched rewriting >=2x over the
sequential loop (the latter needs a multi-core host; single-core hosts
only require batching not to lose). ``--profile N`` skips timing and
prints cProfile top-N tables for the probe-build and full-match phases.
The module is also collectable by pytest (one smoke-sized test), like
the other bench files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    HotpathConfig,
    check_against_baseline,
    check_pool_slo,
    check_speedup_gates,
    check_tracing_overhead,
    profile_hotpath,
    run_hotpath_benchmark,
)
from repro.experiments.hotpath import write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration finishing in seconds (CI); still "
        "measures the gated 1000-view point",
    )
    parser.add_argument(
        "--views",
        type=int,
        nargs="+",
        default=None,
        help="view counts to sweep (default 100 500 1000)",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--catalog-scale",
        type=int,
        default=None,
        metavar="N",
        help="override the catalog-scale point's view count (default "
        "100000 in the full sweep, disabled in --smoke; 0 disables)",
    )
    parser.add_argument(
        "--pool-views",
        type=int,
        default=None,
        metavar="N",
        help="override the serving-pool point's view count (default "
        "1000 in the full sweep, 40 in --smoke; 0 disables)",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--check-baseline",
        default=None,
        metavar="JSON",
        help="committed BENCH_matching.json to gate regressions against",
    )
    parser.add_argument(
        "--check-overhead",
        default=None,
        metavar="JSON",
        help="baseline for the disabled-tracing overhead guard "
        "(calibration-normalized; needs matching sweep configuration)",
    )
    parser.add_argument(
        "--overhead-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="override the overhead budget (default 0.05; CI uses more "
        "to absorb shared-runner scheduling noise)",
    )
    parser.add_argument(
        "--check-speedups",
        action="store_true",
        help="fail unless probe building is >=2x the reference pipeline "
        "and batched rewriting >=2x the sequential loop (needs >=2 cores)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="skip the benchmark; print cProfile top-N tables for the "
        "probe-build and full-match phases",
    )
    arguments = parser.parse_args(argv)

    config = HotpathConfig.smoke() if arguments.smoke else HotpathConfig()
    import dataclasses

    overrides = {}
    if arguments.views is not None:
        overrides["view_counts"] = tuple(arguments.views)
    if arguments.queries is not None:
        overrides["query_count"] = arguments.queries
    if arguments.seed is not None:
        overrides["seed"] = arguments.seed
    if arguments.catalog_scale is not None:
        overrides["catalog_scale_views"] = arguments.catalog_scale
    if arguments.pool_views is not None:
        overrides["pool_views"] = arguments.pool_views
    if overrides:
        config = dataclasses.replace(config, **overrides)

    if arguments.profile is not None:
        profile_hotpath(config, top=arguments.profile)
        return 0

    report = run_hotpath_benchmark(config)
    if arguments.output:
        write_report(report, arguments.output)
        print(f"report written to {arguments.output}")

    failures = []
    if arguments.check_baseline:
        with open(arguments.check_baseline) as handle:
            baseline = json.load(handle)
        failures += check_against_baseline(report, baseline)
    if arguments.check_overhead:
        with open(arguments.check_overhead) as handle:
            baseline = json.load(handle)
        kwargs = (
            {}
            if arguments.overhead_tolerance is None
            else {"tolerance": arguments.overhead_tolerance}
        )
        failures += check_tracing_overhead(report, baseline, **kwargs)
    if arguments.check_speedups:
        failures += check_speedup_gates(report)
        failures += check_pool_slo(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def test_hotpath_bench_smoke():
    """Pytest entry point: modes agree and interning is not slower."""
    config = HotpathConfig(
        view_counts=(60,),
        query_count=6,
        filter_repetitions=3,
        filter_runs=1,
        match_repetitions=1,
        probe_repetitions=3,
        probe_runs=1,
        end_to_end_view_counts=(120,),
        end_to_end_runs=1,
        catalog_scale_views=0,  # the 100k point is not a smoke test
        pool_views=30,
        pool_queries=4,
        pool_passes=2,
        pool_scale=0.1,
        pool_churn_cycles=1,
    )
    report = run_hotpath_benchmark(config, echo=None)
    (entry,) = report["sizes"]
    assert entry["modes_identical"]
    assert entry["funnel"]["invocations"] == 6
    # Identical-result verification ran inside run_hotpath_benchmark; a
    # timing assertion here would be flaky, so only sanity-check shape.
    assert entry["candidate_filter_us"]["interned"] > 0
    assert entry["candidate_filter_us"]["reference"] > 0
    assert entry["probe_build_us"]["fast"] > 0
    assert entry["probe_build_us"]["reference"] > 0
    # The batched path must return the same rewrites as the legacy loop
    # (verified inside _run_end_to_end; an end-to-end timing assertion
    # would be flaky on shared runners).
    (served,) = report["end_to_end"]
    assert served["modes_identical"]
    # The serving-pool point ran both modes to completion without
    # shedding or erroring (ratios are timing, so not asserted here).
    pool = report["serving_pool"]
    assert pool["pool"]["failures"] == 0
    assert pool["fork_batch"]["failures"] == 0
    assert pool["pool"]["served"] == pool["fork_batch"]["served"]


if __name__ == "__main__":
    sys.exit(main())
