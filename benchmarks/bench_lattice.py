"""Ablation: lattice-index search vs. a linear scan over node keys.

Section 4.1 motivates the lattice index with "we can always do a linear
scan and check every key but this may be slow if the node contains many
keys". This benchmark quantifies that claim on key populations shaped like
the filter tree's (small sets over a moderate element universe), plus the
cost of building the index.
"""

from __future__ import annotations

import random

import pytest

from repro.core.lattice import LatticeIndex

UNIVERSE = [f"e{i}" for i in range(40)]


def make_keys(count: int, seed: int = 7) -> list[frozenset]:
    rng = random.Random(seed)
    keys = []
    for _ in range(count):
        size = rng.randint(1, 6)
        keys.append(frozenset(rng.sample(UNIVERSE, size)))
    return keys


def make_probes(count: int, seed: int = 11) -> list[frozenset]:
    rng = random.Random(seed)
    probes = []
    for _ in range(count):
        size = rng.randint(2, 10)
        probes.append(frozenset(rng.sample(UNIVERSE, size)))
    return probes


@pytest.mark.parametrize("key_count", [100, 500, 2000])
def test_lattice_subset_search(benchmark, key_count):
    keys = make_keys(key_count)
    probes = make_probes(200)
    index = LatticeIndex()
    for i, key in enumerate(keys):
        index.insert(key, i)

    def search_all():
        return sum(len(index.subsets_of(probe)) for probe in probes)

    total = benchmark(search_all)
    benchmark.extra_info["keys"] = key_count
    benchmark.extra_info["hits"] = total


@pytest.mark.parametrize("key_count", [100, 500, 2000])
def test_linear_scan_subset_search(benchmark, key_count):
    keys = make_keys(key_count)
    probes = make_probes(200)
    distinct = list(set(keys))

    def search_all():
        return sum(
            sum(1 for key in distinct if key <= probe) for probe in probes
        )

    total = benchmark(search_all)
    benchmark.extra_info["keys"] = key_count
    benchmark.extra_info["hits"] = total


@pytest.mark.parametrize("key_count", [100, 500, 2000])
def test_lattice_superset_search(benchmark, key_count):
    keys = make_keys(key_count)
    probes = [frozenset(list(probe)[:2]) for probe in make_probes(200)]
    index = LatticeIndex()
    for i, key in enumerate(keys):
        index.insert(key, i)

    def search_all():
        return sum(len(index.supersets_of(probe)) for probe in probes)

    benchmark(search_all)
    benchmark.extra_info["keys"] = key_count


@pytest.mark.parametrize("key_count", [100, 500, 2000])
def test_lattice_build(benchmark, key_count):
    keys = make_keys(key_count)

    def build():
        index = LatticeIndex()
        for i, key in enumerate(keys):
            index.insert(key, i)
        return index

    index = benchmark(build)
    benchmark.extra_info["keys"] = key_count
    benchmark.extra_info["nodes"] = len(index)
