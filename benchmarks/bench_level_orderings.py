"""Ablation: filter-tree level orderings.

Section 4.3: "The conditions are independent and can be composed in any
order to create a filter tree." Every ordering returns identical candidate
sets (asserted in the tests); this benchmark measures how much the
*search cost* depends on the composition -- putting the most selective
conditions (hubs, source tables) near the root prunes earlier.
"""

from __future__ import annotations

import pytest

from repro.core import describe
from repro.core.filtertree import (
    FilterTree,
    GroupingColumnLevel,
    GroupingExpressionLevel,
    HubLevel,
    OutputColumnLevel,
    OutputExpressionLevel,
    RangeConstraintLevel,
    ResidualLevel,
    SourceTableLevel,
)

ORDERINGS = {
    "paper (hub first)": (
        (HubLevel(), SourceTableLevel(), OutputColumnLevel(), ResidualLevel(),
         RangeConstraintLevel()),
        (HubLevel(), SourceTableLevel(), OutputExpressionLevel(),
         OutputColumnLevel(), ResidualLevel(), RangeConstraintLevel(),
         GroupingExpressionLevel(), GroupingColumnLevel()),
    ),
    "reversed (range first)": (
        (RangeConstraintLevel(), ResidualLevel(), OutputColumnLevel(),
         SourceTableLevel(), HubLevel()),
        (GroupingColumnLevel(), GroupingExpressionLevel(),
         RangeConstraintLevel(), ResidualLevel(), OutputColumnLevel(),
         OutputExpressionLevel(), SourceTableLevel(), HubLevel()),
    ),
    "tables only": (
        (SourceTableLevel(),),
        (SourceTableLevel(),),
    ),
}


@pytest.mark.parametrize("ordering", sorted(ORDERINGS))
def test_level_ordering_search_cost(benchmark, bench_workload, ordering):
    spj_levels, aggregate_levels = ORDERINGS[ordering]
    tree = FilterTree(spj_levels=spj_levels, aggregate_levels=aggregate_levels)
    catalog = bench_workload.catalog
    for name, view in bench_workload.views[:500]:
        tree.register(describe(view.statement, catalog, name=name))
    probes = [describe(q, catalog) for q in bench_workload.queries]

    def search_all():
        return sum(len(tree.candidates(probe)) for probe in probes)

    candidates = benchmark(search_all)
    benchmark.extra_info["ordering"] = ordering
    benchmark.extra_info["candidates"] = candidates
