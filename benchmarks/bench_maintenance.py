"""Incremental maintenance vs. full recomputation.

Quantifies why Section 2's incremental-maintenance rules (count_big,
sum-only aggregates) are worth their restrictions: applying a small delta
to a materialized aggregation view is orders of magnitude cheaper than
recomputing the view from its base tables.
"""

from __future__ import annotations

import pytest

from repro.catalog import tpch_catalog
from repro.datagen import generate_tpch
from repro.engine import Database, execute
from repro.maintenance import ViewMaintainer

VIEW_SQL = (
    "select o_custkey, sum(o_totalprice) as revenue, count_big(*) as cnt "
    "from orders group by o_custkey"
)
JOIN_VIEW_SQL = (
    "select l_partkey, sum(l_quantity) as q, count_big(*) as cnt "
    "from lineitem, orders where l_orderkey = o_orderkey group by l_partkey"
)


def fresh_setup(view_sql: str):
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.002, seed=21)
    maintainer = ViewMaintainer(catalog, database)
    statement = catalog.bind_sql(view_sql)
    maintainer.register("mv", statement)
    return catalog, database, maintainer, statement


def order_rows(start_key: int, count: int):
    return [
        (start_key + i, (i % 200) + 1, "O", 100.0 + i, 9000 + (i % 100),
         "1-URGENT", "Clerk#1", 0, "bench")
        for i in range(count)
    ]


@pytest.mark.parametrize("batch", [1, 10, 100])
def test_incremental_insert(benchmark, batch):
    catalog, database, maintainer, _ = fresh_setup(VIEW_SQL)
    state = {"next_key": 10_000_000}

    def run():
        rows = order_rows(state["next_key"], batch)
        state["next_key"] += batch
        maintainer.insert("orders", rows)

    benchmark(run)
    benchmark.extra_info["batch"] = batch


@pytest.mark.parametrize("batch", [1, 10, 100])
def test_recompute_after_insert(benchmark, batch):
    catalog, database, maintainer, statement = fresh_setup(VIEW_SQL)
    state = {"next_key": 10_000_000}

    def run():
        rows = order_rows(state["next_key"], batch)
        state["next_key"] += batch
        relation = database.relation("orders")
        relation.rows.extend(rows)
        relation.bump_version()
        result = execute(statement, database)
        database.store("mv", database.relation("mv").columns, result.rows)

    benchmark(run)
    benchmark.extra_info["batch"] = batch


def test_incremental_insert_join_view(benchmark):
    catalog, database, maintainer, _ = fresh_setup(JOIN_VIEW_SQL)
    state = {"next_key": 10_000_000}

    def run():
        # New lineitems referencing existing orders/parts.
        rows = [
            (
                (state["next_key"] + i) % database.row_count("orders") + 1,
                (i % 100) + 1,
                1,
                7,
                3.0,
                500.0,
                0.01,
                0.02,
                "N",
                "O",
                9100,
                9100,
                9105,
                "NONE",
                "MAIL",
                "bench",
            )
            for i in range(10)
        ]
        state["next_key"] += 10
        maintainer.insert("lineitem", rows)

    benchmark(run)


def test_incremental_delete(benchmark):
    catalog, database, maintainer, _ = fresh_setup(VIEW_SQL)
    # Pre-insert a large pool of deletable rows.
    pool = order_rows(20_000_000, 3000)
    maintainer.insert("orders", pool)
    state = {"cursor": 0}

    def run():
        start = state["cursor"]
        state["cursor"] += 10
        maintainer.delete("orders", pool[start : start + 10])

    benchmark.pedantic(run, rounds=100, iterations=1, warmup_rounds=0)
