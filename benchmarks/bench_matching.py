"""Micro-benchmarks of one view-matching test (match_view).

Grounds the paper's claim that the per-candidate tests are cheap enough to
run on a filtered candidate set: a single match -- including equivalence
classes, the three subsumption tests and substitute construction -- costs
tens of microseconds, which is why the filter tree's 100-1000x candidate
reduction dominates end-to-end behaviour.
"""

from __future__ import annotations

import pytest

from repro.catalog import tpch_catalog
from repro.core import describe, match_view

CATALOG = tpch_catalog()


def _pair(view_sql: str, query_sql: str):
    view = describe(CATALOG.bind_sql(view_sql), CATALOG, name="v")
    query = describe(CATALOG.bind_sql(query_sql), CATALOG)
    return view, query


SCENARIOS = {
    "spj_accept": _pair(
        "select l_orderkey as k, l_partkey as p, l_quantity as q "
        "from lineitem where l_partkey >= 100",
        "select l_orderkey, l_quantity from lineitem "
        "where l_partkey >= 150 and l_partkey <= 300",
    ),
    "spj_reject_tables": _pair(
        "select o_orderkey as k from orders",
        "select l_orderkey from lineitem",
    ),
    "extra_tables": _pair(
        "select l_orderkey as k, l_quantity as q from lineitem, orders, customer "
        "where l_orderkey = o_orderkey and o_custkey = c_custkey",
        "select l_orderkey, l_quantity from lineitem",
    ),
    "aggregate_regroup": _pair(
        "select o_custkey, o_orderdate, sum(o_totalprice) as total, "
        "count_big(*) as cnt from orders group by o_custkey, o_orderdate",
        "select o_custkey, sum(o_totalprice), count(*) from orders "
        "group by o_custkey",
    ),
    "paper_example_2": _pair(
        "select l_orderkey, o_custkey, l_partkey, l_quantity, l_extendedprice, "
        "o_orderdate, l_shipdate, p_name from lineitem, orders, part "
        "where l_orderkey = o_orderkey and l_partkey = p_partkey "
        "and l_partkey > 150 and o_custkey > 50 and o_custkey < 500 "
        "and p_name like '%abc%'",
        "select l_orderkey, o_custkey, l_partkey, l_quantity "
        "from lineitem, orders, part "
        "where l_orderkey = o_orderkey and l_partkey = p_partkey "
        "and l_partkey > 150 and l_partkey < 160 and o_custkey = 123 "
        "and o_orderdate = l_shipdate and p_name like '%abc%' "
        "and l_quantity * l_extendedprice > 100",
    ),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_match_view_cost(benchmark, scenario):
    view, query = SCENARIOS[scenario]
    result = benchmark(lambda: match_view(query, view))
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["matched"] = result.matched


def test_describe_cost(benchmark):
    """Building a query description (done once per rule invocation)."""
    statement = CATALOG.bind_sql(
        "select l_orderkey, o_custkey, sum(l_quantity) from lineitem, orders "
        "where l_orderkey = o_orderkey and o_custkey <= 500 "
        "group by l_orderkey, o_custkey"
    )
    benchmark(lambda: describe(statement, CATALOG))
