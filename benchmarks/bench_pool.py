"""Serving-pool benchmark: persistent workers vs. fork-per-batch.

Sustained-load comparison of the two batch serving modes over one
``ViewServer`` (cache disabled so every request really optimizes): the
pre-pool path that forks a fan-out per ``rewrite_many`` call, and the
persistent worker-pool tier that forks once per epoch generation and
pins the snapshot in shared memory. Live epoch swaps are injected during
the pool run, so the numbers include generation churn. Run directly::

    PYTHONPATH=src python benchmarks/bench_pool.py            # full, 1000 views
    PYTHONPATH=src python benchmarks/bench_pool.py --smoke    # CI, seconds
    PYTHONPATH=src python benchmarks/bench_pool.py --check    # SLO gate

``--check`` exits non-zero unless the pool beats fork-per-batch on
sustained throughput AND p99 latency with zero failed requests
(single-core hosts: must not be meaningfully worse; smoke-sized runs
gate failures only). The module is also collectable by pytest (one
smoke-sized test), like the other bench files.
"""

from __future__ import annotations

import sys

from repro.cli import run_pool_bench
from repro.core.parallel import fork_available
from repro.service import PoolBenchConfig, run_pool_benchmark


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration finishing in a few seconds (CI)",
    )
    parser.add_argument("--views", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--passes", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="apply the SLO gate (pool must beat fork-per-batch)",
    )
    parser.add_argument(
        "--check-baseline",
        default=None,
        metavar="JSON",
        help="committed BENCH_matching.json for the calibration-"
        "normalized regression gates",
    )
    arguments = parser.parse_args(argv)
    return run_pool_bench(
        smoke=arguments.smoke,
        views=arguments.views,
        queries=arguments.queries,
        passes=arguments.passes,
        workers=arguments.workers,
        seed=arguments.seed,
        output=arguments.output,
        check=arguments.check,
        check_baseline=arguments.check_baseline,
    )


def test_pool_bench_smoke():
    """Pytest entry point: both modes serve everything, swaps happen."""
    if not fork_available():
        import pytest

        pytest.skip("os.fork unavailable on this platform")
    config = PoolBenchConfig(
        views=30,
        queries=4,
        passes=2,
        warmup_passes=1,
        scale=0.1,
        churn_cycles=1,
    )
    report = run_pool_benchmark(config, echo=None)
    assert report.pool.failures == 0
    assert report.fork_batch.failures == 0
    assert report.pool.served == report.fork_batch.served > 0
    assert report.swaps >= 1  # churn really swapped a generation
    # Timing ratios are not asserted (flaky on shared runners); shape is.
    payload = report.to_dict()
    assert payload["pool"]["p99_ms"] > 0
    assert payload["fork_batch"]["p99_ms"] > 0


if __name__ == "__main__":
    sys.exit(main())
