"""Section 5 text statistics: filtering effectiveness.

Regenerates the numbers quoted in the prose of Section 5:

* candidate sets average below 0.4% of the registered views,
* 15-20% of candidates pass full matching and produce substitutes,
* substitutes per invocation grow from 0.04 (100 views) to 0.59 (1000),
* ~17.8 view-matching invocations per query,
* substitutes per query grow from 0.7 (100 views) to 10.5 (1000).

Our filter tree checks strictly stronger conditions than the paper's (see
DESIGN.md), so candidate sets come out even smaller and the post-filter
success rate correspondingly higher; the invocation and substitute scaling
match in shape.
"""

from __future__ import annotations

import pytest

from .common import VIEW_COUNTS


@pytest.mark.parametrize("views", [count for count in VIEW_COUNTS if count > 0])
def test_section5_filtering_statistics(benchmark, bench_workload, views):
    optimizer = bench_workload.optimizer(views)
    matcher = optimizer.matcher
    assert matcher is not None
    matcher.statistics.reset()
    results = benchmark.pedantic(
        bench_workload.optimize_batch,
        args=(optimizer,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    stats = matcher.statistics
    queries = len(results)
    benchmark.extra_info["views"] = views
    benchmark.extra_info["candidate_fraction"] = f"{stats.candidate_fraction:.4%}"
    benchmark.extra_info["candidate_success"] = f"{stats.candidate_success_rate:.0%}"
    benchmark.extra_info["invocations_per_query"] = round(
        stats.invocations / queries, 1
    )
    benchmark.extra_info["substitutes_per_invocation"] = round(
        stats.substitutes_per_invocation, 3
    )
    benchmark.extra_info["substitutes_per_query"] = round(
        stats.substitutes / queries, 2
    )
