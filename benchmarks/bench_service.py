"""Serving-layer benchmark: rewrite cache on vs. off under closed-loop load.

Measures what the `repro.service` subsystem exists for: the cache
hit-rate on a repeated TPC-H workload and the median rewrite latency with
and without the fingerprinted plan cache. Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI, <10s

Exit status is non-zero when the hit rate falls below the 80 % bar --
deterministic, since the schedule repeats every query ``--repeat`` times.
The module is also collectable by pytest (one smoke-sized test) so
``pytest benchmarks/bench_service.py`` works like the other bench files.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.service import BenchConfig, run_service_benchmark


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration finishing in a few seconds (CI)",
    )
    parser.add_argument("--views", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    arguments = parser.parse_args(argv)

    config = BenchConfig.smoke() if arguments.smoke else BenchConfig()
    overrides = {
        name: getattr(arguments, name)
        for name in ("views", "queries", "repeat", "workers", "seed")
        if getattr(arguments, name) is not None
    }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    report = run_service_benchmark(config)
    if report.hit_rate < 0.8:
        print(f"FAIL: cache hit-rate {report.hit_rate:.1%} below 80%")
        return 1
    return 0


def test_serve_bench_smoke():
    """Pytest entry point: the smoke benchmark meets the hit-rate bar."""
    report = run_service_benchmark(BenchConfig.smoke(), echo=None)
    assert report.hit_rate >= 0.8
    assert report.cached.failures == 0
    assert report.baseline.failures == 0


if __name__ == "__main__":
    sys.exit(main())
