"""Shared benchmark fixtures: one workload, reused across all benchmarks.

The benchmarks regenerate the paper's Section 5 measurements. Building the
view pool and query batch is expensive, so it is done once per session; the
sweep sizes are chosen so the whole benchmark suite completes in a few
minutes while still spanning 0..1000 views like the paper.
"""

from __future__ import annotations

from repro.catalog import tpch_catalog
from repro.core import ViewMatcher
from repro.optimizer import Optimizer, OptimizerConfig
from repro.stats import synthetic_tpch_stats
from repro.workload import WorkloadGenerator

VIEW_COUNTS = (0, 100, 250, 500, 750, 1000)
QUERY_BATCH = 25
MAX_VIEWS = max(VIEW_COUNTS)
SEED = 42


class BenchWorkload:
    """The shared pool of generated views and queries."""

    def __init__(self) -> None:
        self.catalog = tpch_catalog()
        self.stats = synthetic_tpch_stats(scale=0.5)
        generator = WorkloadGenerator(self.catalog, self.stats, seed=SEED)
        self.views = generator.generate_views(MAX_VIEWS)
        self.queries = [
            q.statement for q in generator.generate_queries(QUERY_BATCH)
        ]
        self._matcher_cache: dict[tuple[int, bool], ViewMatcher] = {}

    def matcher(self, view_count: int, use_filter_tree: bool) -> ViewMatcher | None:
        if view_count == 0:
            return None
        key = (view_count, use_filter_tree)
        cached = self._matcher_cache.get(key)
        if cached is None:
            cached = ViewMatcher(self.catalog, use_filter_tree=use_filter_tree)
            for name, view in self.views[:view_count]:
                cached.register_view(name, view.statement)
            self._matcher_cache[key] = cached
        return cached

    def optimizer(
        self,
        view_count: int,
        use_filter_tree: bool = True,
        produce_substitutes: bool = True,
    ) -> Optimizer:
        return Optimizer(
            self.catalog,
            self.stats,
            matcher=self.matcher(view_count, use_filter_tree),
            config=OptimizerConfig(produce_substitutes=produce_substitutes),
        )

    def optimize_batch(self, optimizer: Optimizer) -> list:
        return [optimizer.optimize(query) for query in self.queries]


