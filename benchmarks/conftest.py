"""Benchmark fixtures: expose the shared workload to all benchmark modules."""

import pytest

from .common import BenchWorkload


@pytest.fixture(scope="session")
def bench_workload() -> BenchWorkload:
    return BenchWorkload()
