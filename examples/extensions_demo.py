"""Demonstrate the Section 7 extensions: OR-ranges, backjoins, check constraints.

Run with:  python examples/extensions_demo.py

Each scenario first shows the paper-prototype behaviour (the view is
rejected) and then the behaviour with the corresponding ``MatchOptions``
extension enabled, executing the substitute to confirm soundness.
"""

from repro import (
    Catalog,
    CheckConstraint,
    Column,
    ColumnType,
    MatchOptions,
    Table,
    ViewMatcher,
    execute,
    generate_tpch,
    materialize_view,
    statement_to_sql,
    tpch_catalog,
)
from repro.sql import parse_predicate


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show(matcher, catalog, query_sql: str) -> list:
    query = catalog.bind_sql(query_sql)
    matches = matcher.substitutes(query)
    if matches:
        for match in matches:
            print("  MATCH:", statement_to_sql(match.substitute))
    else:
        print("  no match")
    return matches


def or_ranges(catalog, database) -> None:
    banner("Extension 1: disjunctive (OR / IN) range predicates")
    view_sql = (
        "select l_orderkey as k, l_partkey as p, l_quantity as q "
        "from lineitem where l_partkey < 80 or l_partkey > 120"
    )
    query_sql = (
        "select l_orderkey, l_quantity from lineitem "
        "where l_partkey < 40 or l_partkey > 160"
    )
    print("view:  ", " ".join(view_sql.split()))
    print("query: ", " ".join(query_sql.split()))

    print("\npaper prototype (disjunctions are opaque residuals):")
    baseline = ViewMatcher(catalog)
    baseline.register_view("v_or", catalog.bind_sql(view_sql))
    show(baseline, catalog, query_sql)

    print("\nwith support_or_ranges=True (interval sets):")
    extended = ViewMatcher(catalog, options=MatchOptions(support_or_ranges=True))
    extended.register_view("v_or", catalog.bind_sql(view_sql))
    matches = show(extended, catalog, query_sql)

    materialize_view("v_or", catalog.bind_sql(view_sql), database)
    expected = execute(catalog.bind_sql(query_sql), database)
    actual = execute(matches[0].substitute, database)
    print(f"  verified: {expected.bag_equals(actual, float_digits=9)} "
          f"({expected.row_count} rows)")
    database.drop("v_or")


def backjoins(catalog, database) -> None:
    banner("Extension 2: base-table backjoins for missing columns")
    view_sql = (
        "select o_orderkey as ok, o_custkey as ck from orders "
        "where o_custkey <= 100"
    )
    query_sql = (
        "select o_orderkey, o_totalprice from orders where o_custkey <= 50"
    )
    print("view:  ", " ".join(view_sql.split()))
    print("query: ", " ".join(query_sql.split()))
    print("(the view lacks o_totalprice but exposes orders' primary key)")

    print("\npaper prototype:")
    baseline = ViewMatcher(catalog)
    baseline.register_view("v_bj", catalog.bind_sql(view_sql))
    show(baseline, catalog, query_sql)

    print("\nwith allow_backjoins=True:")
    extended = ViewMatcher(catalog, options=MatchOptions(allow_backjoins=True))
    extended.register_view("v_bj", catalog.bind_sql(view_sql))
    matches = show(extended, catalog, query_sql)

    materialize_view("v_bj", catalog.bind_sql(view_sql), database)
    expected = execute(catalog.bind_sql(query_sql), database)
    actual = execute(matches[0].substitute, database)
    print(f"  verified: {expected.bag_equals(actual, float_digits=9)} "
          f"({expected.row_count} rows)")
    database.drop("v_bj")


def check_constraints() -> None:
    banner("Extension 3: check constraints strengthen the antecedent")
    catalog = Catalog()
    catalog.add_table(
        Table(
            name="sales",
            columns=(
                Column("id"),
                Column("amount", ColumnType.FLOAT),
            ),
            primary_key=("id",),
            check_constraints=(
                CheckConstraint(
                    "amount_positive", parse_predicate("sales.amount >= 0")
                ),
            ),
        )
    )
    view_sql = "select id as i, amount as a from sales where amount >= 0"
    query_sql = "select id from sales"
    print("view:  ", view_sql)
    print("query: ", query_sql)
    print("(the view's predicate is implied by the CHECK (amount >= 0))")

    print("\npaper prototype:")
    baseline = ViewMatcher(catalog)
    baseline.register_view("v_ck", catalog.bind_sql(view_sql))
    show(baseline, catalog, query_sql)

    print("\nwith use_check_constraints=True:")
    extended = ViewMatcher(
        catalog, options=MatchOptions(use_check_constraints=True)
    )
    extended.register_view("v_ck", catalog.bind_sql(view_sql))
    show(extended, catalog, query_sql)


def union_substitutes(catalog, database) -> None:
    banner("Extension 4: union substitutes (several views cover the range)")
    from repro.core import describe, find_union_substitutes, match_view

    low_sql = (
        "select l_orderkey as k, l_partkey as p, l_quantity as q "
        "from lineitem where l_partkey <= 100"
    )
    high_sql = (
        "select l_orderkey as k, l_partkey as p, l_quantity as q "
        "from lineitem where l_partkey > 100"
    )
    query_sql = (
        "select l_orderkey, l_quantity from lineitem "
        "where l_partkey >= 50 and l_partkey <= 150"
    )
    print("views: ", " ".join(low_sql.split()))
    print("       ", " ".join(high_sql.split()))
    print("query: ", " ".join(query_sql.split()))
    views = [
        describe(catalog.bind_sql(low_sql), catalog, name="low"),
        describe(catalog.bind_sql(high_sql), catalog, name="high"),
    ]
    query = describe(catalog.bind_sql(query_sql), catalog)
    print("\nsingle-view matching:")
    for view in views:
        result = match_view(query, view)
        print(f"  {view.name}: {'match' if result.matched else 'no match'}")
    print("\nunion substitutes (neither view alone covers [50, 150]):")
    (substitute,) = find_union_substitutes(query, views)
    for piece in substitute.pieces:
        print("  UNION ALL piece:", statement_to_sql(piece))
    materialize_view("low", catalog.bind_sql(low_sql), database)
    materialize_view("high", catalog.bind_sql(high_sql), database)
    expected = execute(catalog.bind_sql(query_sql), database)
    actual = substitute.execute(database)
    print(f"  verified: {expected.bag_equals(actual, float_digits=9)} "
          f"({expected.row_count} rows, no duplicates from the stitch)")


def main() -> None:
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.001, seed=3)
    or_ranges(catalog, database)
    backjoins(catalog, database)
    check_constraints()
    union_substitutes(catalog, database)


if __name__ == "__main__":
    main()
