"""Incremental view maintenance under a live update stream.

Run with:  python examples/incremental_maintenance.py

Demonstrates why indexed views carry ``count_big(*)`` (paper, Section 2):
a revenue-per-customer view is maintained through order inserts and
deletes -- groups update in place and disappear exactly when their count
reaches zero -- while the view matcher keeps answering queries from the
(always-fresh) view.
"""

from repro import (
    ViewMatcher,
    execute,
    generate_tpch,
    statement_to_sql,
    tpch_catalog,
)
from repro.maintenance import ViewMaintainer


def main() -> None:
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.0005, seed=9)
    maintainer = ViewMaintainer(catalog, database)
    matcher = ViewMatcher(catalog)

    view_sql = """
        select o_custkey, sum(o_totalprice) as revenue, count_big(*) as cnt
        from orders group by o_custkey
    """
    statement = catalog.bind_sql(view_sql)
    maintainer.register("cust_revenue", statement)
    matcher.register_view("cust_revenue", statement)
    print(f"materialized cust_revenue: {database.row_count('cust_revenue')} groups "
          f"over {database.row_count('orders')} orders")

    query = catalog.bind_sql(
        "select o_custkey, sum(o_totalprice), count(*) from orders "
        "group by o_custkey"
    )
    (match,) = matcher.substitutes(query)
    print("query answered from the view:", statement_to_sql(match.substitute))

    def verify(label: str) -> None:
        expected = execute(query, database)
        actual = execute(match.substitute, database)
        ok = expected.bag_equals(actual, float_digits=9)
        print(f"  {label}: view answer still exact: {ok} "
              f"({database.row_count('cust_revenue')} groups)")
        assert ok

    # A burst of new orders for two customers, one of them brand new.
    next_key = max(
        row[0] for row in database.relation("orders").rows
    ) + 1
    new_orders = [
        (next_key, 1, "O", 1234.5, 9000, "1-URGENT", "Clerk#1", 0, "new"),
        (next_key + 1, 1, "O", 777.0, 9001, "2-HIGH", "Clerk#2", 0, "new"),
        (next_key + 2, 10_001, "O", 42.0, 9002, "5-LOW", "Clerk#3", 0, "new"),
    ]
    maintainer.insert("orders", new_orders)
    print(f"\ninserted {len(new_orders)} orders (customer 10001 is new)")
    verify("after inserts")

    # Delete every order of customer 1: its group must vanish.
    removed = maintainer.delete_where("orders", lambda row: row[1] == 1)
    print(f"\ndeleted all {removed} orders of customer 1")
    groups = {row[0] for row in database.relation("cust_revenue").rows}
    print(f"  group for customer 1 present: {1 in groups}")
    verify("after deletes")


if __name__ == "__main__":
    main()
