"""Walk through the paper's worked Examples 1-4, printing each step.

Run with:  python examples/paper_walkthrough.py

Follows Goldstein & Larson, "Optimizing Queries Using Materialized Views"
(SIGMOD 2001): view definition (Ex. 1), the three subsumption tests with
compensating predicates (Ex. 2), extra-table elimination through
cardinality-preserving joins (Ex. 3), and the pre-aggregation interplay
with the optimizer (Ex. 4).
"""

from repro import (
    Optimizer,
    ViewMatcher,
    describe,
    describe_plan,
    match_view,
    statement_to_sql,
    synthetic_tpch_stats,
    tpch_catalog,
)
from repro.core.fkgraph import build_fk_join_graph, eliminate_tables


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def example_1(catalog) -> None:
    banner("Example 1: defining an indexed view")
    sql = """
        create view v1 with schemabinding as
        select p_partkey, p_name, p_retailprice, count_big(*) as cnt,
               sum(l_extendedprice * l_quantity) as gross_revenue
        from dbo.lineitem, dbo.part
        where p_partkey < 1000 and p_name like '%steel%'
          and p_partkey = l_partkey
        group by p_partkey, p_name, p_retailprice
    """
    from repro import generate_tpch
    from repro.engine import run_sql

    database = generate_tpch(scale=0.0005, seed=1)
    # All three of the paper's statements run verbatim: the CREATE VIEW,
    # the unique clustered index (which materializes the view), and the
    # secondary index.
    view = run_sql(sql, catalog, database)
    run_sql("create unique clustered index v1_cidx on v1(p_partkey)",
            catalog, database)
    run_sql("create index v1_sidx on v1(gross_revenue, p_name)",
            catalog, database)
    matcher = ViewMatcher(catalog)
    matcher.register_view(view.name, view.query)
    print(f"registered view {view.name}:")
    print(" ", statement_to_sql(view.query))
    print("(count_big(*) is required so deletions can be handled incrementally)")
    print(
        f"materialized {view.name}: {database.row_count('v1')} rows, "
        "indexes v1_cidx (unique clustered) and v1_sidx created"
    )


def example_2(catalog) -> None:
    banner("Example 2: the three subsumption tests")
    view = describe(
        catalog.bind_sql(
            """
            select l_orderkey, o_custkey, l_partkey, l_quantity,
                   l_extendedprice, o_orderdate, l_shipdate, p_name
            from lineitem, orders, part
            where l_orderkey = o_orderkey and l_partkey = p_partkey
              and l_partkey > 150 and o_custkey > 50 and o_custkey < 500
              and p_name like '%abc%'
            """
        ),
        catalog,
        name="v2",
    )
    query = describe(
        catalog.bind_sql(
            """
            select l_orderkey, o_custkey, l_partkey, l_quantity
            from lineitem, orders, part
            where l_orderkey = o_orderkey and l_partkey = p_partkey
              and l_partkey > 150 and l_partkey < 160
              and o_custkey = 123 and o_orderdate = l_shipdate
              and p_name like '%abc%'
              and l_quantity * l_extendedprice > 100
            """
        ),
        catalog,
    )
    print("step 1 - equivalence classes")
    for owner, description in (("view", view), ("query", query)):
        classes = sorted(
            sorted(f"{t}.{c}" for t, c in cls)
            for cls in description.eqclasses.nontrivial_classes()
        )
        print(f"  {owner}: " + "; ".join("{" + ", ".join(c) + "}" for c in classes))
    print("step 3 - ranges")
    for owner, description in (("view", view), ("query", query)):
        rendered = ", ".join(
            f"{t}.{c} in {interval}"
            for (t, c), interval in sorted(description.ranges.items())
        )
        print(f"  {owner}: {rendered}")
    result = match_view(query, view)
    assert result.matched
    print("result - the view passes all tests; compensating substitute:")
    print(" ", statement_to_sql(result.substitute))


def example_3(catalog) -> None:
    banner("Example 3: views with extra tables")
    view = describe(
        catalog.bind_sql(
            """
            select c_custkey, c_name, l_orderkey, l_partkey, l_quantity
            from lineitem, orders, customer
            where l_orderkey = o_orderkey and o_custkey = c_custkey
              and o_orderkey >= 500
            """
        ),
        catalog,
        name="v3",
    )
    edges = build_fk_join_graph(view.tables, view.eqclasses, catalog)
    print("foreign-key join graph edges:")
    for edge in edges:
        print(f"  {edge.source} -> {edge.target}")
    elimination = eliminate_tables(
        view.tables, edges, removable=frozenset({"orders", "customer"})
    )
    print(f"elimination order: {' then '.join(elimination.deleted)}")
    print(f"remaining (hub-like) set: {sorted(elimination.remaining)}")
    query = describe(
        catalog.bind_sql(
            "select l_orderkey, l_partkey, l_quantity from lineitem "
            "where l_orderkey >= 1000 and l_orderkey <= 1500"
        ),
        catalog,
    )
    result = match_view(query, view)
    assert result.matched
    print("substitute for the single-table query:")
    print(" ", statement_to_sql(result.substitute))


def example_4(catalog) -> None:
    banner("Example 4: pre-aggregation finds the rewrite")
    matcher = ViewMatcher(catalog)
    matcher.register_view(
        "v4",
        catalog.bind_sql(
            """
            select o_custkey, count_big(*) as cnt,
                   sum(l_quantity * l_extendedprice) as revenue
            from lineitem, orders
            where l_orderkey = o_orderkey
            group by o_custkey
            """
        ),
    )
    query = catalog.bind_sql(
        """
        select c_nationkey, sum(l_quantity * l_extendedprice)
        from lineitem, orders, customer
        where l_orderkey = o_orderkey and o_custkey = c_custkey
        group by c_nationkey
        """
    )
    print("the query groups by c_nationkey, the view by o_custkey;")
    print("direct matching fails, but the optimizer's pre-aggregation")
    print("alternative exposes an inner block the view answers:")
    optimizer = Optimizer(catalog, synthetic_tpch_stats(0.5), matcher)
    result = optimizer.optimize(query)
    print()
    print(describe_plan(result.plan))
    print()
    print(f"best plan uses views: {result.view_names}")


def main() -> None:
    catalog = tpch_catalog()
    example_1(catalog)
    example_2(catalog)
    example_3(catalog)
    example_4(catalog)


if __name__ == "__main__":
    main()
