"""Scenario: treating cached query results as temporary materialized views.

Run with:  python examples/query_result_cache.py

The paper's introduction motivates scalability with exactly this use case:
"A smart system might also cache and reuse results of previously computed
queries. Cached results can be treated as temporary materialized views,
easily resulting in thousands of materialized views."

This example simulates a dashboard session: every executed aggregation
query's result is materialized and registered with the matcher; later
queries that drill into the cached results (tighter ranges, coarser
grouping) are answered from the cache instead of the base tables.
"""

from repro import (
    DatabaseStats,
    ViewMatcher,
    execute,
    generate_tpch,
    materialize_view,
    statement_to_sql,
    tpch_catalog,
)


class CachingSession:
    """Executes queries, caching each result as a materialized view."""

    def __init__(self, catalog, database):
        self.catalog = catalog
        self.database = database
        self.matcher = ViewMatcher(catalog)
        self._counter = 0
        self.hits = 0
        self.misses = 0

    def run(self, sql: str):
        query = self.catalog.bind_sql(sql)
        matches = self.matcher.substitutes(query)
        if matches:
            self.hits += 1
            best = min(
                matches,
                key=lambda m: self.database.row_count(m.view.name),
            )
            print(f"  cache HIT via {best.view.name}: "
                  f"{statement_to_sql(best.substitute)}")
            return execute(best.substitute, self.database)
        self.misses += 1
        print("  cache MISS; executing against base tables")
        result = execute(query, self.database)
        self._cache(query)
        return result

    def _cache(self, query) -> None:
        """Register the query itself as a temporary materialized view."""
        from repro.sql.statements import SelectItem

        # Cached aggregation results need a count_big column and named
        # outputs to be (re)usable as views; skip queries outside the
        # indexable class.
        from repro.sql.expressions import FuncCall

        items = []
        for i, item in enumerate(query.select_items):
            alias = item.name or f"c{i + 1}"
            items.append(SelectItem(item.expression, alias=alias))
        if query.is_aggregate:
            items.append(SelectItem(FuncCall("count_big", star=True), alias="cnt"))
        from dataclasses import replace

        view_query = replace(query, select_items=tuple(items))
        self._counter += 1
        name = f"cached{self._counter}"
        try:
            self.matcher.register_view(name, view_query)
        except Exception:
            return  # not cacheable (outside the SPJG view class)
        materialize_view(name, view_query, self.database)
        print(f"  cached result as {name} ({self.database.row_count(name)} rows)")


def main() -> None:
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.001, seed=5)
    session = CachingSession(catalog, database)

    dashboard = [
        # A broad revenue-by-customer rollup ...
        "select o_custkey, sum(o_totalprice) from orders group by o_custkey",
        # ... a later drill-down over a customer range: answered from cache.
        "select o_custkey, sum(o_totalprice) from orders "
        "where o_custkey >= 20 and o_custkey <= 80 group by o_custkey",
        # A coarser rollup (global total): also answerable from the cache.
        "select sum(o_totalprice) from orders",
        # Per-part quantities joined with part data ...
        "select l_partkey, sum(l_quantity) from lineitem, part "
        "where l_partkey = p_partkey group by l_partkey",
        # ... and a filtered re-ask of the same shape.
        "select l_partkey, sum(l_quantity) from lineitem, part "
        "where l_partkey = p_partkey and l_partkey <= 100 group by l_partkey",
        # Average order value derives from the cached SUM and COUNT.
        "select o_custkey, avg(o_totalprice) from orders group by o_custkey",
    ]

    for i, sql in enumerate(dashboard, 1):
        print(f"\nquery {i}: {' '.join(sql.split())}")
        result = session.run(sql)
        print(f"  -> {result.row_count} rows")

    print(
        f"\nsession summary: {session.hits} cache hits, "
        f"{session.misses} misses, "
        f"{session.matcher.view_count} cached views registered"
    )


if __name__ == "__main__":
    main()
