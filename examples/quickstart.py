"""Quickstart: register materialized views, match a query, run the rewrite.

Run with:  python examples/quickstart.py
"""

from repro import (
    DatabaseStats,
    ViewMatcher,
    execute,
    generate_tpch,
    materialize_view,
    statement_to_sql,
    tpch_catalog,
)


def main() -> None:
    # 1. A catalog (TPC-H, with keys and foreign keys declared) and a small
    #    generated database to run things against.
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.001, seed=1)

    # 2. Define and materialize a view: revenue per part, restricted to a
    #    range of parts -- exactly the indexable SPJG class of the paper.
    view_sql = """
        select l_partkey, sum(l_extendedprice * l_quantity) as revenue,
               count_big(*) as cnt
        from lineitem, part
        where l_partkey = p_partkey and p_partkey <= 150
        group by l_partkey
    """
    view = catalog.bind_sql(view_sql)
    matcher = ViewMatcher(catalog)
    matcher.register_view("part_revenue", view)
    materialize_view("part_revenue", view, database)

    # 3. A query that never mentions the view ...
    query = catalog.bind_sql(
        """
        select l_partkey, sum(l_extendedprice * l_quantity)
        from lineitem, part
        where l_partkey = p_partkey and p_partkey >= 50 and p_partkey <= 100
        group by l_partkey
        """
    )
    print("query:")
    print(" ", statement_to_sql(query))

    # 4. ... is recognised as computable from it. The matcher returns the
    #    substitute expression with its compensating predicates.
    matches = matcher.substitutes(query)
    for match in matches:
        print(f"\nsubstitute over {match.view.name}:")
        print(" ", statement_to_sql(match.substitute))
        print(
            f"  (compensations: {match.compensating_ranges} range, "
            f"{match.compensating_equalities} equality, "
            f"{match.compensating_residuals} residual; "
            f"regrouped: {match.regrouped})"
        )

    # 5. Both produce identical results -- the substitute just reads far
    #    fewer rows.
    original = execute(query, database)
    rewritten = execute(matches[0].substitute, database)
    assert original.bag_equals(rewritten, float_digits=9)
    print(f"\nboth plans return {original.row_count} identical rows;")
    print(
        f"base tables scanned {database.row_count('lineitem')} lineitems, "
        f"the view holds {database.row_count('part_revenue')} rows"
    )


if __name__ == "__main__":
    main()
