"""Rerun the paper's Section 5 scaling experiment and print Figures 2-4.

Run with:  python examples/scaling_experiment.py [--quick]

``--quick`` runs a reduced sweep (a couple of minutes becomes seconds);
the default sweep covers 0..1000 views like the paper. Either way the
output is the four-line Figure 2 table, the Figure 3 decomposition, the
Figure 4 view-usage counts and the Section 5 filtering statistics.
"""

import sys

from repro import ExperimentConfig, ExperimentHarness
from repro.experiments import render_all


def main() -> None:
    quick = "--quick" in sys.argv
    if quick:
        config = ExperimentConfig(
            view_counts=(0, 50, 100, 200),
            query_count=30,
        )
    else:
        config = ExperimentConfig(
            view_counts=(0, 100, 200, 400, 600, 800, 1000),
            query_count=100,
        )
    print(
        f"generating {max(config.view_counts)} views and "
        f"{config.query_count} queries (seed {config.seed}) ..."
    )
    harness = ExperimentHarness(config)
    print("running the sweep over all four optimizer configurations ...")
    result = harness.run()
    print()
    print(render_all(result))
    print()
    print(
        "Compare with the paper: linear growth in optimization time, the\n"
        "filter tree roughly halving the increase, view usage saturating\n"
        "as views are added, and sub-percent candidate fractions."
    )


if __name__ == "__main__":
    main()
