"""Scenario: serving concurrent query rewrites behind an epoch-snapshot cache.

Run with:  python examples/serving_demo.py

The paper's premise is that view matching is cheap enough to run on every
query a production optimizer sees. This example puts that premise under
service conditions: a :class:`repro.ViewServer` fronts the optimizer with
a pool of worker threads, immutable epoch-versioned catalog snapshots
(reader threads never lock), and a rewrite cache keyed by canonical query
fingerprints -- so a repeated dashboard workload is answered from the
cache, while registering or dropping a view bumps the epoch and retires
every cached rewrite from the previous generation.

The demo registers a handful of TPC-H views, replays a mixed workload
from several threads, then drops a view mid-flight and shows the epoch
bump and cache invalidation in the serving statistics.
"""

import threading

from repro import ViewServer, synthetic_tpch_stats, tpch_catalog
from repro.workload import WorkloadGenerator
from repro.sql import statement_to_sql


def main() -> None:
    catalog = tpch_catalog()
    stats = synthetic_tpch_stats(scale=0.1)

    # A small view pool and query batch from the Section 5 generator
    # (seed chosen so part of the batch is answerable from the pool).
    generator = WorkloadGenerator(catalog, stats, seed=1)
    views = generator.generate_views(12)
    queries = [
        statement_to_sql(q.statement) for q in generator.generate_queries(10)
    ]

    with ViewServer(catalog, stats, workers=4, queue_depth=32) as server:
        for name, view in views:
            epoch = server.register_view(name, view.statement)
        print(f"registered {len(views)} views; serving epoch {epoch}")

        # Mixed workload: 4 threads, 5 passes over the batch -- the first
        # pass misses, later passes hit the fingerprinted plan cache.
        def client() -> None:
            for _ in range(5):
                for sql in queries:
                    result = server.submit(sql)
                    assert result.error is None, result.error

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        served = server.stats()
        cache = served["cache"]
        print(
            f"served {served['counters']['requests']} requests, "
            f"hit rate {cache['hit_rate']:.1%}, "
            f"{served['counters'].get('rewrites', 0)} answered from views"
        )

        # Drop one view: the epoch bumps and the previous generation of
        # cached rewrites is wholesale-invalidated.
        victim = views[0][0]
        new_epoch = server.unregister_view(victim)
        print(f"dropped {victim}: epoch {epoch} -> {new_epoch}")
        result = server.submit(queries[0])
        print(
            f"first query after drop: cache_hit={result.cache_hit} "
            f"(epoch {result.epoch})"
        )

        print()
        print(server.report())


if __name__ == "__main__":
    main()
