"""Scenario: sampled rewrite-path tracing under live serving.

Run with:  python examples/tracing_demo.py

Production question: *why* did a query (not) get rewritten, and where
does the rewrite path spend its time?  This example serves a Section 5
workload through a :class:`repro.ViewServer` with deterministic trace
sampling enabled (every request here, so the demo is exhaustive; in
production a rate like ``0.01`` records every 100th request), then reads
three things back out:

* the sampled :class:`repro.obs.RewriteTrace` ring -- one full funnel
  per sampled request (stage spans, per-level filter-tree narrowing,
  per-candidate reject reasons, plan cost comparison);
* an aggregated reject-reason funnel across all sampled traces -- the
  operational "why don't my queries rewrite?" histogram;
* the Prometheus text exposition (stage latencies, counters, gauges).
"""

from collections import Counter

from repro import ViewServer, synthetic_tpch_stats, tpch_catalog
from repro.obs import render_trace
from repro.sql import statement_to_sql
from repro.workload import WorkloadGenerator


def main() -> None:
    catalog = tpch_catalog()
    stats = synthetic_tpch_stats(scale=0.1)
    generator = WorkloadGenerator(catalog, stats, seed=1)
    views = generator.generate_views(60)
    queries = [
        statement_to_sql(q.statement) for q in generator.generate_queries(20)
    ]

    # trace_sample_rate=1.0 samples every request; the ring keeps the
    # most recent trace_capacity traces.
    with ViewServer(
        catalog, stats, workers=2, queue_depth=16,
        trace_sample_rate=1.0, trace_capacity=64,
    ) as server:
        for name, view in views:
            server.register_view(name, view.statement)
        print(f"registered {len(views)} views; tracing every request\n")

        for sql in queries:
            result = server.serve(sql)
            assert result.error is None, result.error

        traces = server.traces()
        print(f"sampled {len(traces)} traces")

        # One full funnel, end to end -- pick the first trace that chose
        # a view-based plan so the compensation steps show up.
        rewritten = [
            t for t in traces
            if any(c.matched for m in t.invocations for c in m.funnel)
        ]
        if rewritten:
            print("\n--- one rewritten request, full funnel ---")
            print(render_trace(rewritten[0]))

        # The aggregated reject-reason funnel across every sampled trace:
        # how often full matching turned a candidate away, and why.
        tallies: Counter[str] = Counter()
        matched = 0
        for trace in traces:
            for invocation in trace.invocations:
                for candidate in invocation.funnel:
                    if candidate.matched:
                        matched += 1
                    elif candidate.reject_reason:
                        tallies[candidate.reject_reason] += 1
        print("--- aggregated match funnel across sampled traces ---")
        print(f"candidates matched: {matched}")
        for reason, count in tallies.most_common():
            print(f"rejected {reason:20s} {count}")

        print("\n--- prometheus exposition (counters, gauges, rejects) ---")
        exposition = server.prometheus_metrics()
        for line in exposition.splitlines():
            interesting = "_total" in line or "match_rejects" in line
            if interesting and "_bucket" not in line and not line.startswith("#"):
                print(line)


if __name__ == "__main__":
    main()
