"""Recommend materialized views for a workload, then prove they pay off.

Run with:  python examples/view_advisor.py

The paper's introduction points at automated view-selection tools as one
source of the "thousands of views" its algorithm must scale to. This
example closes the loop: a random Section 5 workload is handed to the
advisor, the recommended views are materialized, and the same workload is
re-optimized and re-executed to show the cost reduction is real.
"""

from repro import (
    DatabaseStats,
    Optimizer,
    ViewMatcher,
    execute,
    generate_tpch,
    materialize_view,
    statement_to_sql,
    tpch_catalog,
)
from repro.advisor import ViewAdvisor
from repro.optimizer import plan_result
from repro.workload import WorkloadGenerator


def main() -> None:
    catalog = tpch_catalog()
    database = generate_tpch(scale=0.001, seed=13)
    stats = DatabaseStats.collect(database, catalog)

    generator = WorkloadGenerator(catalog, stats, seed=77)
    queries = [q.statement for q in generator.generate_queries(25)]
    print(f"workload: {len(queries)} random TPC-H queries")

    advisor = ViewAdvisor(catalog, stats)
    recommendation = advisor.recommend(queries, max_views=4)
    print(
        f"\nestimated workload cost: {recommendation.workload_cost_before:,.0f}"
        f" -> {recommendation.workload_cost_after:,.0f}"
        f"  ({recommendation.improvement:.0%} cheaper)"
    )
    for view in recommendation.views:
        print(f"\n  {view.name}  (benefit {view.benefit:,.0f}, "
              f"~{view.estimated_rows:,.0f} rows, helps {view.queries_helped} queries)")
        print("   ", statement_to_sql(view.statement)[:150], "...")

    # Materialize the recommendations and prove the plans stay correct.
    matcher = ViewMatcher(catalog)
    for view in recommendation.views:
        matcher.register_view(view.name, view.statement)
        materialize_view(view.name, view.statement, database)
    optimizer = Optimizer(catalog, stats, matcher=matcher)
    used = 0
    for query in queries:
        result = optimizer.optimize(query)
        if result.uses_view:
            used += 1
            expected = execute(query, database)
            actual = plan_result(result.plan, database)
            assert expected.bag_equals(actual, float_digits=9)
    print(
        f"\nverified: {used}/{len(queries)} queries now use a recommended "
        "view, each checked row-for-row against direct execution"
    )


if __name__ == "__main__":
    main()
