"""repro: a reproduction of Goldstein & Larson (SIGMOD 2001),
"Optimizing Queries Using Materialized Views: A Practical, Scalable
Solution".

The package implements the paper's view-matching algorithm for SPJG views
(equijoin / range / residual subsumption over column equivalence classes,
cardinality-preserving join elimination, aggregation rollup), the filter
tree with lattice indexes over view descriptions, and everything around
them needed to actually run the paper's experiments: a SQL frontend for
the SPJG subset, a catalog with the four constraint kinds, a bag-semantics
execution engine, a TPC-H data generator and synthetic statistics, a
cost-based optimizer with an integrated view-matching rule, the Section 5
random workload generator, and the experiment harness regenerating
Figures 2-4.

Quickstart::

    from repro import tpch_catalog, ViewMatcher

    catalog = tpch_catalog()
    matcher = ViewMatcher(catalog)
    matcher.register_view("v1", catalog.bind_sql(
        "select l_orderkey, l_partkey, l_quantity from lineitem, orders "
        "where l_orderkey = o_orderkey and l_partkey >= 100"))
    for match in matcher.match_sql(
        "select l_orderkey, l_quantity from lineitem, orders "
        "where l_orderkey = o_orderkey and l_partkey >= 150 "
        "and l_partkey <= 300"):
        print(match.view.name, "->", match.substitute)
"""

from .advisor import CandidateView, Recommendation, ViewAdvisor
from .cdc import (
    CdcPipeline,
    ChangeApplier,
    ChangeLog,
    ChangeRecord,
    FreshnessTracker,
    StalenessBound,
    ViewFreshness,
)
from .catalog import (
    Catalog,
    CheckConstraint,
    Column,
    ColumnType,
    ForeignKey,
    Table,
    ViewDefinition,
    tpch_catalog,
)
from .core import (
    DEFAULT_OPTIONS,
    FilterTree,
    LatticeIndex,
    MatchOptions,
    MatchResult,
    RejectReason,
    SpjgDescription,
    ViewMatcher,
    describe,
    match_view,
    matcher_for_catalog,
)
from .datagen import generate_tpch
from .difftest import (
    CdcDifftestConfig,
    CdcDifftestReport,
    DifftestConfig,
    DifftestReport,
    run_cdc_difftest,
    run_corpus_case,
    run_difftest,
)
from .engine import Database, QueryResult, execute, materialize_view, run_sql
from .errors import (
    BindError,
    CatalogError,
    ExecutionError,
    MatchError,
    ReproError,
    SqlSyntaxError,
    UnsupportedSqlError,
)
from .experiments import ExperimentConfig, ExperimentHarness
from .maintenance import MaintainedView, ViewChangeEvent, ViewMaintainer
from .optimizer import Optimizer, OptimizerConfig, describe_plan, plan_result
from .service import (
    CatalogSnapshot,
    RewriteCache,
    ServedResult,
    SnapshotManager,
    ViewServer,
    statement_fingerprint,
)
from .sql import parse_select, parse_view, statement_to_sql
from .stats import CardinalityEstimator, DatabaseStats, synthetic_tpch_stats
from .workload import WorkloadGenerator, WorkloadParameters

__version__ = "1.0.0"

__all__ = [
    "BindError",
    "CandidateView",
    "CdcDifftestConfig",
    "CdcDifftestReport",
    "CdcPipeline",
    "ChangeApplier",
    "ChangeLog",
    "ChangeRecord",
    "FreshnessTracker",
    "Recommendation",
    "StalenessBound",
    "ViewAdvisor",
    "ViewFreshness",
    "Catalog",
    "CatalogError",
    "CardinalityEstimator",
    "CatalogSnapshot",
    "CheckConstraint",
    "Column",
    "ColumnType",
    "DEFAULT_OPTIONS",
    "Database",
    "DatabaseStats",
    "DifftestConfig",
    "DifftestReport",
    "ExecutionError",
    "ExperimentConfig",
    "ExperimentHarness",
    "FilterTree",
    "ForeignKey",
    "MatchError",
    "MatchOptions",
    "MatchResult",
    "LatticeIndex",
    "MaintainedView",
    "ViewMaintainer",
    "Optimizer",
    "OptimizerConfig",
    "QueryResult",
    "RejectReason",
    "ReproError",
    "RewriteCache",
    "ServedResult",
    "SnapshotManager",
    "SpjgDescription",
    "SqlSyntaxError",
    "Table",
    "UnsupportedSqlError",
    "ViewChangeEvent",
    "ViewDefinition",
    "ViewMatcher",
    "ViewServer",
    "WorkloadGenerator",
    "WorkloadParameters",
    "describe",
    "describe_plan",
    "execute",
    "generate_tpch",
    "match_view",
    "matcher_for_catalog",
    "materialize_view",
    "parse_select",
    "parse_view",
    "plan_result",
    "run_cdc_difftest",
    "run_corpus_case",
    "run_difftest",
    "run_sql",
    "statement_fingerprint",
    "statement_to_sql",
    "synthetic_tpch_stats",
    "tpch_catalog",
]
