"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart flow: register a view, match a query, execute both.
``examples``
    The paper's worked Examples 1-4, step by step.
``figures [--quick]``
    Rerun the Section 5 sweep and print the Figure 2-4 tables and the
    filtering statistics.
``serve-bench [--smoke]``
    Load-test the concurrent rewrite-serving layer: register a TPC-H
    view pool, replay a repeated query workload from closed-loop worker
    threads with the rewrite cache on and off, and print hit-rate and
    latency statistics.
``pool-bench [--smoke]``
    Sustained-load comparison of the persistent worker-pool serving
    tier against fork-per-batch ``rewrite_many``: same distinct-query
    schedule through both modes (cache disabled), live epoch swaps
    injected during the pool run, throughput and latency percentiles
    side by side. ``--check`` enforces the SLO gate, ``--check-baseline``
    the calibration-normalized regression gates.
``bench-hotpath [--smoke]``
    Time the matching hot path before/after the bitset-interned filter
    tree and registration-time match contexts, cross-checking that both
    configurations return identical candidates and match statistics.
    Also times single-pass probe compilation against the reference
    pipeline and the batched serving path against the sequential loop
    (``--check-speedups`` gates on the floors, ``--profile N`` prints
    cProfile tables instead of benchmarking).
``explain-rewrite <sql> [--json]``
    Trace one query through the rewrite path and print the match-funnel
    report: filter-tree narrowing per level, each candidate's reject
    reason or compensation steps, and the plan cost comparison.
``difftest [--seed N --cases N]``
    Differential correctness: generate seeded random queries with
    covering views over small TPC-H data, execute the original and
    every substitute plan, bag-compare the rows, and shrink any
    divergence to a minimal repro (``--emit DIR`` writes the repro
    script, obs trace, and corpus case; ``--corpus DIR`` re-runs the
    committed regression corpus; ``--parallel N`` produces the rewrites
    under test through the sharded parallel matching path; ``--cdc``
    appends the CDC interleaving harness, checking deferred view
    maintenance against full recompute at every checkpoint).
``cdc-soak [--seed N --steps N]``
    Fixed-seed CDC soak gate: stream inserts / deletes / predicate
    deletes through the change log while the applier runs in partial
    batches, asserting zero torn reads at every checkpoint, strictly
    monotone LSNs, and bounded applier lag. Non-zero exit on any
    violation; wired into CI.
``workload-report <journal> [--json]``
    Aggregate a recorded workload journal (``serve-bench --journal``)
    into query-shape frequencies, the ranked reject-reason funnel,
    cache hit rate, and latency percentiles; ``--json`` emits the
    advisor-consumable aggregate.
``repro-top [--journal PATH | --demo]``
    Live terminal dashboard: RED metrics, reject funnel, merged
    cross-process telemetry sketches, CDC lag, and SLO burn rates --
    over a recorded journal or a demo in-process server.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of Goldstein & Larson (SIGMOD 2001): view matching "
            "with a filter tree."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("demo", help="register a view, match, execute, verify")
    subparsers.add_parser("examples", help="walk through the paper's Examples 1-4")
    figures = subparsers.add_parser(
        "figures", help="rerun the Section 5 sweep (Figures 2-4)"
    )
    figures.add_argument(
        "--quick", action="store_true", help="reduced sweep (seconds, not minutes)"
    )
    figures.add_argument("--views", type=int, default=None, help="max view count")
    figures.add_argument("--queries", type=int, default=None, help="query batch size")
    figures.add_argument("--seed", type=int, default=42)
    serve = subparsers.add_parser(
        "serve-bench", help="load-test the rewrite-serving layer"
    )
    serve.add_argument(
        "--smoke", action="store_true", help="reduced run (a few seconds)"
    )
    serve.add_argument("--views", type=int, default=None, help="view pool size")
    serve.add_argument("--queries", type=int, default=None, help="distinct queries")
    serve.add_argument(
        "--repeat", type=int, default=None, help="passes over the query batch"
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="closed-loop worker threads"
    )
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "journal the cache-enabled run's requests to this JSONL "
            "path (for workload-report / repro-top)"
        ),
    )
    hotpath = subparsers.add_parser(
        "bench-hotpath", help="time the matching hot path before/after interning"
    )
    hotpath.add_argument(
        "--smoke", action="store_true", help="reduced run (seconds)"
    )
    hotpath.add_argument(
        "--views", type=int, nargs="+", default=None, help="view counts to sweep"
    )
    hotpath.add_argument("--queries", type=int, default=None)
    hotpath.add_argument("--seed", type=int, default=None)
    hotpath.add_argument(
        "--catalog-scale",
        type=int,
        default=None,
        metavar="N",
        help=(
            "override the catalog-scale point's view count (default "
            "100000 in the full sweep, disabled in --smoke; 0 disables)"
        ),
    )
    hotpath.add_argument(
        "--pool-views",
        type=int,
        default=None,
        metavar="N",
        help=(
            "override the serving-pool point's view count (default 1000 "
            "in the full sweep, 40 in --smoke; 0 disables)"
        ),
    )
    hotpath.add_argument(
        "--match-only",
        action="store_true",
        help=(
            "run only the matching sweep (probe/filter/match/"
            "verification); skips the end-to-end, maintenance, "
            "catalog-scale, pool, telemetry, and memory sections"
        ),
    )
    hotpath.add_argument("--output", default=None, help="write JSON report here")
    hotpath.add_argument(
        "--check-baseline",
        default=None,
        metavar="JSON",
        help="gate against a committed BENCH_matching.json",
    )
    hotpath.add_argument(
        "--check-overhead",
        default=None,
        metavar="JSON",
        help=(
            "fail if the null-tracer hot path is >5%% slower than the "
            "committed baseline (load-normalized)"
        ),
    )
    hotpath.add_argument(
        "--overhead-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "override the overhead budget; shared CI runners need "
            "headroom above the 0.05 default for scheduling noise"
        ),
    )
    hotpath.add_argument(
        "--check-speedups",
        action="store_true",
        help=(
            "fail unless probe compilation is >=2x faster than the "
            "reference pipeline and batched rewriting >=2x faster than "
            "the sequential loop (end-to-end gate needs >=2 cores)"
        ),
    )
    hotpath.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help=(
            "skip the benchmark; print cProfile top-N tables for the "
            "probe-build and full-match phases instead"
        ),
    )
    pool = subparsers.add_parser(
        "pool-bench",
        help="sustained-load bench: persistent pool vs fork-per-batch",
    )
    pool.add_argument(
        "--smoke", action="store_true", help="reduced run (a few seconds)"
    )
    pool.add_argument("--views", type=int, default=None, help="view pool size")
    pool.add_argument("--queries", type=int, default=None, help="distinct queries")
    pool.add_argument(
        "--passes", type=int, default=None, help="timed passes over the batch"
    )
    pool.add_argument(
        "--workers", type=int, default=None, help="pool / fan-out worker count"
    )
    pool.add_argument("--seed", type=int, default=None)
    pool.add_argument("--output", default=None, help="write JSON report here")
    pool.add_argument(
        "--check",
        action="store_true",
        help=(
            "fail unless the pool beats fork-per-batch on throughput and "
            "p99 with zero failed requests (single-core hosts: must not "
            "be meaningfully worse)"
        ),
    )
    pool.add_argument(
        "--check-baseline",
        default=None,
        metavar="JSON",
        help=(
            "also gate calibration-normalized throughput/p99 against a "
            "committed BENCH_matching.json serving_pool section"
        ),
    )
    explain = subparsers.add_parser(
        "explain-rewrite",
        help="trace one query's rewrite path and print the match funnel",
    )
    explain.add_argument("sql", help="the SELECT statement to explain")
    explain.add_argument(
        "--view",
        action="append",
        default=None,
        metavar="NAME=SQL",
        help="register this view instead of the demo pool (repeatable)",
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the JSON trace export"
    )
    explain.add_argument(
        "--validate",
        action="store_true",
        help="check the export against the trace schema (exit 1 on mismatch)",
    )
    difftest = subparsers.add_parser(
        "difftest",
        help="execute every rewrite against the engine and compare rows",
    )
    difftest.add_argument("--seed", type=int, default=0, help="base RNG seed")
    difftest.add_argument(
        "--cases", type=int, default=200, help="random cases to run"
    )
    difftest.add_argument(
        "--views-per-case", type=int, default=3, help="covering views per case"
    )
    difftest.add_argument(
        "--scale", type=float, default=0.0005, help="TPC-H data scale factor"
    )
    difftest.add_argument(
        "--data-seed", type=int, default=11, help="data generator seed"
    )
    difftest.add_argument(
        "--shrink-budget",
        type=int,
        default=400,
        help="oracle calls allowed per divergence shrink (0 disables)",
    )
    difftest.add_argument(
        "--max-divergences",
        type=int,
        default=5,
        help="stop after this many divergences",
    )
    difftest.add_argument(
        "--emit",
        default=None,
        metavar="DIR",
        help="write shrunk repro scripts, traces, and corpus cases here",
    )
    difftest.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="also re-run the committed regression corpus in DIR",
    )
    difftest.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help=(
            "match each case through a sharded tree with N forked "
            "workers, so the executed rewrites come from the parallel "
            "path (sequential fallback without fork)"
        ),
    )
    difftest.add_argument(
        "--cdc",
        action="store_true",
        help=(
            "also run the CDC interleaving harness: randomized base "
            "mutations through the change log with partial applier "
            "batches, recompute- and rewrite-checked at checkpoints"
        ),
    )
    difftest.add_argument(
        "--cdc-steps",
        type=int,
        default=200,
        metavar="N",
        help="mutation/scan/merge/churn steps for the --cdc harness",
    )
    soak = subparsers.add_parser(
        "cdc-soak",
        help="fixed-seed CDC soak: torn reads, LSN order, bounded lag",
    )
    soak.add_argument("--seed", type=int, default=0, help="RNG seed")
    soak.add_argument("--steps", type=int, default=400, help="soak steps")
    soak.add_argument(
        "--scale", type=float, default=0.002, help="TPC-H data scale factor"
    )
    soak.add_argument(
        "--data-seed", type=int, default=11, help="data generator seed"
    )
    soak.add_argument(
        "--checkpoint-every", type=int, default=25, help="steps per checkpoint"
    )
    soak.add_argument(
        "--lag-bound",
        type=int,
        default=None,
        metavar="RECORDS",
        help=(
            "fail if per-view applier lag exceeds this many log records "
            "at any checkpoint (default: 2 checkpoint intervals x 3 "
            "rows/step)"
        ),
    )
    report = subparsers.add_parser(
        "workload-report",
        help="aggregate a recorded workload journal into an advisor input",
    )
    report.add_argument("journal", help="journal path from serve-bench --journal")
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the advisor-consumable JSON aggregate",
    )
    report.add_argument(
        "--top", type=int, default=10, help="fingerprints/rejects to list"
    )
    top = subparsers.add_parser(
        "repro-top",
        help="live terminal dashboard over a journal or a demo server",
    )
    top.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="render from this recorded journal instead of a live server",
    )
    top.add_argument(
        "--demo",
        action="store_true",
        help="spin up an in-process demo server and watch it live",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, help="seconds between frames"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    arguments = parser.parse_args(argv)

    if arguments.command == "difftest":
        from .cli import run_difftest

        return run_difftest(
            seed=arguments.seed,
            cases=arguments.cases,
            views_per_case=arguments.views_per_case,
            scale=arguments.scale,
            data_seed=arguments.data_seed,
            shrink_budget=arguments.shrink_budget,
            max_divergences=arguments.max_divergences,
            emit=arguments.emit,
            corpus=arguments.corpus,
            parallel=arguments.parallel,
            cdc=arguments.cdc,
            cdc_steps=arguments.cdc_steps,
        )

    if arguments.command == "cdc-soak":
        from .cli import run_cdc_soak

        return run_cdc_soak(
            seed=arguments.seed,
            steps=arguments.steps,
            scale=arguments.scale,
            data_seed=arguments.data_seed,
            checkpoint_every=arguments.checkpoint_every,
            lag_bound=arguments.lag_bound,
        )

    if arguments.command == "explain-rewrite":
        from .cli import run_explain_rewrite

        return run_explain_rewrite(
            arguments.sql,
            views=tuple(arguments.view) if arguments.view else (),
            json_output=arguments.json,
            validate=arguments.validate,
        )

    if arguments.command == "demo":
        from .cli import run_demo

        return run_demo()
    if arguments.command == "examples":
        from .cli import run_examples

        return run_examples()
    if arguments.command == "bench-hotpath":
        from .cli import run_bench_hotpath

        return run_bench_hotpath(
            smoke=arguments.smoke,
            views=tuple(arguments.views) if arguments.views else None,
            queries=arguments.queries,
            seed=arguments.seed,
            catalog_scale=arguments.catalog_scale,
            pool_views=arguments.pool_views,
            match_only=arguments.match_only,
            output=arguments.output,
            check_baseline=arguments.check_baseline,
            check_overhead=arguments.check_overhead,
            overhead_tolerance=arguments.overhead_tolerance,
            check_speedups=arguments.check_speedups,
            profile=arguments.profile,
        )
    if arguments.command == "pool-bench":
        from .cli import run_pool_bench

        return run_pool_bench(
            smoke=arguments.smoke,
            views=arguments.views,
            queries=arguments.queries,
            passes=arguments.passes,
            workers=arguments.workers,
            seed=arguments.seed,
            output=arguments.output,
            check=arguments.check,
            check_baseline=arguments.check_baseline,
        )
    if arguments.command == "serve-bench":
        from .cli import run_serve_bench

        return run_serve_bench(
            smoke=arguments.smoke,
            views=arguments.views,
            queries=arguments.queries,
            repeat=arguments.repeat,
            workers=arguments.workers,
            seed=arguments.seed,
            journal=arguments.journal,
        )
    if arguments.command == "workload-report":
        from .cli import run_workload_report

        return run_workload_report(
            arguments.journal,
            json_output=arguments.json,
            top=arguments.top,
        )
    if arguments.command == "repro-top":
        from .cli import run_repro_top

        return run_repro_top(
            journal=arguments.journal,
            demo=arguments.demo,
            interval=arguments.interval,
            iterations=arguments.iterations,
            once=arguments.once,
        )
    from .cli import run_figures

    return run_figures(
        quick=arguments.quick,
        views=arguments.views,
        queries=arguments.queries,
        seed=arguments.seed,
    )


if __name__ == "__main__":
    sys.exit(main())
