"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart flow: register a view, match a query, execute both.
``examples``
    The paper's worked Examples 1-4, step by step.
``figures [--quick]``
    Rerun the Section 5 sweep and print the Figure 2-4 tables and the
    filtering statistics.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of Goldstein & Larson (SIGMOD 2001): view matching "
            "with a filter tree."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("demo", help="register a view, match, execute, verify")
    subparsers.add_parser("examples", help="walk through the paper's Examples 1-4")
    figures = subparsers.add_parser(
        "figures", help="rerun the Section 5 sweep (Figures 2-4)"
    )
    figures.add_argument(
        "--quick", action="store_true", help="reduced sweep (seconds, not minutes)"
    )
    figures.add_argument("--views", type=int, default=None, help="max view count")
    figures.add_argument("--queries", type=int, default=None, help="query batch size")
    figures.add_argument("--seed", type=int, default=42)
    arguments = parser.parse_args(argv)

    if arguments.command == "demo":
        from .cli import run_demo

        return run_demo()
    if arguments.command == "examples":
        from .cli import run_examples

        return run_examples()
    from .cli import run_figures

    return run_figures(
        quick=arguments.quick,
        views=arguments.views,
        queries=arguments.queries,
        seed=arguments.seed,
    )


if __name__ == "__main__":
    sys.exit(main())
