"""Workload-driven materialized-view recommendation."""

from .advisor import CandidateView, Recommendation, ViewAdvisor

__all__ = ["CandidateView", "Recommendation", "ViewAdvisor"]
