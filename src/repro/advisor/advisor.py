"""A workload-driven materialized-view advisor.

The paper motivates its scalability requirement with tools that generate
views in bulk: "Tools similar to that described in [Agrawal, Chaudhuri,
Narasayya: Automated Selection of Materialized Views and Indexes, VLDB
2000] can also generate large numbers of views." This module is a compact
member of that family, built entirely on the repository's own machinery:

1. **Candidate generation** -- queries are grouped by (table set, join
   predicates); each group yields one candidate view exposing the union of
   the columns its queries need, aggregated by the union of their grouping
   columns when every query in the group aggregates.
2. **Cost-based evaluation** -- each candidate is registered with a
   :class:`ViewMatcher` and every workload query is optimized with and
   without it; the candidate's benefit is the total plan-cost reduction.
3. **Greedy selection** -- candidates are accepted in descending benefit
   until the requested number is reached, re-evaluating the residual
   benefit against the views already chosen (a candidate helping only
   queries an earlier pick already covers gets no credit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..core.describe import describe
from ..core.matcher import ViewMatcher
from ..core.normalize import classify_predicate
from ..optimizer.optimizer import Optimizer
from ..sql.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    conjunction,
)
from ..sql.statements import SelectItem, SelectStatement, TableRef
from ..stats.estimator import CardinalityEstimator
from ..stats.statistics import DatabaseStats


@dataclass
class CandidateView:
    """One recommended view with its measured workload benefit."""

    name: str
    statement: SelectStatement
    benefit: float = 0.0
    queries_helped: int = 0
    estimated_rows: float = 0.0

    @property
    def is_aggregate(self) -> bool:
        return self.statement.is_aggregate


@dataclass
class Recommendation:
    """The advisor's output: chosen views plus workload-level numbers."""

    views: list[CandidateView]
    workload_cost_before: float
    workload_cost_after: float

    @property
    def improvement(self) -> float:
        if self.workload_cost_before <= 0:
            return 0.0
        return 1.0 - self.workload_cost_after / self.workload_cost_before


@dataclass
class _QueryGroup:
    tables: frozenset[str]
    join_predicates: frozenset[Expression]
    queries: list[SelectStatement] = field(default_factory=list)


class ViewAdvisor:
    """Recommends materialized views for a query workload."""

    def __init__(self, catalog: Catalog, stats: DatabaseStats):
        self.catalog = catalog
        self.stats = stats
        self.estimator = CardinalityEstimator(stats)
        self._counter = 0

    # -- public API -----------------------------------------------------------

    def recommend(
        self,
        queries: list[SelectStatement],
        max_views: int = 5,
    ) -> Recommendation:
        """Propose up to ``max_views`` views for the workload."""
        candidates = self.generate_candidates(queries)
        baseline = self._workload_cost(queries, matcher=None)
        chosen: list[CandidateView] = []
        current_cost = baseline
        remaining = list(candidates)
        while remaining and len(chosen) < max_views:
            best: CandidateView | None = None
            best_cost = current_cost
            for candidate in remaining:
                matcher = self._matcher_for(chosen + [candidate])
                cost = self._workload_cost(queries, matcher)
                if cost < best_cost - 1e-9:
                    best = candidate
                    best_cost = cost
            if best is None:
                break
            best.benefit = current_cost - best_cost
            best.queries_helped = self._queries_helped(queries, chosen + [best])
            chosen.append(best)
            remaining.remove(best)
            current_cost = best_cost
        return Recommendation(
            views=chosen,
            workload_cost_before=baseline,
            workload_cost_after=current_cost,
        )

    # -- candidate generation ------------------------------------------------------

    def generate_candidates(
        self, queries: list[SelectStatement]
    ) -> list[CandidateView]:
        """Syntactic candidates: one per (table set, join predicates) group."""
        groups: dict[tuple, _QueryGroup] = {}
        for statement in queries:
            tables = frozenset(statement.table_names())
            joins = frozenset(self._join_conjuncts(statement))
            key = (tables, joins)
            group = groups.get(key)
            if group is None:
                group = _QueryGroup(tables=tables, join_predicates=joins)
                groups[key] = group
            group.queries.append(statement)
        candidates = []
        for group in groups.values():
            candidate = self._candidate_for(group)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def _join_conjuncts(self, statement: SelectStatement) -> list[Expression]:
        classified = classify_predicate(statement.where)
        return [
            BinaryOp("=", ColumnRef(*a), ColumnRef(*b))
            for a, b in classified.equalities
        ]

    def _candidate_for(self, group: _QueryGroup) -> CandidateView | None:
        needed: dict[tuple[str, str], ColumnRef] = {}
        sum_arguments: dict[Expression, None] = {}
        grouping: dict[tuple[str, str], ColumnRef] = {}
        all_aggregate = all(q.is_aggregate for q in group.queries)
        for statement in group.queries:
            for item in statement.select_items:
                for node in item.expression.walk():
                    if isinstance(node, FuncCall) and node.is_aggregate():
                        if not node.star:
                            sum_arguments.setdefault(node.args[0])
                    elif isinstance(node, ColumnRef):
                        needed.setdefault(node.key, node)
            for expr in statement.group_by:
                for ref in expr.column_refs():
                    grouping.setdefault(ref.key, ref)
                    needed.setdefault(ref.key, ref)
            # Range/residual columns must be exposed so compensating
            # predicates can be applied on the view.
            classified = classify_predicate(statement.where)
            for predicate in classified.range_predicates:
                reference = ColumnRef(*predicate.column)
                needed.setdefault(predicate.column, reference)
                grouping.setdefault(predicate.column, reference)
            for conjunct in classified.residuals:
                for ref in conjunct.column_refs():
                    needed.setdefault(ref.key, ref)
                    grouping.setdefault(ref.key, ref)
        self._counter += 1
        name = f"advised{self._counter}"
        if all_aggregate:
            items = [
                SelectItem(ref, alias=f"g_{ref.column}")
                for ref in grouping.values()
            ]
            # Non-grouping plain columns cannot be kept in an aggregation
            # view; queries needing them will simply not be helped.
            for i, argument in enumerate(sum_arguments):
                items.append(
                    SelectItem(FuncCall("sum", (argument,)), alias=f"s_{i}")
                )
            items.append(SelectItem(FuncCall("count_big", star=True), alias="cnt"))
            statement = SelectStatement(
                select_items=tuple(items),
                from_tables=tuple(TableRef(t) for t in sorted(group.tables)),
                where=conjunction(sorted(group.join_predicates, key=str)),
                group_by=tuple(grouping.values()),
            )
        else:
            if not needed:
                return None
            items = [
                SelectItem(ref, alias=f"c_{ref.column}")
                for _, ref in sorted(needed.items())
            ]
            statement = SelectStatement(
                select_items=tuple(items),
                from_tables=tuple(TableRef(t) for t in sorted(group.tables)),
                where=conjunction(sorted(group.join_predicates, key=str)),
            )
        return CandidateView(
            name=name,
            statement=statement,
            estimated_rows=self.estimator.output_cardinality(
                describe(statement, self.catalog)
            ),
        )

    # -- evaluation ---------------------------------------------------------------

    def _matcher_for(self, candidates: list[CandidateView]) -> ViewMatcher:
        matcher = ViewMatcher(self.catalog)
        for candidate in candidates:
            matcher.register_view(candidate.name, candidate.statement)
        return matcher

    def _workload_cost(
        self, queries: list[SelectStatement], matcher: ViewMatcher | None
    ) -> float:
        optimizer = Optimizer(self.catalog, self.stats, matcher=matcher)
        return sum(optimizer.optimize(q).cost for q in queries)

    def _queries_helped(
        self, queries: list[SelectStatement], candidates: list[CandidateView]
    ) -> int:
        optimizer = Optimizer(
            self.catalog, self.stats, matcher=self._matcher_for(candidates)
        )
        return sum(1 for q in queries if optimizer.optimize(q).uses_view)
