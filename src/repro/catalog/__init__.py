"""Catalog: tables, constraints, materialized view definitions, TPC-H schema."""

from .catalog import Catalog, ViewDefinition
from .schema import CheckConstraint, Column, ColumnType, ForeignKey, Table
from .tpch import TPCH_BASE_CARDINALITIES, tpch_catalog

__all__ = [
    "Catalog",
    "CheckConstraint",
    "Column",
    "ColumnType",
    "ForeignKey",
    "TPCH_BASE_CARDINALITIES",
    "Table",
    "ViewDefinition",
    "tpch_catalog",
]
