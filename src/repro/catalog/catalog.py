"""The catalog: a registry of base tables, constraints and view definitions.

The catalog plays the role of SQL Server's metadata layer in the paper: the
binder resolves names against it, the matcher reads constraint metadata from
it, and materialized view definitions registered here are what the filter
tree indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import CatalogError
from ..sql.binder import bind_statement
from ..sql.parser import parse_select, parse_view
from ..sql.statements import CreateViewStatement, SelectStatement
from .schema import ForeignKey, Table


@dataclass(frozen=True)
class ViewDefinition:
    """A registered materialized view: its name and bound SPJG query."""

    name: str
    query: SelectStatement

    @property
    def is_aggregate(self) -> bool:
        return self.query.is_aggregate


class Catalog:
    """Tables, constraints and materialized view definitions."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ViewDefinition] = {}

    # -- tables --------------------------------------------------------------

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name} already exists")
        for fk in table.foreign_keys:
            self._validate_foreign_key(table, fk)
        self._tables[table.name] = table

    def _validate_foreign_key(self, table: Table, fk: ForeignKey) -> None:
        parent = self._tables.get(fk.parent_table)
        if parent is None:
            raise CatalogError(
                f"FK on {table.name} references unknown table {fk.parent_table}"
            )
        if not parent.is_unique_key(fk.parent_columns):
            raise CatalogError(
                f"FK on {table.name} must target a unique key of "
                f"{fk.parent_table}; {fk.parent_columns} is not one"
            )

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name}") from None

    def tables(self) -> Iterator[Table]:
        yield from self._tables.values()

    def column_names(self, table: str) -> Sequence[str]:
        return self.table(table).column_names

    # -- views ---------------------------------------------------------------

    def add_view(self, definition: CreateViewStatement | str) -> ViewDefinition:
        """Register a materialized view from a CREATE VIEW statement or text.

        The inner query is bound against this catalog; the definition must
        fall inside the indexable SPJG class (the binder and the matcher's
        validation enforce this).
        """
        if isinstance(definition, str):
            definition = parse_view(definition)
        if definition.name in self._views:
            raise CatalogError(f"view {definition.name} already exists")
        if definition.name in self._tables:
            raise CatalogError(f"{definition.name} clashes with a table name")
        bound = bind_statement(definition.query, self)
        view = ViewDefinition(name=definition.name, query=bound)
        self._views[definition.name] = view
        return view

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"no view named {name}")
        del self._views[name]

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"no view named {name}") from None

    def views(self) -> Iterator[ViewDefinition]:
        yield from self._views.values()

    @property
    def view_count(self) -> int:
        return len(self._views)

    # -- convenience -----------------------------------------------------------

    def bind_sql(self, sql: str) -> SelectStatement:
        """Parse and bind a SELECT statement against this catalog."""
        return bind_statement(parse_select(sql), self)

    def foreign_keys_between(self, child: str, parent: str) -> tuple[ForeignKey, ...]:
        """All FKs declared on ``child`` that reference ``parent``."""
        return tuple(
            fk for fk in self.table(child).foreign_keys if fk.parent_table == parent
        )
