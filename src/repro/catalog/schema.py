"""Schema metadata: columns, tables and the four constraint kinds.

The view-matching algorithm exploits exactly four types of constraints
(paper, Section 3): not-null constraints on columns, primary keys,
uniqueness constraints, and foreign keys. Check constraints are carried as
an optional extension (Section 3.1.2 notes they can be folded into the
implication antecedent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import CatalogError
from ..sql.expressions import Expression


class ColumnType(Enum):
    """The value domains the engine and data generator understand."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"  # stored as an integer day number; ordered like INTEGER

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT, ColumnType.DATE)


@dataclass(frozen=True)
class Column:
    """A column definition: name, type, and nullability."""

    name: str
    type: ColumnType = ColumnType.INTEGER
    nullable: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``columns`` of the owning table to ``parent_table``.

    ``parent_columns`` must be a unique key (primary or declared-unique) of
    the parent table; the catalog validates this at registration time. The
    cardinality-preserving-join test of Section 3.2 requires all five
    properties: equijoin on *all* columns, non-null FK columns, declared
    foreign key, unique target key.
    """

    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise CatalogError(
                f"foreign key column count mismatch: {self.columns} -> "
                f"{self.parent_columns}"
            )


@dataclass(frozen=True)
class CheckConstraint:
    """A declared table-level check constraint (a predicate over one table)."""

    name: str
    predicate: Expression


@dataclass
class Table:
    """A base-table definition with its constraints."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    unique_keys: tuple[tuple[str, ...], ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    check_constraints: tuple[CheckConstraint, ...] = ()
    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise CatalogError(f"duplicate column {column.name} in {self.name}")
            self._by_name[column.name] = column
        for key in (self.primary_key, *self.unique_keys):
            for name in key:
                if name not in self._by_name:
                    raise CatalogError(f"key column {name} not in table {self.name}")
        for fk in self.foreign_keys:
            for name in fk.columns:
                if name not in self._by_name:
                    raise CatalogError(f"FK column {name} not in table {self.name}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no column {name} in table {self.name}") from None

    def all_unique_keys(self) -> tuple[tuple[str, ...], ...]:
        """Primary key plus declared unique keys, de-duplicated."""
        keys: list[tuple[str, ...]] = []
        if self.primary_key:
            keys.append(self.primary_key)
        for key in self.unique_keys:
            if key not in keys:
                keys.append(key)
        return tuple(keys)

    def is_unique_key(self, columns: tuple[str, ...]) -> bool:
        """True when ``columns`` is exactly a declared unique key (any order)."""
        wanted = frozenset(columns)
        return any(frozenset(key) == wanted for key in self.all_unique_keys())

    def is_nullable(self, name: str) -> bool:
        return self.column(name).nullable
