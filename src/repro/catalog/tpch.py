"""The TPC-H/R schema, with primary keys, foreign keys and NOT NULL declared.

This is the database of the paper's examples and of its Section 5
experiments ("The database was TPC-H ... with primary keys and foreign keys
defined"). Dates are modelled as integer day numbers (ordered identically),
decimals as floats.
"""

from __future__ import annotations

from .catalog import Catalog
from .schema import Column, ColumnType, ForeignKey, Table

_I = ColumnType.INTEGER
_F = ColumnType.FLOAT
_S = ColumnType.STRING
_D = ColumnType.DATE


def tpch_catalog() -> Catalog:
    """Build a fresh catalog containing the eight TPC-H tables."""
    catalog = Catalog()

    catalog.add_table(
        Table(
            name="region",
            columns=(
                Column("r_regionkey", _I),
                Column("r_name", _S),
                Column("r_comment", _S),
            ),
            primary_key=("r_regionkey",),
        )
    )

    catalog.add_table(
        Table(
            name="nation",
            columns=(
                Column("n_nationkey", _I),
                Column("n_name", _S),
                Column("n_regionkey", _I),
                Column("n_comment", _S),
            ),
            primary_key=("n_nationkey",),
            foreign_keys=(
                ForeignKey(("n_regionkey",), "region", ("r_regionkey",)),
            ),
        )
    )

    catalog.add_table(
        Table(
            name="supplier",
            columns=(
                Column("s_suppkey", _I),
                Column("s_name", _S),
                Column("s_address", _S),
                Column("s_nationkey", _I),
                Column("s_phone", _S),
                Column("s_acctbal", _F),
                Column("s_comment", _S),
            ),
            primary_key=("s_suppkey",),
            foreign_keys=(
                ForeignKey(("s_nationkey",), "nation", ("n_nationkey",)),
            ),
        )
    )

    catalog.add_table(
        Table(
            name="customer",
            columns=(
                Column("c_custkey", _I),
                Column("c_name", _S),
                Column("c_address", _S),
                Column("c_nationkey", _I),
                Column("c_phone", _S),
                Column("c_acctbal", _F),
                Column("c_mktsegment", _S),
                Column("c_comment", _S),
            ),
            primary_key=("c_custkey",),
            foreign_keys=(
                ForeignKey(("c_nationkey",), "nation", ("n_nationkey",)),
            ),
        )
    )

    catalog.add_table(
        Table(
            name="part",
            columns=(
                Column("p_partkey", _I),
                Column("p_name", _S),
                Column("p_mfgr", _S),
                Column("p_brand", _S),
                Column("p_type", _S),
                Column("p_size", _I),
                Column("p_container", _S),
                Column("p_retailprice", _F),
                Column("p_comment", _S),
            ),
            primary_key=("p_partkey",),
        )
    )

    catalog.add_table(
        Table(
            name="partsupp",
            columns=(
                Column("ps_partkey", _I),
                Column("ps_suppkey", _I),
                Column("ps_availqty", _I),
                Column("ps_supplycost", _F),
                Column("ps_comment", _S),
            ),
            primary_key=("ps_partkey", "ps_suppkey"),
            foreign_keys=(
                ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
                ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
            ),
        )
    )

    catalog.add_table(
        Table(
            name="orders",
            columns=(
                Column("o_orderkey", _I),
                Column("o_custkey", _I),
                Column("o_orderstatus", _S),
                Column("o_totalprice", _F),
                Column("o_orderdate", _D),
                Column("o_orderpriority", _S),
                Column("o_clerk", _S),
                Column("o_shippriority", _I),
                Column("o_comment", _S),
            ),
            primary_key=("o_orderkey",),
            foreign_keys=(
                ForeignKey(("o_custkey",), "customer", ("c_custkey",)),
            ),
        )
    )

    catalog.add_table(
        Table(
            name="lineitem",
            columns=(
                Column("l_orderkey", _I),
                Column("l_partkey", _I),
                Column("l_suppkey", _I),
                Column("l_linenumber", _I),
                Column("l_quantity", _F),
                Column("l_extendedprice", _F),
                Column("l_discount", _F),
                Column("l_tax", _F),
                Column("l_returnflag", _S),
                Column("l_linestatus", _S),
                Column("l_shipdate", _D),
                Column("l_commitdate", _D),
                Column("l_receiptdate", _D),
                Column("l_shipinstruct", _S),
                Column("l_shipmode", _S),
                Column("l_comment", _S),
            ),
            primary_key=("l_orderkey", "l_linenumber"),
            foreign_keys=(
                ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
                ForeignKey(("l_partkey",), "part", ("p_partkey",)),
                ForeignKey(("l_suppkey",), "supplier", ("s_suppkey",)),
                ForeignKey(
                    ("l_partkey", "l_suppkey"),
                    "partsupp",
                    ("ps_partkey", "ps_suppkey"),
                ),
            ),
        )
    )

    return catalog


# Rough base-table cardinalities per unit of scale factor, from the TPC-H
# specification; the data generator and the statistics module scale these.
TPCH_BASE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}
