"""Change-data-capture: deferred view maintenance with bounded staleness.

The paper's maintenance story (Section 2: ``count_big(*)`` so deletes
can be handled incrementally) assumes views are patched synchronously
with every base-table change. This package relaxes that: base-table
writes land immediately and are *captured* into an ordered change log
(:class:`ChangeLog`, monotone LSNs, transactional-outbox style via
:class:`CdcPipeline`); a deferred applier (:class:`ChangeApplier`)
drains the log in batches through the same delta algebra the
synchronous maintainer uses; and a :class:`FreshnessTracker` maps every
view to the last LSN it has absorbed plus a wall-clock lag estimate.

The serving layer consumes freshness through
:meth:`FreshnessTracker.bound`: a request's ``max_staleness`` freezes
into a :class:`StalenessBound` that the matcher consults per candidate,
so a stale-but-cheap view wins only when its lag is inside the caller's
bound -- otherwise it is skipped with the ``STALE`` reject reason.
"""

from .applier import ApplierStats, ChangeApplier
from .freshness import FreshnessTracker, StalenessBound, ViewFreshness
from .log import ChangeLog, ChangeRecord
from .pipeline import CdcPipeline

__all__ = [
    "ApplierStats",
    "CdcPipeline",
    "ChangeApplier",
    "ChangeLog",
    "ChangeRecord",
    "FreshnessTracker",
    "StalenessBound",
    "ViewFreshness",
]
