"""The deferred applier: drains the change log into stored views.

Correctness problem being solved: a view delta for log record *L* must
join the changed table's delta rows against the *other* base tables as
they stood at *L* -- but by the time the applier runs, the live base
tables are already at the log head (writers mutate them synchronously
and only defer view maintenance). Computing deltas against head state
would double- or under-count joins.

The applier therefore keeps a **shadow database**: private copies of
every base table any registered view reads, advanced strictly in LSN
order. Application is two-phase:

* :meth:`ChangeApplier.scan` reads the next batch of log records, and
  for each record computes every affected view's delta against the
  shadow (via the same overlay evaluation the synchronous maintainer
  uses), queues the deltas per view, then advances the shadow by that
  record. After a scan the shadow is exactly the base state as of the
  scan watermark.
* :meth:`ChangeApplier.merge` folds queued deltas into the stored view
  relations in the live database -- count/sum merge, empty-group
  deletion, SPJ append/remove -- advancing each view's freshness
  watermark as its queue drains. Merging is per view and batchable, so
  different views may lag by different amounts: that is what the
  freshness tracker measures and bounded-staleness serving exploits.

Registration is the subtle point: a new view materializes from the
*shadow* after scanning to the log head, so its initial contents and
its watermark agree by construction.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..catalog.catalog import Catalog
from ..engine.database import Database
from ..engine.executor import execute
from ..errors import ExecutionError, MatchError
from ..maintenance.maintainer import (
    MaintainedView,
    ViewChangeEvent,
    analyze_view,
    apply_view_delta,
    compute_view_delta,
)
from ..obs.telemetry import (
    TelemetryHub,
    current_trace_context,
    telemetry_hub,
)
from ..sql.statements import SelectStatement
from .freshness import FreshnessTracker
from .log import ChangeLog

logger = logging.getLogger(__name__)


@dataclass
class ApplierStats:
    """Cumulative applier counters, for throughput metrics."""

    records_scanned: int = 0
    base_rows_scanned: int = 0
    delta_batches_merged: int = 0
    delta_rows_merged: int = 0
    scan_seconds: float = 0.0
    merge_seconds: float = 0.0

    @property
    def apply_seconds(self) -> float:
        """Total time spent scanning and merging."""
        return self.scan_seconds + self.merge_seconds

    @property
    def rows_per_second(self) -> float:
        """Base rows absorbed per second of applier work (0 when idle)."""
        if self.apply_seconds <= 0:
            return 0.0
        return self.base_rows_scanned / self.apply_seconds

    def snapshot(self) -> dict:
        """Counters and derived rates as a plain dict."""
        return {
            "records_scanned": self.records_scanned,
            "base_rows_scanned": self.base_rows_scanned,
            "delta_batches_merged": self.delta_batches_merged,
            "delta_rows_merged": self.delta_rows_merged,
            "scan_seconds": self.scan_seconds,
            "merge_seconds": self.merge_seconds,
            "rows_per_second": self.rows_per_second,
        }


@dataclass(frozen=True)
class _PendingDelta:
    """One view delta awaiting merge, tagged with its source LSN."""

    lsn: int
    sign: int
    rows: list


class ChangeApplier:
    """Applies logged base-table changes to registered views in batches."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        log: ChangeLog,
        freshness: FreshnessTracker | None = None,
        batch_size: int = 256,
        lock: threading.RLock | None = None,
        clock: Callable[[], float] = time.perf_counter,
        telemetry: TelemetryHub | None = None,
    ):
        """``database`` is the live database: stored view relations live
        there (and are patched in place by :meth:`merge`); base tables
        are only *read* from it, once per view registration, to seed the
        shadow. ``lock`` lets a pipeline share one lock between writers
        and the applier.

        ``telemetry`` is the hub apply-latency sketches and spans land
        in; ``None`` uses the process-global hub, and an attached
        :class:`~repro.service.server.ViewServer` rebinds it to its own
        so CDC telemetry reads out next to the serving telemetry.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.catalog = catalog
        self.database = database
        self.log = log
        self.freshness = freshness if freshness is not None else FreshnessTracker(log)
        self.batch_size = batch_size
        self.stats = ApplierStats()
        self.telemetry = telemetry
        self._clock = clock
        self._lock = lock if lock is not None else threading.RLock()
        self._views: dict[str, MaintainedView] = {}
        self._pending: dict[str, deque[_PendingDelta]] = {}
        self._shadow = Database()
        self._scanned_lsn = log.head_lsn
        self._listeners: list[Callable[[ViewChangeEvent], None]] = []

    # -- introspection -------------------------------------------------------

    @property
    def scanned_lsn(self) -> int:
        """The LSN through which the shadow has been advanced."""
        return self._scanned_lsn

    @property
    def shadow_database(self) -> Database:
        """The applier's private base-table state at ``scanned_lsn``.

        Read-only by contract: mutating it desynchronizes deferred
        maintenance from the log.
        """
        return self._shadow

    def views(self) -> tuple[MaintainedView, ...]:
        """All views under deferred maintenance."""
        with self._lock:
            return tuple(self._views.values())

    def pending_deltas(self, view: str) -> int:
        """How many unmerged delta batches the view has queued."""
        with self._lock:
            queue = self._pending.get(view)
            return len(queue) if queue else 0

    # -- telemetry -----------------------------------------------------------

    def _hub(self) -> TelemetryHub:
        return self.telemetry if self.telemetry is not None else telemetry_hub()

    def _record_phase(self, phase: str, elapsed: float, **attributes) -> None:
        """One applier phase (scan/merge) into sketch + counter + span.

        The span carries the current request's trace id when the applier
        runs inside a traced serving path (a bounded-staleness request
        driving a refresh), so CDC work stitches under the same trace as
        the matching workers.
        """
        hub = self._hub()
        hub.record(f"cdc_{phase}_seconds", elapsed)
        hub.increment(f"cdc_{phase}s")
        context = current_trace_context()
        hub.record_span(
            f"cdc.{phase}",
            elapsed,
            trace_id=context.trace_id if context is not None else None,
            **attributes,
        )

    # -- change notifications ------------------------------------------------

    def add_listener(
        self, listener: Callable[[ViewChangeEvent], None]
    ) -> None:
        """Subscribe to ``cdc-apply`` events (fired per merged view).

        The serving layer uses these to evict cached rewrites whose view
        contents just moved. Failures are isolated, as in the
        synchronous maintainer.
        """
        self._listeners.append(listener)

    def _notify(self, views: Iterable[str]) -> None:
        names = tuple(views)
        if not names or not self._listeners:
            return
        event = ViewChangeEvent(kind="cdc-apply", table=None, views=names)
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:
                logger.exception(
                    "cdc-apply listener %r failed; continuing", listener
                )

    # -- registration --------------------------------------------------------

    def register(self, name: str, statement: SelectStatement) -> MaintainedView:
        """Start deferred maintenance of ``statement`` as view ``name``.

        Scans the log to head first, seeds the shadow with any base
        tables the view reads that are not yet shadowed (safe exactly
        because live == shadow == head at that moment), materializes the
        view from the shadow into the live database, and sets its
        watermark to the head LSN. Raises :class:`MatchError` for
        unmaintainable views and :class:`ValueError` for duplicates.
        """
        with self._lock:
            if name in self._views:
                raise ValueError(f"view {name} already registered")
            view = analyze_view(self.catalog, name, statement)
            self.scan(limit=None)
            for table in view.tables:
                if not self._shadow.has(table):
                    live = self.database.relation(table)
                    self._shadow.store(
                        table, live.columns, list(live.rows)
                    )
            result = execute(statement, self._shadow)
            for i, item in enumerate(statement.select_items):
                if item.name is None:
                    raise MatchError(
                        f"view {name} output #{i + 1} has no name; use AS"
                    )
            columns = tuple(item.name for item in statement.select_items)
            self.database.store(name, columns, result.rows)  # type: ignore[arg-type]
            self._views[name] = view
            self._pending[name] = deque()
            self.freshness.track(name, self._scanned_lsn)
            return view

    def unregister(self, name: str) -> None:
        """Stop maintaining a view and drop its stored relation."""
        with self._lock:
            del self._views[name]
            del self._pending[name]
            self.freshness.forget(name)
            if self.database.has(name):
                self.database.drop(name)

    # -- two-phase application ----------------------------------------------

    def scan(self, limit: int | None = None) -> int:
        """Advance the shadow by up to ``limit`` log records; returns count.

        For each record, affected views' deltas are computed against the
        shadow (pre-record state for inserts, post-removal state for
        deletes -- mirroring the synchronous maintainer's sequencing) and
        queued; then the shadow absorbs the record. Watermarks of views
        with empty queues advance to the new scan watermark.
        """
        with self._lock:
            started = self._clock()
            records = self.log.records_after(self._scanned_lsn, limit)
            for record in records:
                rows = [tuple(row) for row in record.rows]
                affected = [
                    v
                    for v in self._views.values()
                    if record.table in v.tables
                ]
                if record.kind == "insert":
                    for view in affected:
                        self._queue_delta(
                            view, record.table, record.lsn, +1, rows
                        )
                    self._shadow_insert(record.table, rows)
                else:
                    self._shadow_delete(record.table, rows)
                    for view in affected:
                        self._queue_delta(
                            view, record.table, record.lsn, -1, rows
                        )
                self._scanned_lsn = record.lsn
                self.stats.records_scanned += 1
                self.stats.base_rows_scanned += len(rows)
            if records:
                for name in self._views:
                    self._refresh_watermark(name)
            elapsed = self._clock() - started
            self.stats.scan_seconds += elapsed
            self._record_phase("scan", elapsed, records=len(records))
            return len(records)

    def merge(
        self, view: str | None = None, max_deltas: int | None = None
    ) -> int:
        """Fold queued deltas into stored views; returns batches merged.

        ``view`` limits merging to one view; ``max_deltas`` caps how many
        queued delta batches are folded per view (partial merges are what
        produce per-view lag). Watermarks advance as queues drain.
        """
        with self._lock:
            started = self._clock()
            names = [view] if view is not None else list(self._views)
            merged_total = 0
            touched: list[str] = []
            for name in names:
                queue = self._pending[name]
                maintained = self._views[name]
                budget = max_deltas
                merged_here = 0
                while queue and (budget is None or budget > 0):
                    delta = queue.popleft()
                    apply_view_delta(
                        maintained, delta.rows, delta.sign, self.database
                    )
                    self.stats.delta_batches_merged += 1
                    self.stats.delta_rows_merged += len(delta.rows)
                    merged_here += 1
                    if budget is not None:
                        budget -= 1
                if merged_here:
                    merged_total += merged_here
                    touched.append(name)
                self._refresh_watermark(name)
            elapsed = self._clock() - started
            self.stats.merge_seconds += elapsed
            self._record_phase("merge", elapsed, batches=merged_total)
            hub = self._hub()
            for name in names:
                freshness = self.freshness.freshness(name)
                if freshness is not None:
                    hub.record(
                        f"cdc_view_lag_seconds.{name}", freshness.lag_seconds
                    )
        self._notify(touched)
        return merged_total

    def apply(self, max_records: int | None = None) -> int:
        """One scan-then-merge step; returns log records scanned.

        ``max_records`` defaults to the configured batch size.
        """
        scanned = self.scan(
            self.batch_size if max_records is None else max_records
        )
        self.merge()
        return scanned

    def drain(self) -> int:
        """Apply batches until the log is fully absorbed; returns records."""
        total = 0
        while True:
            scanned = self.apply()
            total += scanned
            with self._lock:
                idle = scanned == 0 and not any(self._pending.values())
            if idle:
                return total

    # -- internals -----------------------------------------------------------

    def _queue_delta(
        self,
        view: MaintainedView,
        table: str,
        lsn: int,
        sign: int,
        rows: list[tuple[object, ...]],
    ) -> None:
        delta = compute_view_delta(view, table, rows, self._shadow)
        if delta:
            self._pending[view.name].append(_PendingDelta(lsn, sign, delta))

    def _shadow_insert(
        self, table: str, rows: list[tuple[object, ...]]
    ) -> None:
        if not self._shadow.has(table):
            return  # no registered view reads this table (yet)
        relation = self._shadow.relation(table)
        relation.rows.extend(rows)
        relation.bump_version()

    def _shadow_delete(
        self, table: str, rows: list[tuple[object, ...]]
    ) -> None:
        if not self._shadow.has(table):
            return
        relation = self._shadow.relation(table)
        for row in rows:
            try:
                relation.rows.remove(row)
            except ValueError:
                raise ExecutionError(
                    f"change log out of sync with shadow of {table}: "
                    f"row {row} not present"
                ) from None
        relation.bump_version()

    def _refresh_watermark(self, name: str) -> None:
        queue = self._pending[name]
        applied = queue[0].lsn - 1 if queue else self._scanned_lsn
        self.freshness.track(name, applied)


__all__ = ["ApplierStats", "ChangeApplier"]
