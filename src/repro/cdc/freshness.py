"""Per-view freshness: applied-LSN watermarks and wall-clock lag.

Every maintained view has a watermark -- the last LSN whose effects are
folded into its stored rows. Freshness is the distance between that
watermark and the log head, reported two ways: ``lag_records`` (how many
log records the view has not absorbed) and ``lag_seconds`` (how long ago
the first unabsorbed record was written -- the standard "replication
lag" estimate, which is what callers bound with ``max_staleness``).

:meth:`FreshnessTracker.bound` freezes the verdicts for one request into
a :class:`StalenessBound`: a plain callable-over-a-dict that the core
matcher invokes per candidate. Freezing at creation keeps the serving
hot path lock-free and makes the policy safe to ship into forked
matching workers (it is pure data).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from .log import ChangeLog


@dataclass(frozen=True)
class ViewFreshness:
    """One view's freshness relative to the change-log head."""

    view: str
    applied_lsn: int
    head_lsn: int
    lag_seconds: float

    @property
    def lag_records(self) -> int:
        """How many log records the view has not yet absorbed."""
        return max(self.head_lsn - self.applied_lsn, 0)

    @property
    def is_fresh(self) -> bool:
        """True when the view has absorbed every logged change."""
        return self.lag_records == 0


class StalenessBound:
    """Frozen staleness verdicts for one request.

    Calling the bound with a view name returns ``None`` when the view is
    usable under the request's ``max_staleness``, or a human-readable
    detail string when it must be skipped (recorded as the ``STALE``
    reject reason in the match funnel). Views the tracker has never heard
    of -- unmanaged views -- are treated as fresh.
    """

    __slots__ = ("max_seconds", "head_lsn", "_stale")

    def __init__(
        self, max_seconds: float, head_lsn: int, stale: dict[str, str]
    ):
        self.max_seconds = max_seconds
        self.head_lsn = head_lsn
        self._stale = stale

    def __call__(self, view_name: str) -> str | None:
        return self._stale.get(view_name)

    @property
    def stale_views(self) -> frozenset[str]:
        """Names of every view this bound excludes."""
        return frozenset(self._stale)

    def __repr__(self) -> str:
        return (
            f"StalenessBound(max_seconds={self.max_seconds!r}, "
            f"head_lsn={self.head_lsn}, stale={sorted(self._stale)})"
        )


class FreshnessTracker:
    """Maps each maintained view to its applied-LSN watermark.

    Watermarks advance under the applier's control; reads take the
    tracker's lock briefly and copy, so freshness snapshots never observe
    a torn update. The tracker is deliberately ignorant of *how* views
    are maintained -- it only records watermarks against the log head.
    """

    def __init__(
        self, log: ChangeLog, clock: Callable[[], float] = time.time
    ):
        self._log = log
        self._clock = clock
        self._lock = threading.Lock()
        self._applied: dict[str, int] = {}

    # -- watermark maintenance ----------------------------------------------

    def track(self, view: str, applied_lsn: int) -> None:
        """Record that ``view`` has absorbed every record up to the LSN."""
        with self._lock:
            self._applied[view] = applied_lsn

    def forget(self, view: str) -> None:
        """Drop a view's watermark (no-op when untracked)."""
        with self._lock:
            self._applied.pop(view, None)

    def applied_lsn(self, view: str) -> int | None:
        """The view's watermark, or ``None`` when untracked."""
        with self._lock:
            return self._applied.get(view)

    def tracked_views(self) -> tuple[str, ...]:
        """Names of every tracked view, sorted."""
        with self._lock:
            return tuple(sorted(self._applied))

    # -- freshness reads -----------------------------------------------------

    def freshness(self, view: str) -> ViewFreshness | None:
        """The view's current freshness, or ``None`` when untracked."""
        with self._lock:
            applied = self._applied.get(view)
        if applied is None:
            return None
        return self._freshness_of(view, applied, self._log.head_lsn)

    def all_freshness(self) -> tuple[ViewFreshness, ...]:
        """Freshness of every tracked view, sorted by name."""
        with self._lock:
            applied = dict(self._applied)
        head = self._log.head_lsn
        return tuple(
            self._freshness_of(view, lsn, head)
            for view, lsn in sorted(applied.items())
        )

    def _freshness_of(
        self, view: str, applied: int, head: int
    ) -> ViewFreshness:
        lag_seconds = 0.0
        if applied < head:
            first = self._log.first_after(applied)
            if first is not None:
                lag_seconds = max(self._clock() - first.timestamp, 0.0)
        return ViewFreshness(
            view=view,
            applied_lsn=applied,
            head_lsn=head,
            lag_seconds=lag_seconds,
        )

    # -- staleness policy ----------------------------------------------------

    def bound(self, max_seconds: float) -> StalenessBound:
        """Freeze the staleness verdicts for one ``max_staleness`` request.

        ``max_seconds=0`` demands perfect freshness: any view whose
        watermark trails the log head is excluded. A positive bound
        excludes a view only when its first unabsorbed record is older
        than the bound -- stale-but-recent views stay eligible, which is
        the whole point of bounded-staleness serving.
        """
        head = self._log.head_lsn
        stale: dict[str, str] = {}
        for freshness in self.all_freshness():
            lag = freshness.lag_records
            if lag == 0:
                continue
            if max_seconds <= 0:
                stale[freshness.view] = (
                    f"applied lsn {freshness.applied_lsn} trails head "
                    f"{head} by {lag} record(s); max_staleness=0 requires "
                    "a fully applied view"
                )
            elif freshness.lag_seconds > max_seconds:
                stale[freshness.view] = (
                    f"lag {freshness.lag_seconds:.3f}s exceeds "
                    f"max_staleness {max_seconds:g}s (applied lsn "
                    f"{freshness.applied_lsn}, head {head})"
                )
        return StalenessBound(max_seconds, head, stale)


__all__ = ["FreshnessTracker", "StalenessBound", "ViewFreshness"]
