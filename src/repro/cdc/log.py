"""The ordered change log: monotone LSNs over base-table deltas.

The log is the durability point of the transactional-outbox pattern: a
writer appends the concrete rows of each base-table insert or delete in
the same critical section that mutates the live table, and every record
gets the next log sequence number (LSN). Consumers -- the deferred
applier in :mod:`repro.cdc.applier` -- read strictly in LSN order, which
is what makes deferred view maintenance equivalent to the synchronous
:class:`~repro.maintenance.ViewMaintainer` path: replaying the records
in order reconstructs exactly the sequence of states the writer went
through.

Durability is optional: pass ``journal_path`` and every append is also
written as one JSON line (fsync-free append, in the spirit of an outbox
table); :meth:`ChangeLog.replay` rebuilds a log from such a journal.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class ChangeRecord:
    """One logged base-table change.

    ``lsn`` is the record's log sequence number (monotonically increasing,
    starting at 1); ``kind`` is ``"insert"`` or ``"delete"``; ``rows``
    holds the concrete changed rows -- predicate deletes are resolved to
    their victim rows *before* logging, so the log is always replayable
    without re-evaluating predicates against lost states. ``timestamp``
    is the wall-clock append time, which is what freshness lag estimates
    are measured against.
    """

    lsn: int
    kind: str
    table: str
    rows: tuple[tuple[object, ...], ...]
    timestamp: float


class ChangeLog:
    """An append-only, thread-safe change log with monotone LSNs.

    Appends and reads serialize on one internal lock; records themselves
    are immutable, so consumers may hold returned tuples across later
    appends. :meth:`truncate_through` discards absorbed prefixes without
    disturbing LSN assignment (LSNs never restart).
    """

    def __init__(
        self,
        journal_path: str | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self._lock = threading.Lock()
        self._records: list[ChangeRecord] = []
        # LSN of the last record *before* the retained window; the next
        # appended record gets ``_head_lsn + 1``.
        self._base_lsn = 0
        self._head_lsn = 0
        self._clock = clock
        self._journal = open(journal_path, "a") if journal_path else None

    # -- writer side ---------------------------------------------------------

    def append(
        self, kind: str, table: str, rows: Sequence[Sequence[object]]
    ) -> ChangeRecord:
        """Append one change record; returns it with its assigned LSN."""
        if kind not in ("insert", "delete"):
            raise ValueError(f"unknown change kind {kind!r}")
        frozen = tuple(tuple(row) for row in rows)
        with self._lock:
            record = ChangeRecord(
                lsn=self._head_lsn + 1,
                kind=kind,
                table=table,
                rows=frozen,
                timestamp=self._clock(),
            )
            self._records.append(record)
            self._head_lsn = record.lsn
            if self._journal is not None:
                self._journal.write(
                    json.dumps(
                        {
                            "lsn": record.lsn,
                            "kind": record.kind,
                            "table": record.table,
                            "rows": [list(row) for row in record.rows],
                            "ts": record.timestamp,
                        }
                    )
                    + "\n"
                )
                self._journal.flush()
            return record

    def truncate_through(self, lsn: int) -> int:
        """Discard retained records with LSN <= ``lsn``; returns the count.

        Only affects retention -- the head LSN and future assignments are
        unchanged, and the journal (if any) is not rewritten.
        """
        with self._lock:
            keep_from = min(max(lsn, self._base_lsn), self._head_lsn)
            dropped = keep_from - self._base_lsn
            if dropped > 0:
                del self._records[:dropped]
                self._base_lsn = keep_from
            return dropped

    def close(self) -> None:
        """Close the journal file, if one is attached."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- reader side ---------------------------------------------------------

    @property
    def head_lsn(self) -> int:
        """LSN of the most recently appended record (0 when none yet)."""
        return self._head_lsn

    @property
    def base_lsn(self) -> int:
        """LSN of the last *discarded* record (0 when nothing truncated)."""
        return self._base_lsn

    def records_after(
        self, lsn: int, limit: int | None = None
    ) -> tuple[ChangeRecord, ...]:
        """Retained records with LSN > ``lsn``, in order, up to ``limit``.

        Raises :class:`ValueError` when ``lsn`` precedes the retained
        window -- the caller asked for records already truncated away.
        """
        with self._lock:
            if lsn < self._base_lsn:
                raise ValueError(
                    f"records after lsn {lsn} already truncated "
                    f"(retained window starts after {self._base_lsn})"
                )
            start = lsn - self._base_lsn
            if limit is None:
                return tuple(self._records[start:])
            return tuple(self._records[start : start + limit])

    def first_after(self, lsn: int) -> ChangeRecord | None:
        """The first retained record with LSN > ``lsn``, or ``None``."""
        records = self.records_after(lsn, limit=1)
        return records[0] if records else None

    def __len__(self) -> int:
        return len(self._records)

    # -- durability ----------------------------------------------------------

    @classmethod
    def replay(
        cls,
        path: str,
        journal_path: str | None = None,
        clock: Callable[[], float] = time.time,
    ) -> "ChangeLog":
        """Rebuild a log from a journal written by a previous instance.

        Records are restored with their original LSNs and timestamps; the
        next append continues the sequence. Raises :class:`ValueError` on
        a gap or regression in the journaled LSNs.
        """
        log = cls(journal_path=journal_path, clock=clock)
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                lsn = entry["lsn"]
                if lsn != log._head_lsn + 1:
                    raise ValueError(
                        f"journal corrupt: lsn {lsn} follows {log._head_lsn}"
                    )
                log._records.append(
                    ChangeRecord(
                        lsn=lsn,
                        kind=entry["kind"],
                        table=entry["table"],
                        rows=tuple(
                            tuple(row) for row in entry["rows"]
                        ),
                        timestamp=entry["ts"],
                    )
                )
                log._head_lsn = lsn
        return log


__all__ = ["ChangeLog", "ChangeRecord"]
