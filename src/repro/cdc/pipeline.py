"""The CDC pipeline: transactional-outbox writers over the change log.

One object wires the whole subsystem together: writers mutate the live
base tables and append to the :class:`~repro.cdc.log.ChangeLog` in a
single critical section (the in-process equivalent of the
transactional-outbox pattern -- the table change and its log record
commit or fail together), while the :class:`~repro.cdc.applier.ChangeApplier`
drains the log into stored views on whatever cadence the caller picks.
Reads of base tables are always fresh; reads of stored views lag by
however far the applier is behind, which the bundled
:class:`~repro.cdc.freshness.FreshnessTracker` quantifies.

The pipeline's lock is shared with the applier, so a writer never
interleaves with a half-finished scan and the applier never observes a
table mutation without its log record.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Callable, Iterable, Sequence

from ..catalog.catalog import Catalog
from ..engine.database import Database
from ..errors import ExecutionError
from ..maintenance.maintainer import MaintainedView, ViewChangeEvent
from ..sql.statements import SelectStatement
from .applier import ApplierStats, ChangeApplier
from .freshness import FreshnessTracker, StalenessBound, ViewFreshness
from .log import ChangeLog, ChangeRecord


class CdcPipeline:
    """Change log + applier + freshness tracker over one live database."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        batch_size: int = 256,
        journal_path: str | None = None,
        clock: Callable[[], float] = time.time,
        telemetry=None,
    ):
        self.catalog = catalog
        self.database = database
        self._lock = threading.RLock()
        self.log = ChangeLog(journal_path=journal_path, clock=clock)
        self.freshness = FreshnessTracker(self.log, clock=clock)
        self.applier = ChangeApplier(
            catalog,
            database,
            self.log,
            freshness=self.freshness,
            batch_size=batch_size,
            lock=self._lock,
            telemetry=telemetry,
        )

    # -- writer side (the outbox) --------------------------------------------

    def insert(
        self, table: str, rows: Iterable[Sequence[object]]
    ) -> ChangeRecord | None:
        """Insert rows into the live table and log the change atomically.

        Returns the appended :class:`ChangeRecord`, or ``None`` for an
        empty batch. Stored views are *not* updated here -- that is the
        applier's job.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return None
        with self._lock:
            relation = self.database.relation(table)
            relation.rows.extend(rows)
            relation.bump_version()
            return self.log.append("insert", table, rows)

    def delete(
        self, table: str, rows: Iterable[Sequence[object]]
    ) -> ChangeRecord | None:
        """Delete specific rows from the live table and log the change.

        Bag semantics: each given row removes one occurrence. The whole
        batch is validated before anything is removed, so a missing row
        raises :class:`ExecutionError` without mutating the table or the
        log -- the outbox invariant (table change and log record are one
        transaction) survives the error path.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return None
        with self._lock:
            relation = self.database.relation(table)
            available = Counter(relation.rows)
            needed = Counter(rows)
            for row, count in needed.items():
                if available[row] < count:
                    raise ExecutionError(
                        f"cannot delete from {table}: row {row} not present"
                        f" (or fewer than {count} occurrences)"
                    )
            for row in rows:
                relation.rows.remove(row)
            relation.bump_version()
            return self.log.append("delete", table, rows)

    def delete_where(self, table: str, predicate) -> int:
        """Delete every row satisfying a row-tuple predicate; returns count.

        The predicate is resolved to concrete victim rows at write time,
        inside the critical section, so the log records the actual rows
        removed -- replaying the log never re-evaluates the predicate
        against a different state.
        """
        with self._lock:
            relation = self.database.relation(table)
            victims = [row for row in relation.rows if predicate(row)]
            self.delete(table, victims)
            return len(victims)

    # -- view management ------------------------------------------------------

    def register_view(
        self, name: str, statement: SelectStatement
    ) -> MaintainedView:
        """Register a view for deferred maintenance (see the applier)."""
        return self.applier.register(name, statement)

    def unregister_view(self, name: str) -> None:
        """Drop a view from deferred maintenance."""
        self.applier.unregister(name)

    # -- applier passthroughs -------------------------------------------------

    def scan(self, limit: int | None = None) -> int:
        """Advance the applier's shadow by up to ``limit`` records."""
        return self.applier.scan(limit)

    def merge(
        self, view: str | None = None, max_deltas: int | None = None
    ) -> int:
        """Fold queued deltas into stored views."""
        return self.applier.merge(view, max_deltas)

    def apply(self, max_records: int | None = None) -> int:
        """One scan-then-merge batch."""
        return self.applier.apply(max_records)

    def drain(self) -> int:
        """Absorb the whole log; afterwards every view is fresh."""
        return self.applier.drain()

    def add_listener(
        self, listener: Callable[[ViewChangeEvent], None]
    ) -> None:
        """Subscribe to ``cdc-apply`` events from the applier."""
        self.applier.add_listener(listener)

    # -- freshness reads ------------------------------------------------------

    @property
    def head_lsn(self) -> int:
        """The change log's head LSN."""
        return self.log.head_lsn

    @property
    def stats(self) -> ApplierStats:
        """The applier's cumulative counters."""
        return self.applier.stats

    def view_freshness(self, name: str) -> ViewFreshness | None:
        """Freshness of one view (``None`` when not registered)."""
        return self.freshness.freshness(name)

    def staleness_bound(self, max_seconds: float) -> StalenessBound:
        """Freeze a staleness policy for one request."""
        return self.freshness.bound(max_seconds)

    def report(self) -> str:
        """Human-readable one-line-per-view freshness summary."""
        lines = [
            f"change log: head lsn {self.log.head_lsn}, "
            f"{len(self.log)} record(s) retained, applier scanned through "
            f"{self.applier.scanned_lsn}"
        ]
        for freshness in self.freshness.all_freshness():
            state = (
                "fresh"
                if freshness.is_fresh
                else (
                    f"lagging {freshness.lag_records} record(s), "
                    f"{freshness.lag_seconds:.3f}s"
                )
            )
            lines.append(
                f"  {freshness.view}: applied lsn "
                f"{freshness.applied_lsn} ({state})"
            )
        stats = self.stats
        lines.append(
            f"applier: {stats.records_scanned} record(s) scanned, "
            f"{stats.delta_rows_merged} delta row(s) merged, "
            f"{stats.rows_per_second:.0f} rows/s"
        )
        return "\n".join(lines)


__all__ = ["CdcPipeline"]
