"""Implementations behind ``python -m repro``."""

from __future__ import annotations


def run_demo() -> int:
    """Register a view, match a query against it, execute and verify."""
    from . import (
        ViewMatcher,
        execute,
        generate_tpch,
        materialize_view,
        statement_to_sql,
        tpch_catalog,
    )

    catalog = tpch_catalog()
    database = generate_tpch(scale=0.001, seed=1)
    matcher = ViewMatcher(catalog)
    view = catalog.bind_sql(
        """
        select l_partkey, sum(l_extendedprice * l_quantity) as revenue,
               count_big(*) as cnt
        from lineitem, part
        where l_partkey = p_partkey and p_partkey <= 150
        group by l_partkey
        """
    )
    matcher.register_view("part_revenue", view)
    materialize_view("part_revenue", view, database)
    query = catalog.bind_sql(
        """
        select l_partkey, sum(l_extendedprice * l_quantity)
        from lineitem, part
        where l_partkey = p_partkey and p_partkey >= 50 and p_partkey <= 100
        group by l_partkey
        """
    )
    print("query:      ", statement_to_sql(query))
    matches = matcher.substitutes(query)
    if not matches:
        print("no substitute found")
        return 1
    substitute = matches[0].substitute
    print("substitute: ", statement_to_sql(substitute))
    original = execute(query, database)
    rewritten = execute(substitute, database)
    equal = original.bag_equals(rewritten, float_digits=9)
    print(
        f"rows: {original.row_count} (original) vs {rewritten.row_count} "
        f"(rewrite); bag-equal: {equal}"
    )
    return 0 if equal else 1


_DEMO_VIEWS: tuple[tuple[str, str], ...] = (
    (
        "part_revenue",
        """
        select l_partkey, sum(l_extendedprice * l_quantity) as revenue,
               count_big(*) as cnt
        from lineitem, part
        where l_partkey = p_partkey and p_partkey <= 150
        group by l_partkey
        """,
    ),
    (
        "cheap_lineitems",
        """
        select l_orderkey, l_partkey, l_extendedprice
        from lineitem
        where l_extendedprice <= 1000
        """,
    ),
    (
        "order_totals",
        """
        select o_custkey, sum(o_totalprice) as total, count_big(*) as cnt
        from orders
        group by o_custkey
        """,
    ),
)


def run_explain_rewrite(
    sql: str,
    views: tuple[str, ...] = (),
    json_output: bool = False,
    validate: bool = False,
) -> int:
    """Trace one query through the full rewrite path and explain it.

    Optimizes ``sql`` over the TPC-H catalog with a
    :class:`~repro.obs.RewriteTracer` installed, then prints the
    match-funnel report: per-level filter-tree narrowing, every
    candidate's fate (reject reason or compensation steps), and the
    final cost comparison. ``views`` is a list of ``name=SQL``
    registrations; without it a small demo pool is used. ``--json``
    emits the machine-readable trace instead; ``--validate``
    additionally checks it against the frozen export schema (non-zero
    exit on mismatch).
    """
    import json

    from .catalog import tpch_catalog
    from .core.matcher import ViewMatcher
    from .errors import ReproError
    from .obs import (
        RewriteTracer,
        render_trace,
        tracing,
        validate_trace_dict,
    )
    from .optimizer import Optimizer
    from .stats import synthetic_tpch_stats

    catalog = tpch_catalog()
    matcher = ViewMatcher(catalog)
    definitions = list(_DEMO_VIEWS)
    if views:
        definitions = []
        for spec in views:
            name, separator, view_sql = spec.partition("=")
            if not separator or not name.strip():
                print(f"bad --view (expected NAME=SQL): {spec!r}")
                return 2
            definitions.append((name.strip(), view_sql))
    for name, view_sql in definitions:
        try:
            matcher.register_view(name, catalog.bind_sql(view_sql))
        except (ReproError, ValueError) as exc:
            print(f"cannot register view {name}: {exc}")
            return 2
    optimizer = Optimizer(catalog, synthetic_tpch_stats(scale=0.5), matcher)

    tracer = RewriteTracer(sql=sql)
    error: str | None = None
    with tracing(tracer):
        try:
            with tracer.span("parse"):
                statement = catalog.bind_sql(sql)
            optimizer.optimize(statement)
        except (ReproError, ValueError) as exc:
            error = str(exc)
    trace = tracer.finish(error=error)

    if json_output or validate:
        payload = trace.to_dict()
        if validate:
            problems = validate_trace_dict(
                json.loads(json.dumps(payload))
            )
            if problems:
                for problem in problems:
                    print(f"schema violation: {problem}")
                return 1
        if json_output:
            print(json.dumps(payload, indent=2))
        else:
            print("trace validates against the export schema")
    else:
        print(render_trace(trace))  # includes the error line, if any
    if error is not None:
        if json_output or validate:
            print(f"error: {error}")
        return 1
    return 0


def run_examples() -> int:
    """The paper's Examples 1-4 (delegates to the examples script)."""
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).resolve().parent.parent.parent
        / "examples"
        / "paper_walkthrough.py"
    )
    if not path.exists():
        print("examples/paper_walkthrough.py not found; run from a source checkout")
        return 1
    spec = importlib.util.spec_from_file_location("paper_walkthrough", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def run_serve_bench(
    smoke: bool = False,
    views: int | None = None,
    queries: int | None = None,
    repeat: int | None = None,
    workers: int | None = None,
    seed: int | None = None,
    journal: str | None = None,
) -> int:
    """Benchmark the rewrite-serving layer (cache on vs. off).

    Prints the cache hit rate and the median rewrite latency of both
    runs. Returns non-zero when the hit rate lands below 80 % -- a
    deterministic regression signal (the workload repeats every query
    ``repeat`` times, so the expected rate is ``(repeat-1)/repeat``);
    latency numbers are printed but not gated, since they depend on the
    host. ``journal`` additionally records every request of the cached
    run to a workload journal readable by ``repro workload-report`` and
    ``repro repro-top --journal``.
    """
    import dataclasses

    from .service import BenchConfig, run_service_benchmark

    config = BenchConfig.smoke() if smoke else BenchConfig()
    overrides = {
        name: value
        for name, value in (
            ("views", views),
            ("queries", queries),
            ("repeat", repeat),
            ("workers", workers),
            ("seed", seed),
            ("journal", journal),
        )
        if value is not None
    }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    report = run_service_benchmark(config)
    if journal:
        print(f"workload journal written to {journal}")
    if report.hit_rate < 0.8:
        print(f"FAIL: cache hit-rate {report.hit_rate:.1%} below 80%")
        return 1
    return 0


def run_workload_report(
    journal: str,
    json_output: bool = False,
    top: int = 10,
) -> int:
    """Aggregate a recorded workload journal into a report.

    Reads the JSONL journal (including rotated files) written by a
    :class:`~repro.obs.recorder.WorkloadRecorder` -- e.g. by
    ``serve-bench --journal`` -- and prints query-shape frequencies,
    the ranked reject-reason funnel, cache hit rate, and latency
    percentiles. ``--json`` emits the advisor-consumable aggregate
    instead. Exit 2 when the journal does not exist, 1 when it holds
    no readable events.
    """
    import json
    import os

    from .obs.recorder import load_journal

    if not os.path.exists(journal) and not os.path.exists(f"{journal}.1"):
        print(f"no journal at {journal}")
        return 2
    aggregate = load_journal(journal)
    if aggregate.events == 0:
        print(f"journal {journal} holds no readable events")
        return 1
    if json_output:
        print(json.dumps(aggregate.to_advisor_input(top=top), indent=2))
    else:
        print(aggregate.render(top=top))
    return 0


def run_repro_top(
    journal: str | None = None,
    demo: bool = False,
    interval: float = 1.0,
    iterations: int | None = None,
    once: bool = False,
) -> int:
    """The ``repro-top`` live dashboard.

    ``--journal PATH`` replays a recorded workload journal (re-read
    every tick, so it may still be written to); ``--demo`` spins up a
    small in-process server with a background load thread and renders
    its live RED metrics, reject funnel, merged telemetry sketches,
    and SLO burn. ``--once`` renders a single frame without clearing
    the screen -- the scriptable/CI form.
    """
    from .obs.dashboard import DashboardLoop, journal_frame, server_frame

    if once:
        iterations = 1
    clear = not once and iterations is None
    if journal is not None:
        import os

        from .obs.recorder import load_journal

        if not os.path.exists(journal) and not os.path.exists(f"{journal}.1"):
            print(f"no journal at {journal}")
            return 2
        loop = DashboardLoop(
            lambda: journal_frame(load_journal(journal)),
            interval=interval,
            iterations=iterations,
            clear=clear,
        )
        return loop.run()
    if not demo:
        print("repro-top needs --journal PATH or --demo")
        return 2

    import threading

    from .catalog import tpch_catalog
    from .obs.slo import SloObjectives
    from .service import ViewServer
    from .service.loadgen import BenchConfig, build_workload
    from .stats import synthetic_tpch_stats

    config = BenchConfig.smoke()
    views, queries = build_workload(config)
    server = ViewServer(
        tpch_catalog(),
        synthetic_tpch_stats(scale=config.scale),
        workers=config.workers,
        slo=SloObjectives(),
        trace_sample_rate=0.1,
    )
    stop = threading.Event()

    def drive() -> None:
        while not stop.is_set():
            for sql in queries:
                if stop.is_set():
                    return
                server.serve(sql)

    try:
        for name, sql in views:
            server.register_view(name, sql)
        for sql in queries:  # one synchronous pass so frame 1 has data
            server.serve(sql)
        load = threading.Thread(target=drive, daemon=True, name="repro-top")
        load.start()
        loop = DashboardLoop(
            lambda: server_frame(server),
            interval=interval,
            iterations=iterations,
            clear=clear,
        )
        code = loop.run()
        stop.set()
        load.join(timeout=2.0)
        return code
    finally:
        stop.set()
        server.close()


def run_bench_hotpath(
    smoke: bool = False,
    views: tuple[int, ...] | None = None,
    queries: int | None = None,
    seed: int | None = None,
    catalog_scale: int | None = None,
    pool_views: int | None = None,
    match_only: bool = False,
    output: str | None = None,
    check_baseline: str | None = None,
    check_overhead: str | None = None,
    overhead_tolerance: float | None = None,
    check_speedups: bool = False,
    profile: int | None = None,
) -> int:
    """Benchmark the matching hot path (bitset interning, match contexts).

    Times candidate filtering and full matching in the interned and
    reference configurations, verifying both return identical results,
    plus probe compilation (single-pass vs reference pipeline) and the
    batched end-to-end serving path against the legacy sequential loop.
    ``output`` writes the machine-readable report; ``check_baseline``
    gates against a committed ``BENCH_matching.json`` and returns
    non-zero on a >2x candidate-filter regression or a >25 % probe-build
    regression at the largest shared view count. ``check_overhead``
    applies the much tighter disabled-tracing guard (default 5 %)
    against the same baseline: the whole run executes with the null
    tracer installed, so any regression it reports is overhead the
    tracing instrumentation added to the disabled path.
    ``check_speedups`` enforces the absolute floors: probe compilation
    >=2x over the reference pipeline, batched end-to-end rewriting
    >=2x over the sequential loop on multi-core hosts, and -- when the
    report carries a memory section -- the bytes-per-registered-view
    budget. ``catalog_scale`` overrides the 100k-view packed-path
    point's view count (0 disables it). ``match_only`` restricts the run
    to the matching sweep (probe / filter / match / verification
    timings), disabling the end-to-end, maintenance, catalog-scale,
    pool, telemetry, and memory sections -- the quick loop for iterating
    on matcher code, and what the no-numpy CI leg runs. ``profile``
    skips the benchmark entirely and prints cProfile top-N tables for
    the probe-build and full-match phases instead.
    """
    import dataclasses
    import json

    from .experiments import (
        HotpathConfig,
        check_against_baseline,
        check_pool_slo,
        check_speedup_gates,
        check_tracing_overhead,
        profile_hotpath,
        run_hotpath_benchmark,
    )
    from .experiments.hotpath import write_report

    config = HotpathConfig.smoke() if smoke else HotpathConfig()
    overrides = {}
    if views is not None:
        overrides["view_counts"] = tuple(views)
    if queries is not None:
        overrides["query_count"] = queries
    if seed is not None:
        overrides["seed"] = seed
    if catalog_scale is not None:
        overrides["catalog_scale_views"] = catalog_scale
    if pool_views is not None:
        overrides["pool_views"] = pool_views
    if match_only:
        overrides.update(
            end_to_end_view_counts=(),
            maintenance_view_count=0,
            catalog_scale_views=0,
            pool_views=0,
            telemetry_overhead_views=0,
            measure_memory=False,
        )
    if overrides:
        config = dataclasses.replace(config, **overrides)
    if profile is not None:
        profile_hotpath(config, top=profile)
        return 0
    report = run_hotpath_benchmark(config)
    if output:
        write_report(report, output)
        print(f"report written to {output}")
    failures = []
    if check_baseline:
        with open(check_baseline) as handle:
            baseline = json.load(handle)
        failures += check_against_baseline(report, baseline)
    if check_overhead:
        with open(check_overhead) as handle:
            baseline = json.load(handle)
        overhead_kwargs = (
            {} if overhead_tolerance is None
            else {"tolerance": overhead_tolerance}
        )
        failures += check_tracing_overhead(report, baseline, **overhead_kwargs)
    if check_speedups:
        failures += check_speedup_gates(report)
        failures += check_pool_slo(report)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def run_pool_bench(
    smoke: bool = False,
    views: int | None = None,
    queries: int | None = None,
    passes: int | None = None,
    workers: int | None = None,
    seed: int | None = None,
    output: str | None = None,
    check: bool = False,
    check_baseline: str | None = None,
) -> int:
    """Sustained-load benchmark of the persistent serving pool.

    Replays the same distinct-query schedule through fork-per-batch
    ``rewrite_many`` and through the persistent worker pool (with live
    epoch swaps injected mid-load), then prints throughput and latency
    percentiles side by side. ``check`` applies the in-run SLO gate
    (pool must beat fork-per-batch on throughput and p99, zero failed
    requests); ``check_baseline`` additionally applies the
    calibration-normalized regression gates against a committed
    ``BENCH_matching.json``. ``output`` writes the JSON report.
    """
    import dataclasses
    import json
    import os

    from .experiments.hotpath import _calibrate, check_pool_slo
    from .service.loadgen import PoolBenchConfig, run_pool_benchmark

    config = PoolBenchConfig.smoke() if smoke else PoolBenchConfig()
    overrides = {}
    if views is not None:
        overrides["views"] = views
    if queries is not None:
        overrides["queries"] = queries
    if passes is not None:
        overrides["passes"] = passes
    if workers is not None:
        overrides["workers"] = workers
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = dataclasses.replace(config, **overrides)
    calibrations = [_calibrate()]
    bench = run_pool_benchmark(config)
    calibrations.append(_calibrate())
    report = {
        "benchmark": "serving-pool",
        "cpu_count": os.cpu_count(),
        "calibration_us": round(min(calibrations), 2),
        "serving_pool": bench.to_dict(),
    }
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"report written to {output}")
    failures = []
    baseline = None
    if check_baseline:
        with open(check_baseline) as handle:
            baseline = json.load(handle)
    if check or baseline is not None:
        failures = check_pool_slo(report, baseline)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def run_difftest(
    seed: int = 0,
    cases: int = 200,
    views_per_case: int = 3,
    scale: float = 0.0005,
    data_seed: int = 11,
    shrink_budget: int = 400,
    max_divergences: int = 5,
    emit: str | None = None,
    corpus: str | None = None,
    parallel: int = 1,
    cdc: bool = False,
    cdc_steps: int = 200,
) -> int:
    """Differential correctness: execute every rewrite, compare rows.

    Runs the randomized harness (``cases`` seeded random queries with
    correlated covering views over small generated TPC-H data), executes
    the original and every substitute plan, and bag-compares the
    results. Each divergence is shrunk to a minimal (query, view, data)
    triple within ``shrink_budget`` oracle calls; with ``--emit DIR``
    the shrunk repro script, the obs trace of the bad rewrite, and a
    corpus-format case are written there. ``--corpus DIR`` additionally
    re-runs every committed regression case. ``--parallel N`` matches
    every case through a sharded tree fanned across ``N`` forked
    workers, so the substitutes being executed are exactly the parallel
    path's output. ``--cdc`` appends the CDC interleaving harness
    (``cdc_steps`` randomized insert / delete / delete_where / partial
    scan / partial merge / register churn steps with recompute and
    rewrite checks at every checkpoint) to the same run. Non-zero exit
    on any divergence or corpus failure.
    """
    from .catalog import tpch_catalog
    from .difftest import (
        DifftestConfig,
        load_corpus,
        run_corpus_case,
        run_difftest as run_harness,
        write_divergence_artifacts,
    )

    catalog = tpch_catalog()
    failures = 0
    if corpus is not None:
        corpus_cases = load_corpus(corpus)
        print(f"corpus: {len(corpus_cases)} committed cases from {corpus}")
        for case in corpus_cases:
            outcome = run_corpus_case(case, catalog)
            print(f"  {outcome.describe()}")
            if not outcome.ok:
                failures += 1
    config = DifftestConfig(
        seed=seed,
        cases=cases,
        views_per_case=views_per_case,
        scale=scale,
        data_seed=data_seed,
        shrink_budget=shrink_budget,
        max_divergences=max_divergences,
        parallel_workers=parallel,
    )
    report = run_harness(config, catalog=catalog)
    print(report.summary())
    if emit is not None:
        for divergence in report.divergences:
            paths = write_divergence_artifacts(
                divergence, emit, catalog, float_digits=config.float_digits
            )
            for path in paths:
                print(f"  wrote {path}")
    failures += len(report.divergences) + report.match_errors
    if cdc:
        from .difftest import CdcDifftestConfig, run_cdc_difftest

        cdc_config = CdcDifftestConfig(
            seed=seed, steps=cdc_steps, scale=scale, data_seed=data_seed
        )
        cdc_report = run_cdc_difftest(cdc_config, catalog=catalog)
        print(cdc_report.summary())
        failures += len(cdc_report.divergences)
    return 1 if failures else 0


def run_cdc_soak(
    seed: int = 0,
    steps: int = 400,
    scale: float = 0.002,
    data_seed: int = 11,
    checkpoint_every: int = 25,
    lag_bound: int | None = None,
) -> int:
    """Soak the CDC pipeline: torn reads, LSN order, bounded applier lag.

    Runs the fixed-seed CDC interleaving harness with a hard lag gate:
    besides the per-checkpoint recompute and rewrite checks (a stale
    view must serve exactly the rows its applied LSN implies -- no torn
    reads), the run fails if LSNs ever go non-monotone or if the
    applier's lag exceeds ``lag_bound`` records at any checkpoint
    (default: two checkpoint intervals' worth of log records). Non-zero
    exit on any divergence; this is the CI gate for the CDC subsystem.
    """
    from .difftest import CdcDifftestConfig, run_cdc_difftest

    if lag_bound is None:
        lag_bound = 2 * checkpoint_every * 3  # <= 3 rows per step
    config = CdcDifftestConfig(
        seed=seed,
        steps=steps,
        scale=scale,
        data_seed=data_seed,
        checkpoint_every=checkpoint_every,
        lag_bound_records=lag_bound,
    )
    report = run_cdc_difftest(config)
    print(report.summary())
    for divergence in report.divergences:
        print(f"FAIL: {divergence.summary()}")
    return 1 if not report.ok else 0


def run_figures(
    quick: bool = False,
    views: int | None = None,
    queries: int | None = None,
    seed: int = 42,
) -> int:
    """Rerun the Section 5 sweep and print all figure tables."""
    from .experiments import ExperimentConfig, ExperimentHarness, render_all

    if quick:
        view_counts: tuple[int, ...] = (0, 50, 100, 200)
        query_count = 30
    else:
        view_counts = (0, 100, 200, 400, 600, 800, 1000)
        query_count = 100
    if views is not None:
        step = max(views // 5, 1)
        view_counts = (0,) + tuple(range(step, views + 1, step))
    if queries is not None:
        query_count = queries
    config = ExperimentConfig(
        view_counts=view_counts, query_count=query_count, seed=seed
    )
    print(
        f"sweep: views {list(config.view_counts)}, "
        f"{config.query_count} queries, seed {config.seed}"
    )
    result = ExperimentHarness(config).run()
    print()
    print(render_all(result))
    return 0
