"""The paper's core contribution: view matching and the filter tree."""

from .describe import SpjgDescription, describe, validate_view_description
from .equivalence import ColumnKey, EquivalenceClasses
from .filtertree import FilterTree, QueryProbe, RegisteredView
from .fkgraph import FkEdge, build_fk_join_graph, compute_hub, eliminate_tables
from .interning import KeyInterner
from .intervalsets import IntervalSet, OrRangePredicate, as_or_range
from .lattice import LatticeIndex, LatticeNode
from .matcher import MatcherStatistics, ViewMatcher, matcher_for_catalog
from .matching import MatchResult, RejectReason, ViewMatchContext, match_view
from .normalize import ClassifiedPredicate, classify_predicate, to_cnf
from .options import DEFAULT_OPTIONS, MatchOptions
from .ranges import Bound, Interval, RangePredicate, as_range_predicate, derive_ranges
from .residual import ShallowForm, match_residuals
from .unions import UnionSubstitute, find_union_substitutes

__all__ = [
    "Bound",
    "ClassifiedPredicate",
    "ColumnKey",
    "DEFAULT_OPTIONS",
    "EquivalenceClasses",
    "FilterTree",
    "FkEdge",
    "Interval",
    "IntervalSet",
    "KeyInterner",
    "OrRangePredicate",
    "as_or_range",
    "LatticeIndex",
    "LatticeNode",
    "MatchOptions",
    "MatchResult",
    "MatcherStatistics",
    "QueryProbe",
    "RangePredicate",
    "RegisteredView",
    "RejectReason",
    "ShallowForm",
    "SpjgDescription",
    "UnionSubstitute",
    "ViewMatchContext",
    "ViewMatcher",
    "as_range_predicate",
    "build_fk_join_graph",
    "classify_predicate",
    "compute_hub",
    "derive_ranges",
    "describe",
    "eliminate_tables",
    "find_union_substitutes",
    "match_residuals",
    "match_view",
    "matcher_for_catalog",
    "to_cnf",
    "validate_view_description",
]
