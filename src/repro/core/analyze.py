"""Single-pass predicate analysis: the probe-compilation fast path.

Describing a statement used to take several passes over the WHERE clause:
:func:`~repro.core.normalize.classify_predicate` walked the CNF conjuncts
once to split them into PE/PR/PU, then ``SpjgDescription`` re-walked the
classified lists to build equivalence classes, derive per-class range
intervals, recognise OR-range residuals, and compute residual shallow
forms -- recomputing :meth:`ShallowForm.of` along the way. At serving
rates the analysis cost dominates every uncached rewrite (the committed
``BENCH_matching.json`` put query-side analysis at >20x the candidate
filter), so this module fuses the whole derivation into **one sweep over
the CNF conjuncts**:

* equality conjuncts merge equivalence classes immediately,
* range conjuncts are collected for per-class interval intersection,
* residual conjuncts are canonicalized, tested for the OR-range
  extension, and shallow-formed exactly once.

Equivalence classes start from a per-``(catalog, tables)`` seed that is
built once and copied, instead of re-registering every column of every
referenced table on each description.

The result feeds :class:`~repro.core.describe.SpjgDescription` and, via
the description, the fast :meth:`QueryProbe.of` path; the pre-fusion
implementation survives as ``QueryProbe.of_reference`` so the hot-path
benchmark can keep measuring the speedup against it from identical
inputs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import MatchError
from ..sql.statements import SelectStatement
from .equivalence import EquivalenceClasses
from .intervalsets import OrRangePredicate, as_or_range
from .normalize import (
    ClassifiedPredicate,
    _canonicalize_residual,
    as_column_equality,
    to_cnf,
)
from .options import MatchOptions
from .ranges import as_range_predicate, derive_ranges
from .residual import ShallowForm

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog

__all__ = ["PredicateAnalysis", "analyze_statement"]


class PredicateAnalysis:
    """Everything one sweep over the CNF conjuncts derives."""

    __slots__ = ("classified", "eqclasses", "ranges", "or_ranges", "residual_forms")

    def __init__(self, classified, eqclasses, ranges, or_ranges, residual_forms):
        self.classified: ClassifiedPredicate = classified
        self.eqclasses: EquivalenceClasses = eqclasses
        self.ranges = ranges
        self.or_ranges: tuple[OrRangePredicate, ...] = or_ranges
        self.residual_forms: tuple[ShallowForm, ...] = residual_forms


def _seed_classes(
    catalog: "Catalog", tables: frozenset[str]
) -> EquivalenceClasses:
    """Fresh equivalence classes with every referenced column registered.

    The trivial-classes starting point depends only on the catalog and the
    referenced table set, so it is built once per distinct table set and
    copied -- one dict copy instead of ~60 ``add_column`` calls per
    description on the TPC-H schema.
    """
    seeds = getattr(catalog, "_eqclass_seeds", None)
    if seeds is None:
        seeds = {}
        catalog._eqclass_seeds = seeds
    seed = seeds.get(tables)
    if seed is None:
        seed = EquivalenceClasses()
        for table in tables:
            for column in catalog.table(table).column_names:
                seed.add_column((table, column))
        seeds[tables] = seed
    return seed.copy()


def analyze_statement(
    statement: SelectStatement,
    tables: frozenset[str],
    catalog: "Catalog",
    options: MatchOptions,
) -> PredicateAnalysis:
    """Analyze a statement's WHERE clause in a single conjunct sweep."""
    eqclasses = _seed_classes(catalog, tables)
    equalities = []
    range_predicates = []
    residuals = []          # all canonicalized PU conjuncts (classification)
    or_ranges = []
    residual_forms = []
    support_or_ranges = options.support_or_ranges
    for conjunct in to_cnf(statement.where):
        equality = as_column_equality(conjunct)
        if equality is not None:
            a, b = equality
            if a not in eqclasses or b not in eqclasses:
                raise MatchError(f"equality on unbound column: {a} = {b}")
            eqclasses.add_equality(a, b)
            equalities.append(equality)
            continue
        range_predicate = as_range_predicate(conjunct)
        if range_predicate is not None:
            range_predicates.append(range_predicate)
            continue
        residual = _canonicalize_residual(conjunct)
        residuals.append(residual)
        if support_or_ranges:
            recognised = as_or_range(residual)
            if recognised is not None:
                if not recognised.interval_set.is_unbounded:
                    or_ranges.append(recognised)
                continue  # tautologies drop from both derived lists
        residual_forms.append(ShallowForm.of(residual))
    classified = ClassifiedPredicate(
        equalities=tuple(equalities),
        range_predicates=tuple(range_predicates),
        residuals=tuple(residuals),
    )
    return PredicateAnalysis(
        classified=classified,
        eqclasses=eqclasses,
        ranges=derive_ranges(classified.range_predicates, eqclasses),
        or_ranges=tuple(or_ranges),
        residual_forms=tuple(residual_forms),
    )
