"""SPJG descriptions: the precomputed normal form of queries and views.

The paper keeps "in memory a description of every materialized view
[containing] all information needed to apply the tests" (Section 4). This
module builds that description for views at registration time and for query
expressions at match time: the PE/PR/PU predicate classification, column
equivalence classes, per-class range intervals, residual-predicate shallow
forms, output/grouping metadata, and the derived key sets the filter tree
indexes on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

from ..errors import MatchError, UnsupportedSqlError
from ..sql.expressions import (
    ColumnRef,
    Expression,
    FuncCall,
    Literal,
)
from ..sql.statements import SelectItem, SelectStatement
from .analyze import analyze_statement
from .equivalence import ColumnKey
from .intervalsets import OrRangePredicate
from .normalize import ClassifiedPredicate
from .options import DEFAULT_OPTIONS, MatchOptions
from .ranges import Interval
from .residual import ShallowForm

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog


@dataclass(frozen=True)
class OutputInfo:
    """One select-list item with its precomputed matching metadata."""

    item: SelectItem
    position: int
    form: ShallowForm

    @property
    def expression(self) -> Expression:
        return self.item.expression

    @property
    def name(self) -> str | None:
        return self.item.name

    @property
    def is_simple_column(self) -> bool:
        return isinstance(self.item.expression, ColumnRef)

    @property
    def is_constant(self) -> bool:
        return isinstance(self.item.expression, Literal)

    @property
    def contains_aggregate(self) -> bool:
        return self.item.expression.contains_aggregate()


def normalized_aggregate_template(
    call: FuncCall, form: ShallowForm | None = None
) -> tuple[str, ...]:
    """Canonical template strings an aggregate call requires of a view.

    COUNT and COUNT_BIG are interchangeable for matching, so both normalize
    to ``count_big``; AVG expands to the SUM and COUNT_BIG it is computed
    from. The returned tuple lists every view output template the call needs.
    ``form`` passes a precomputed shallow form of the argument so callers
    that already derived it avoid a second derivation.
    """
    if call.star:
        return ("count_big(*)",)
    argument_template = (form or ShallowForm.of(call.args[0])).template
    if call.name == "sum":
        return (f"sum({argument_template})",)
    if call.name in ("count", "count_big"):
        return (f"count_big({argument_template})",)
    if call.name == "avg":
        return (f"sum({argument_template})", "count_big(*)")
    raise MatchError(f"unsupported aggregate {call.name}")


class SpjgDescription:
    """Precomputed matching metadata for one SPJG statement.

    The same class describes queries and views; ``name`` is the view name
    for registered views and ``None`` for query expressions. All predicate
    metadata describes the *SPJ part* (the WHERE clause); grouping and
    output metadata describe the full statement.
    """

    def __init__(
        self,
        statement: SelectStatement,
        catalog: "Catalog",
        name: str | None = None,
        options: MatchOptions = DEFAULT_OPTIONS,
    ) -> None:
        self.statement = statement
        self.catalog = catalog
        self.name = name
        self.options = options
        self.tables: frozenset[str] = frozenset(statement.table_names())
        if not self.tables:
            raise UnsupportedSqlError("statement references no tables")

        # One fused sweep over the CNF conjuncts (see repro.core.analyze)
        # replaces the former classify / build-classes / derive-ranges /
        # split-or-ranges / shallow-form pass sequence.
        analysis = analyze_statement(statement, self.tables, catalog, options)
        self.classified: ClassifiedPredicate = analysis.classified
        self.eqclasses = analysis.eqclasses
        self.ranges: dict[ColumnKey, Interval] = analysis.ranges
        self.or_ranges: tuple[OrRangePredicate, ...] = analysis.or_ranges
        self.residual_forms: tuple[ShallowForm, ...] = analysis.residual_forms
        self.outputs: tuple[OutputInfo, ...] = tuple(
            OutputInfo(item=item, position=i, form=ShallowForm.of(item.expression))
            for i, item in enumerate(statement.select_items)
        )
        self.group_forms: tuple[ShallowForm, ...] = tuple(
            ShallowForm.of(expr) for expr in statement.group_by
        )
        self.is_aggregate = statement.is_aggregate
        # Memoized derived key sets. Descriptions are immutable after
        # construction and these back every probe compilation and filter
        # tree registration touching this description; writes are
        # idempotent, so concurrent readers race benignly.
        self._extended_output_columns: frozenset[ColumnKey] | None = None
        self._extended_grouping_columns: frozenset[ColumnKey] | None = None
        self._range_constrained_classes: tuple[frozenset[ColumnKey], ...] | None = None
        self._extended_range_constrained: frozenset[ColumnKey] | None = None
        self._reduced_range_constrained: frozenset[ColumnKey] | None = None
        self._output_templates: frozenset[str] | None = None
        self._residual_templates: frozenset[str] | None = None
        self._aggregate_templates: frozenset[str] | None = None

    # -- output metadata -------------------------------------------------------

    @cached_property
    def simple_output_map(self) -> dict[ColumnKey, str]:
        """Output name per directly-exposed column (first exposure wins).

        Cached: descriptions are immutable after construction and this
        map backs every output-mapping step of the matcher.
        """
        mapping: dict[ColumnKey, str] = {}
        for info in self.outputs:
            expr = info.expression
            if isinstance(expr, ColumnRef) and info.name is not None:
                mapping.setdefault(expr.key, info.name)
        return mapping

    @cached_property
    def expression_outputs(self) -> tuple[OutputInfo, ...]:
        """Non-simple, non-constant output items (expressions, aggregates)."""
        return tuple(
            info
            for info in self.outputs
            if not info.is_simple_column and not info.is_constant
        )

    def extended_output_columns(self) -> frozenset[ColumnKey]:
        """The paper's extended output list (Section 4.2.3).

        Every column equivalent (under *this* statement's classes) to a
        directly-exposed output column. Memoized (one ``class_map`` lookup
        per output column instead of a per-call class rescan).
        """
        cached = self._extended_output_columns
        if cached is None:
            class_map = self.eqclasses.class_map()
            members: set[ColumnKey] = set()
            for key in self.simple_output_map:
                members.update(class_map[key])
            cached = self._extended_output_columns = frozenset(members)
        return cached

    def output_templates(self) -> frozenset[str]:
        """Templates of non-simple outputs, with aggregates normalized."""
        cached = self._output_templates
        if cached is None:
            templates: set[str] = set()
            for info in self.expression_outputs:
                expr = info.expression
                if isinstance(expr, FuncCall) and expr.is_aggregate():
                    templates.update(normalized_aggregate_template(expr))
                else:
                    templates.add(info.form.template)
            cached = self._output_templates = frozenset(templates)
        return cached

    def residual_templates(self) -> frozenset[str]:
        cached = self._residual_templates
        if cached is None:
            cached = self._residual_templates = frozenset(
                form.template for form in self.residual_forms
            )
        return cached

    def aggregate_templates(self) -> frozenset[str]:
        """Normalized templates of every aggregate call in the output list.

        The query-side counterpart of :meth:`output_templates`: the
        aggregation subtree's output-expression level probes with these.
        """
        cached = self._aggregate_templates
        if cached is None:
            templates: set[str] = set()
            for call in self.statement.aggregate_outputs():
                templates.update(normalized_aggregate_template(call))
            cached = self._aggregate_templates = frozenset(templates)
        return cached

    # -- grouping metadata -------------------------------------------------------

    @property
    def simple_grouping_columns(self) -> frozenset[ColumnKey]:
        return frozenset(
            expr.key
            for expr in self.statement.group_by
            if isinstance(expr, ColumnRef)
        )

    def extended_grouping_columns(self) -> frozenset[ColumnKey]:
        """Extended grouping list (Section 4.2.4), mirroring output columns."""
        cached = self._extended_grouping_columns
        if cached is None:
            class_map = self.eqclasses.class_map()
            members: set[ColumnKey] = set()
            for key in self.simple_grouping_columns:
                members.update(class_map[key])
            cached = self._extended_grouping_columns = frozenset(members)
        return cached

    def grouping_templates(self) -> frozenset[str]:
        """Templates of non-simple grouping expressions."""
        return frozenset(
            form.template
            for form, expr in zip(self.group_forms, self.statement.group_by)
            if not isinstance(expr, ColumnRef)
        )

    # -- range metadata -------------------------------------------------------

    def _constrained_representatives(self) -> set[ColumnKey]:
        representatives = set(self.ranges)
        for or_range in self.or_ranges:
            representatives.add(self.eqclasses.find(or_range.column))
        return representatives

    def range_constrained_classes(self) -> tuple[frozenset[ColumnKey], ...]:
        """The equivalence classes that carry at least one range bound.

        Disjunctive ranges (the OR extension) count as range constraints
        too: their presence in a view demands a corresponding constraint in
        the query just like a plain bound does.
        """
        cached = self._range_constrained_classes
        if cached is None:
            class_map = self.eqclasses.class_map()
            cached = self._range_constrained_classes = tuple(
                class_map[rep]
                for rep in sorted(self._constrained_representatives())
            )
        return cached

    def extended_range_constrained_columns(self) -> frozenset[ColumnKey]:
        """All columns equivalent to some range-constrained column."""
        cached = self._extended_range_constrained
        if cached is None:
            members: set[ColumnKey] = set()
            for cls in self.range_constrained_classes():
                members.update(cls)
            cached = self._extended_range_constrained = frozenset(members)
        return cached

    def reduced_range_constrained_columns(self) -> frozenset[ColumnKey]:
        """Range-constrained columns in *trivial* classes (Section 4.2.5)."""
        cached = self._reduced_range_constrained
        if cached is None:
            class_map = self.eqclasses.class_map()
            cached = self._reduced_range_constrained = frozenset(
                rep
                for rep in self._constrained_representatives()
                if len(class_map[rep]) == 1
            )
        return cached

    # -- misc -------------------------------------------------------------------

    def columns_with_predicates(self) -> frozenset[ColumnKey]:
        """Columns referenced by any range or residual predicate.

        Used by the hub refinement of Section 4.2.2: a table stays in the
        hub when one of these columns belongs to a trivial class.
        """
        columns: set[ColumnKey] = {rp.column for rp in self.classified.range_predicates}
        for or_range in self.or_ranges:
            columns.add(or_range.column)
        for form in self.residual_forms:
            for ref in form.refs:
                columns.add(ref.key)
        return frozenset(columns)

    def __repr__(self) -> str:
        kind = "view" if self.name else "query"
        return f"<SpjgDescription {kind} {self.name or ''} tables={sorted(self.tables)}>"


def describe(
    statement: SelectStatement,
    catalog: "Catalog",
    name: str | None = None,
    options: MatchOptions = DEFAULT_OPTIONS,
) -> SpjgDescription:
    """Build the description of a bound SPJG statement."""
    return SpjgDescription(statement, catalog, name=name, options=options)


def validate_view_description(description: SpjgDescription) -> None:
    """Enforce the indexable-view rules of Section 2.

    * every output expression must carry a name,
    * no DISTINCT,
    * an aggregation view must output every grouping expression and a
      ``count_big(*)`` column, and its only aggregates are SUM and
      COUNT_BIG over non-nullable-safe expressions.
    """
    statement = description.statement
    if statement.distinct:
        raise MatchError("indexable views cannot use DISTINCT")
    for info in description.outputs:
        if info.name is None:
            raise MatchError(
                f"view output #{info.position + 1} needs a name (use AS)"
            )
    if not description.is_aggregate:
        for info in description.outputs:
            if info.contains_aggregate:
                raise MatchError("aggregate output in a non-grouping view")
        return
    # Aggregation view checks.
    grouping_expressions = set(statement.group_by)
    has_count_big = False
    for info in description.outputs:
        expr = info.expression
        if isinstance(expr, FuncCall) and expr.is_aggregate():
            if expr.name == "count_big" and expr.star:
                has_count_big = True
                continue
            if expr.name == "sum":
                continue
            raise MatchError(
                f"aggregation views allow only SUM and COUNT_BIG(*), got {expr.name}"
            )
        # Non-aggregate outputs must be grouping expressions.
        if expr not in grouping_expressions:
            raise MatchError(
                f"view output {expr} is neither an aggregate nor a grouping expression"
            )
    if not has_count_big:
        raise MatchError("aggregation views must output count_big(*)")
    # Every grouping expression must be an output (it forms the unique key).
    output_exprs = {info.expression for info in description.outputs}
    for expr in statement.group_by:
        if expr not in output_exprs:
            raise MatchError(f"grouping expression {expr} missing from output list")
