"""Column equivalence classes (Section 3.1.1 of the paper).

Built with a union-find over ``(table, column)`` keys from the column
equality predicates PE of an SPJ expression. Knowledge about column
equivalences lets later tests reroute a column reference to any column in
the same class, which is the backbone of all three subsumption tests and of
output-column mapping.
"""

from __future__ import annotations

from typing import Iterable, Iterator

ColumnKey = tuple[str, str]


class EquivalenceClasses:
    """A union-find over column keys with class enumeration helpers.

    Columns must be registered (``add_column``) before equalities are
    applied; every registered column starts in its own trivial class.
    """

    def __init__(self, columns: Iterable[ColumnKey] = ()) -> None:
        self._parent: dict[ColumnKey, ColumnKey] = {}
        self._rank: dict[ColumnKey, int] = {}
        self._class_map: dict[ColumnKey, frozenset[ColumnKey]] | None = None
        for column in columns:
            self.add_column(column)

    def add_column(self, column: ColumnKey) -> None:
        """Register a column in its own class (no-op if already present)."""
        if column not in self._parent:
            self._parent[column] = column
            self._rank[column] = 0
            self._class_map = None

    def __contains__(self, column: ColumnKey) -> bool:
        return column in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def columns(self) -> Iterator[ColumnKey]:
        yield from self._parent

    def find(self, column: ColumnKey) -> ColumnKey:
        """Canonical representative of the column's class."""
        parent = self._parent
        root = column
        try:
            while parent[root] != root:
                root = parent[root]
        except KeyError:
            raise KeyError(f"unregistered column {column}") from None
        # Path compression.
        while parent[column] != root:
            parent[column], column = root, parent[column]
        return root

    def add_equality(self, a: ColumnKey, b: ColumnKey) -> bool:
        """Merge the classes of ``a`` and ``b``; True if a merge happened."""
        self.add_column(a)
        self.add_column(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._class_map = None
        return True

    def same_class(self, a: ColumnKey, b: ColumnKey) -> bool:
        return self.find(a) == self.find(b)

    def class_of(self, column: ColumnKey) -> frozenset[ColumnKey]:
        root = self.find(column)
        return frozenset(c for c in self._parent if self.find(c) == root)

    def class_map(self) -> dict[ColumnKey, frozenset[ColumnKey]]:
        """Every column's full class, as one memoized dict.

        ``class_of`` rescans all registered columns per call, which makes
        the per-output/per-grouping lookups of probe compilation
        quadratic. This builds the column-to-class mapping once (one
        linear grouping pass) and caches it until the next mutation;
        callers must not mutate the returned dict.
        """
        mapping = self._class_map
        if mapping is None:
            by_root: dict[ColumnKey, list[ColumnKey]] = {}
            for column in self._parent:
                by_root.setdefault(self.find(column), []).append(column)
            mapping = {}
            for members in by_root.values():
                cls = frozenset(members)
                for column in members:
                    mapping[column] = cls
            self._class_map = mapping
        return mapping

    def classes(self) -> list[frozenset[ColumnKey]]:
        """All classes, including trivial single-column ones."""
        by_root: dict[ColumnKey, set[ColumnKey]] = {}
        for column in self._parent:
            by_root.setdefault(self.find(column), set()).add(column)
        return [frozenset(members) for members in by_root.values()]

    def nontrivial_classes(self) -> list[frozenset[ColumnKey]]:
        return [cls for cls in self.classes() if len(cls) > 1]

    def is_trivial(self, column: ColumnKey) -> bool:
        """True when the column's class contains only itself."""
        root = self.find(column)
        return all(
            self.find(other) != root for other in self._parent if other != column
        )

    def copy(self) -> "EquivalenceClasses":
        clone = EquivalenceClasses()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        return clone

    def refines(self, coarser: "EquivalenceClasses") -> bool:
        """True when every class of *self* is a subset of a class of ``coarser``.

        This is exactly the equijoin subsumption test with ``self`` as the
        view classes and ``coarser`` as the query classes, restricted to the
        columns present in both.
        """
        for cls in self.nontrivial_classes():
            members = iter(cls)
            first = next(members)
            if first not in coarser:
                return False
            for other in members:
                if other not in coarser or not coarser.same_class(first, other):
                    return False
        return True
