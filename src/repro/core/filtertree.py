"""The filter tree (Section 4 of the paper).

A filter tree recursively subdivides the registered views into smaller
partitions: each level partitions by one condition, and the keys of a node
are organised in a lattice index so a search can skip non-qualifying
partitions wholesale.

Levels follow the paper's Section 4.2 conditions. The tree is split at the
top into an SPJ subtree and an aggregation-view subtree (the paper's "two
additional levels for aggregation views"); an SPJ query searches only the
SPJ subtree, an aggregation query searches both.

Level order (paper Section 4.3): hubs, source tables, output expressions,
output columns, residual predicates, range constraints, then -- aggregation
subtree only -- grouping expressions and grouping columns.

One deliberate deviation, recorded in DESIGN.md: the output-column and
grouping-column levels use heterogeneous keys containing both the extended
column lists *and* the expression templates of the view, so that an output
computable either from exposed source columns or from a matching
pre-computed expression column is never filtered out. The paper's plain
textual output-expression condition is conservative on exactly this point
("we ignore the possibility of computing an expression from scratch");
keeping the level complete lets the test suite assert that the filter tree
never prunes a view the matcher would accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..sql.expressions import ColumnRef, Expression, FuncCall, Literal
from .describe import SpjgDescription, normalized_aggregate_template
from .equivalence import ColumnKey
from .fkgraph import compute_hub
from .lattice import Key, LatticeIndex
from .normalize import classify_predicate
from .options import DEFAULT_OPTIONS, MatchOptions
from .residual import ShallowForm

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog

# Key-element tags: keys are frozensets mixing tables, columns and templates.
_TABLE = "t"
_COLUMN = "c"
_TEMPLATE = "x"


def _tables_key(tables: Iterable[str]) -> Key:
    return frozenset((_TABLE, t) for t in tables)


def _columns_key(columns: Iterable[ColumnKey]) -> Key:
    return frozenset((_COLUMN, *c) for c in columns)


def _templates_key(templates: Iterable[str]) -> Key:
    return frozenset((_TEMPLATE, t) for t in templates)


@dataclass(frozen=True)
class RegisteredView:
    """A view plus the registration-time metadata the filter tree keys on."""

    description: SpjgDescription
    hub: frozenset[str]

    @property
    def name(self) -> str:
        assert self.description.name is not None
        return self.description.name


@dataclass(frozen=True)
class OutputRequirement:
    """One query output (or grouping) item's availability requirement.

    Satisfied when any of the ``templates`` is present in the view key, or
    when every ``column_group`` intersects the view key. Both disjuncts are
    monotone in the key, as the lattice descent requires.
    """

    templates: Key
    column_groups: tuple[Key, ...]

    def satisfied(self, key: Key) -> bool:
        if self.templates & key:
            return True
        if not self.column_groups:
            return False
        return all(group & key for group in self.column_groups)


@dataclass
class QueryProbe:
    """The query-side search keys, computed once per filter-tree search."""

    tables: Key
    output_requirements: tuple[OutputRequirement, ...]
    residual_templates: Key
    range_constrained_columns: Key
    aggregate_templates: Key
    grouping_templates: Key
    grouping_requirements: tuple[OutputRequirement, ...]
    is_aggregate: bool

    @classmethod
    def of(
        cls,
        query: SpjgDescription,
        options: MatchOptions = DEFAULT_OPTIONS,
    ) -> "QueryProbe":
        residual_templates = set(query.residual_templates())
        constrained = set(query.extended_range_constrained_columns())
        if options.use_check_constraints:
            _add_check_constraint_keys(query, residual_templates, constrained)
        return cls(
            tables=_tables_key(query.tables),
            output_requirements=_output_requirements(query),
            residual_templates=_templates_key(residual_templates),
            range_constrained_columns=_columns_key(constrained),
            aggregate_templates=_templates_key(_query_aggregate_templates(query)),
            grouping_templates=_templates_key(query.grouping_templates()),
            grouping_requirements=_grouping_requirements(query),
            is_aggregate=query.is_aggregate,
        )


def _add_check_constraint_keys(
    query: SpjgDescription,
    residual_templates: set[str],
    constrained: set[ColumnKey],
) -> None:
    """Widen the probe with check-constraint predicates (extension).

    Check constraints strengthen the antecedent, so a view predicate may be
    implied by a check constraint alone; the probe must then include the
    check-derived keys or the filter would prune views the matcher accepts.
    Constraints of *every* catalog table are included because a view's extra
    tables need not appear in the query.
    """
    from .intervalsets import as_or_range

    for table in query.catalog.tables():
        for check in table.check_constraints:
            classified = classify_predicate(check.predicate)
            for rp in classified.range_predicates:
                constrained.add(rp.column)
            for conjunct in classified.residuals:
                recognised = (
                    as_or_range(conjunct)
                    if query.options.support_or_ranges
                    else None
                )
                if recognised is not None:
                    constrained.add(recognised.column)
                else:
                    residual_templates.add(ShallowForm.of(conjunct).template)


def _query_aggregate_templates(query: SpjgDescription) -> set[str]:
    templates: set[str] = set()
    for call in query.statement.aggregate_outputs():
        templates.update(normalized_aggregate_template(call))
    return templates


def _column_group(query: SpjgDescription, key: ColumnKey) -> Key:
    """Key elements that can make one required column available.

    The column's own query equivalence class always qualifies. With the
    backjoin extension enabled, exposing any column of a non-nullable
    unique key of the owning table also suffices (the matcher can join the
    view back to the base table), so those classes widen the group.
    """
    group = set(query.eqclasses.class_of(key))
    if query.options.allow_backjoins:
        table = query.catalog.table(key[0])
        for unique_key in table.all_unique_keys():
            if any(table.is_nullable(column) for column in unique_key):
                continue
            for column in unique_key:
                group |= query.eqclasses.class_of((key[0], column))
    return _columns_key(group)


def _expression_requirement(
    query: SpjgDescription, expression: Expression
) -> OutputRequirement | None:
    """Availability requirement for one non-aggregate scalar expression."""
    if isinstance(expression, Literal):
        return None
    if isinstance(expression, ColumnRef):
        return OutputRequirement(
            templates=frozenset(),
            column_groups=(_column_group(query, expression.key),),
        )
    templates = {ShallowForm.of(expression).template}
    groups = tuple(
        _column_group(query, ref.key) for ref in expression.column_refs()
    )
    return OutputRequirement(templates=_templates_key(templates), column_groups=groups)


def _aggregate_requirement(
    query: SpjgDescription, call: FuncCall
) -> OutputRequirement | None:
    """Availability requirement for one aggregate call.

    Weakest across view kinds: an aggregation view satisfies it through the
    normalized aggregate template, an SPJ view through the argument's
    template or source columns.
    """
    if call.star:
        return None  # count(*) needs no columns from any view kind
    argument = call.args[0]
    argument_form = ShallowForm.of(argument)
    templates = set(normalized_aggregate_template(call))
    templates.add(argument_form.template)
    groups = tuple(
        _column_group(query, ref.key) for ref in argument.column_refs()
    )
    return OutputRequirement(templates=_templates_key(templates), column_groups=groups)


def _output_requirements(query: SpjgDescription) -> tuple[OutputRequirement, ...]:
    requirements: list[OutputRequirement] = []

    def add_expression(expression: Expression) -> None:
        if isinstance(expression, FuncCall) and expression.is_aggregate():
            requirement = _aggregate_requirement(query, expression)
            if requirement is not None:
                requirements.append(requirement)
            return
        if expression.contains_aggregate():
            for child in expression.children():
                add_expression(child)
            return
        requirement = _expression_requirement(query, expression)
        if requirement is not None:
            requirements.append(requirement)

    for info in query.outputs:
        add_expression(info.expression)
    for expr in query.statement.group_by:
        add_expression(expr)
    return tuple(requirements)


def _grouping_requirements(query: SpjgDescription) -> tuple[OutputRequirement, ...]:
    """Per-item grouping conditions for the grouping-column level."""
    requirements: list[OutputRequirement] = []
    for expr in query.statement.group_by:
        if isinstance(expr, ColumnRef):
            requirements.append(
                OutputRequirement(
                    templates=frozenset(),
                    column_groups=(
                        _columns_key(query.eqclasses.class_of(expr.key)),
                    ),
                )
            )
        else:
            requirements.append(
                OutputRequirement(
                    templates=_templates_key({ShallowForm.of(expr).template}),
                    column_groups=(),
                )
            )
    return tuple(requirements)


# ---------------------------------------------------------------------------
# Levels
# ---------------------------------------------------------------------------


class _Level:
    """One partitioning condition: a view key and a lattice search."""

    name = "level"

    def view_key(self, view: RegisteredView) -> Key:
        raise NotImplementedError

    def projection(self, key: Key) -> Key:
        return key

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        raise NotImplementedError

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        """Direct evaluation of the level's condition on one key.

        Used by :meth:`FilterTree.filter_statistics` to attribute pruning
        to levels; the lattice searches above are the fast path and must
        return exactly the keys this predicate accepts.
        """
        raise NotImplementedError


class HubLevel(_Level):
    """Section 4.2.2: the view's hub must be a subset of the query tables."""

    name = "hub"

    def view_key(self, view: RegisteredView) -> Key:
        return _tables_key(view.hub)

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        return index.subsets_of(probe.tables)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key <= probe.tables


class SourceTableLevel(_Level):
    """Section 4.2.1: the view's tables must be a superset of the query's."""

    name = "source-tables"

    def view_key(self, view: RegisteredView) -> Key:
        return _tables_key(view.description.tables)

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        return index.supersets_of(probe.tables)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.tables


class OutputExpressionLevel(_Level):
    """Section 4.2.7, aggregation subtree: textual aggregate containment."""

    name = "output-expressions"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.output_templates())

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        return index.supersets_of(probe.aggregate_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.aggregate_templates


class OutputColumnLevel(_Level):
    """Sections 4.2.3/4.2.7 merged: per-item output availability."""

    name = "output-columns"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        return _columns_key(description.extended_output_columns()) | _templates_key(
            description.output_templates()
        )

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        requirements = probe.output_requirements

        def qualify(key: Key) -> bool:
            return all(req.satisfied(key) for req in requirements)

        return index.descend_monotone(qualify)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(req.satisfied(key) for req in probe.output_requirements)


class ResidualLevel(_Level):
    """Section 4.2.6: view residual templates within the query's."""

    name = "residual"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.residual_templates())

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        return index.subsets_of(probe.residual_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key <= probe.residual_templates


class RangeConstraintLevel(_Level):
    """Section 4.2.5: view-constrained classes hit query-constrained columns.

    The identity key is the full constraint-class list; the lattice order
    uses the reduced list (trivial-class columns only), exactly the paper's
    weak-condition construction.
    """

    name = "range-constraints"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        classes = description.range_constrained_classes()
        return frozenset(_columns_key(cls) for cls in classes)

    def projection(self, key: Key) -> Key:
        reduced: set = set()
        for cls in key:
            if len(cls) == 1:
                reduced.update(cls)
        return frozenset(reduced)

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        constrained = probe.range_constrained_columns

        def weak_qualify(order_key: Key) -> bool:
            return order_key <= constrained

        def qualify(key: Key) -> bool:
            return all(cls & constrained for cls in key)

        return index.ascend_weak(weak_qualify, qualify)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(cls & probe.range_constrained_columns for cls in key)


class GroupingExpressionLevel(_Level):
    """Section 4.2.8, aggregation subtree only."""

    name = "grouping-expressions"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.grouping_templates())

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        return index.supersets_of(probe.grouping_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.grouping_templates


class GroupingColumnLevel(_Level):
    """Section 4.2.4, aggregation subtree only."""

    name = "grouping-columns"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        return _columns_key(
            description.extended_grouping_columns()
        ) | _templates_key(description.grouping_templates())

    def search(self, index: LatticeIndex, probe: QueryProbe) -> list:
        requirements = probe.grouping_requirements

        def qualify(key: Key) -> bool:
            return all(req.satisfied(key) for req in requirements)

        return index.descend_monotone(qualify)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(req.satisfied(key) for req in probe.grouping_requirements)


SPJ_LEVELS: tuple[_Level, ...] = (
    HubLevel(),
    SourceTableLevel(),
    OutputColumnLevel(),
    ResidualLevel(),
    RangeConstraintLevel(),
)

AGGREGATE_LEVELS: tuple[_Level, ...] = (
    HubLevel(),
    SourceTableLevel(),
    OutputExpressionLevel(),
    OutputColumnLevel(),
    ResidualLevel(),
    RangeConstraintLevel(),
    GroupingExpressionLevel(),
    GroupingColumnLevel(),
)


# ---------------------------------------------------------------------------
# The tree
# ---------------------------------------------------------------------------


@dataclass
class _TreeNode:
    """An internal node: one lattice index whose payloads are child nodes."""

    levels: tuple[_Level, ...]
    depth: int
    index: LatticeIndex = field(init=False)
    views: list[RegisteredView] = field(default_factory=list)  # leaves only

    def __post_init__(self) -> None:
        if self.depth < len(self.levels):
            level = self.levels[self.depth]
            self.index = LatticeIndex(projection=level.projection)

    @property
    def is_leaf(self) -> bool:
        return self.depth >= len(self.levels)

    def add(self, view: RegisteredView) -> None:
        if self.is_leaf:
            self.views.append(view)
            return
        level = self.levels[self.depth]
        key = level.view_key(view)
        node = self.index.node(key)
        if node is None or not node.payloads:
            child = _TreeNode(self.levels, self.depth + 1)
            self.index.insert(key, child)
        else:
            child = node.payloads[0]
        child.add(view)

    def remove(self, view: RegisteredView) -> None:
        if self.is_leaf:
            self.views.remove(view)
            return
        level = self.levels[self.depth]
        key = level.view_key(view)
        node = self.index.node(key)
        if node is None or not node.payloads:
            raise KeyError(f"view {view.name} not present at level {level.name}")
        child: _TreeNode = node.payloads[0]
        child.remove(view)
        if child.is_empty():
            self.index.remove_payload(key, child)

    def is_empty(self) -> bool:
        if self.is_leaf:
            return not self.views
        return len(self.index) == 0

    def search(self, probe: QueryProbe, out: list[RegisteredView]) -> None:
        if self.is_leaf:
            out.extend(self.views)
            return
        level = self.levels[self.depth]
        for node in level.search(self.index, probe):
            for child in node.payloads:
                child.search(probe, out)


class FilterTree:
    """The complete index over registered view descriptions.

    ``candidates`` returns a superset of the views the matching algorithm
    would accept for the query (never a false negative under the default
    options; see the module docstring for the one documented refinement).
    """

    def __init__(
        self,
        options: MatchOptions = DEFAULT_OPTIONS,
        spj_levels: tuple[_Level, ...] | None = None,
        aggregate_levels: tuple[_Level, ...] | None = None,
    ):
        """Build an empty tree.

        ``spj_levels`` / ``aggregate_levels`` override the default level
        composition -- the paper notes the conditions "are independent and
        can be composed in any order", and the level-ordering ablation
        benchmark exercises exactly this hook. Every ordering yields the
        same candidate sets; only search cost differs.
        """
        self.options = options
        self._spj_root = _TreeNode(spj_levels or SPJ_LEVELS, 0)
        self._aggregate_root = _TreeNode(aggregate_levels or AGGREGATE_LEVELS, 0)
        self._registered: dict[str, RegisteredView] = {}

    def __len__(self) -> int:
        return len(self._registered)

    def register(self, description: SpjgDescription) -> RegisteredView:
        """Index a view description (computing its hub) into the tree."""
        if description.name is None:
            raise ValueError("only named views can be registered")
        view = RegisteredView(
            description=description,
            hub=compute_hub(description, self.options),
        )
        self.register_prebuilt(view)
        return view

    def register_prebuilt(self, view: RegisteredView) -> RegisteredView:
        """Index an already-described view, reusing its description and hub.

        Snapshot rebuilds (``repro.service``) re-index hundreds of views on
        every catalog change; describing a view and computing its hub is
        the expensive part of registration, so the serving layer keeps the
        :class:`RegisteredView` objects and replays them into fresh trees
        through this entry point.
        """
        name = view.description.name
        if name is None:
            raise ValueError("only named views can be registered")
        if name in self._registered:
            raise ValueError(f"view {name} already registered")
        root = (
            self._aggregate_root
            if view.description.is_aggregate
            else self._spj_root
        )
        root.add(view)
        self._registered[name] = view
        return view

    def unregister(self, name: str) -> None:
        """Remove a view and its keys from every level."""
        view = self._registered.pop(name, None)
        if view is None:
            raise KeyError(f"view {name} not registered")
        root = (
            self._aggregate_root
            if view.description.is_aggregate
            else self._spj_root
        )
        root.remove(view)

    def views(self) -> tuple[RegisteredView, ...]:
        """All registered views, in registration order."""
        return tuple(self._registered.values())

    def candidates(self, query: SpjgDescription) -> list[RegisteredView]:
        """Views passing all filter conditions for the query expression."""
        probe = QueryProbe.of(query, self.options)
        found: list[RegisteredView] = []
        self._spj_root.search(probe, found)
        if query.is_aggregate:
            self._aggregate_root.search(probe, found)
        return found

    def filter_statistics(self, query: SpjgDescription) -> list[tuple[str, int]]:
        """Per-level survivor counts for one query (diagnostics).

        Evaluates each level's condition directly on every registered
        view's key, in tree order, and reports how many views survive
        after each level -- the attribution behind Section 5's "the filter
        tree consistently reduced the candidate set to less than 0.4%".
        The final count equals ``len(candidates(query))``.
        """
        probe = QueryProbe.of(query, self.options)
        spj_views = [
            v for v in self._registered.values() if not v.description.is_aggregate
        ]
        aggregate_views = (
            [v for v in self._registered.values() if v.description.is_aggregate]
            if query.is_aggregate
            else []
        )
        statistics: list[tuple[str, int]] = [
            ("registered", len(spj_views) + len(aggregate_views))
        ]
        max_depth = max(
            len(self._spj_root.levels), len(self._aggregate_root.levels)
        )
        for depth in range(max_depth):
            for views, levels in (
                (spj_views, self._spj_root.levels),
                (aggregate_views, self._aggregate_root.levels),
            ):
                if depth >= len(levels):
                    continue
                level = levels[depth]
                views[:] = [
                    v for v in views if level.qualifies(level.view_key(v), probe)
                ]
            names = set()
            for levels in (self._spj_root.levels, self._aggregate_root.levels):
                if depth < len(levels):
                    names.add(levels[depth].name)
            statistics.append(
                ("+".join(sorted(names)), len(spj_views) + len(aggregate_views))
            )
        return statistics
