"""The filter tree (Section 4 of the paper).

A filter tree recursively subdivides the registered views into smaller
partitions: each level partitions by one condition, and the keys of a node
are organised in a lattice index so a search can skip non-qualifying
partitions wholesale.

Levels follow the paper's Section 4.2 conditions. The tree is split at the
top into an SPJ subtree and an aggregation-view subtree (the paper's "two
additional levels for aggregation views"); an SPJ query searches only the
SPJ subtree, an aggregation query searches both.

Level order (paper Section 4.3): hubs, source tables, output expressions,
output columns, residual predicates, range constraints, then -- aggregation
subtree only -- grouping expressions and grouping columns.

One deliberate deviation, recorded in DESIGN.md: the output-column and
grouping-column levels use heterogeneous keys containing both the extended
column lists *and* the expression templates of the view, so that an output
computable either from exposed source columns or from a matching
pre-computed expression column is never filtered out. The paper's plain
textual output-expression condition is conservative on exactly this point
("we ignore the possibility of computing an expression from scratch");
keeping the level complete lets the test suite assert that the filter tree
never prunes a view the matcher would accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Iterable

from ..obs.trace import current_tracer
from ..sql.expressions import ColumnRef, Expression, FuncCall, Literal
from .describe import SpjgDescription, normalized_aggregate_template
from .equivalence import ColumnKey
from .fkgraph import compute_hub
from .interning import KeyInterner, PackedBitsetTable
from .lattice import Key, LatticeIndex
from .matching import ViewMatchContext
from .normalize import classify_predicate
from .options import DEFAULT_OPTIONS, MatchOptions
from .preverify import CandidatePreVerifier, PreVerifierSchema
from .residual import ShallowForm

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog

# Key-element tags: keys are frozensets mixing tables, columns and templates.
_TABLE = "t"
_COLUMN = "c"
_TEMPLATE = "x"


def _tables_key(tables: Iterable[str]) -> Key:
    return frozenset((_TABLE, t) for t in tables)


def _columns_key(columns: Iterable[ColumnKey]) -> Key:
    return frozenset((_COLUMN, *c) for c in columns)


def _templates_key(templates: Iterable[str]) -> Key:
    return frozenset((_TEMPLATE, t) for t in templates)


@dataclass(frozen=True)
class RegisteredView:
    """A view plus the registration-time metadata the filter tree keys on.

    ``match_context`` carries the precomputed per-view matching state
    (:class:`~repro.core.matching.ViewMatchContext`) built once at
    registration; it rides along through snapshot rebuilds so epoch
    replays never re-derive it. ``None`` only for views constructed
    outside the registration entry points -- ``match_view`` then rebuilds
    the context per invocation.
    """

    description: SpjgDescription
    hub: frozenset[str]
    match_context: ViewMatchContext | None = None

    @property
    def name(self) -> str:
        assert self.description.name is not None
        return self.description.name


@dataclass(frozen=True)
class OutputRequirement:
    """One query output (or grouping) item's availability requirement.

    Satisfied when any of the ``templates`` is present in the view key, or
    when every ``column_group`` intersects the view key. Both disjuncts are
    monotone in the key, as the lattice descent requires.
    """

    templates: Key
    column_groups: tuple[Key, ...]

    def satisfied(self, key: Key) -> bool:
        if self.templates & key:
            return True
        if not self.column_groups:
            return False
        return all(group & key for group in self.column_groups)


def _bind_requirement(
    requirement: OutputRequirement, interner: KeyInterner
) -> tuple[int, tuple[int, ...]]:
    """Compile one :class:`OutputRequirement` to ``(templates_mask, group_masks)``.

    Probe atoms the interner has never seen are dropped from the masks:
    every registered key atom *is* interned, so an unknown probe atom can
    never witness an intersection with a view key, and dropping it is
    exact. The pair is consumed by :func:`_requirements_satisfied_bits`,
    which replicates :meth:`OutputRequirement.satisfied` on bitmasks.
    """
    templates_mask, _ = interner.known_mask(requirement.templates)
    group_masks = tuple(
        interner.known_mask(group)[0] for group in requirement.column_groups
    )
    return templates_mask, group_masks


def _requirements_satisfied_bits(
    pairs: tuple[tuple[int, tuple[int, ...]], ...], key_bits: int
) -> bool:
    """True when every bound requirement holds against ``key_bits``."""
    for templates_mask, group_masks in pairs:
        if templates_mask & key_bits:
            continue
        if not group_masks:
            return False
        for mask in group_masks:
            if not (mask & key_bits):
                return False
    return True


def _classes_hit_bits(
    key: Key,
    probe: "QueryProbe",
    bound: "_BoundProbe",
    interner: KeyInterner,
) -> bool:
    """Range-constraint full condition on interned class-member masks.

    Every equivalence class in ``key`` must intersect the query's
    range-constrained columns. A class whose members are all interned is
    tested exactly by the mask (an un-interned probe column can never
    equal an interned member); classes with un-interned members fall back
    to the frozenset intersection. Per-class masks are memoized on the
    bound probe.
    """
    range_mask = bound.range_mask
    class_masks = bound.class_masks
    constrained = None
    for cls in key:
        entry = class_masks.get(cls)
        if entry is None:
            entry = interner.known_mask(cls)
            class_masks[cls] = entry
        mask, complete = entry
        if mask & range_mask:
            continue
        if complete:
            return False
        if constrained is None:
            constrained = probe.range_constrained_columns
        if not (cls & constrained):
            return False
    return True


class _BoundProbe:
    """A :class:`QueryProbe` encoded as bitmasks against one interner.

    Built once per filter-tree search (both subtrees share the tree's
    interner) and reused by every lattice index the search touches.
    ``class_masks`` memoizes the per-equivalence-class masks the
    range-constraint level's full condition needs.
    """

    __slots__ = (
        "tables_mask",
        "tables_complete",
        "residual_mask",
        "range_mask",
        "aggregate_mask",
        "aggregate_complete",
        "grouping_mask",
        "grouping_complete",
        "output_requirements",
        "grouping_requirements",
        "class_masks",
        "packed_cache",
    )

    def __init__(self, probe: "QueryProbe", interner: KeyInterner):
        self.tables_mask, self.tables_complete = interner.known_mask(
            probe.tables
        )
        self.residual_mask, _ = interner.known_mask(probe.residual_templates)
        self.range_mask, _ = interner.known_mask(
            probe.range_constrained_columns
        )
        self.aggregate_mask, self.aggregate_complete = interner.known_mask(
            probe.aggregate_templates
        )
        self.grouping_mask, self.grouping_complete = interner.known_mask(
            probe.grouping_templates
        )
        self.output_requirements = tuple(
            _bind_requirement(req, interner)
            for req in probe.output_requirements
        )
        self.grouping_requirements = tuple(
            _bind_requirement(req, interner)
            for req in probe.grouping_requirements
        )
        self.class_masks: dict[Key, tuple[int, bool]] = {}
        # Compiled packed-sweep query vectors, stashed here by
        # _PackedSubtree keyed on its serial: the bound probe is the
        # natural lifetime for them (rebuilt whenever the interner grows).
        self.packed_cache: dict[int, tuple] = {}


@dataclass
class QueryProbe:
    """The query-side search keys, computed once per filter-tree search."""

    tables: Key
    output_requirements: tuple[OutputRequirement, ...]
    residual_templates: Key
    range_constrained_columns: Key
    aggregate_templates: Key
    grouping_templates: Key
    grouping_requirements: tuple[OutputRequirement, ...]
    is_aggregate: bool
    _bindings: dict = field(default_factory=dict, repr=False, compare=False)

    def bind(self, interner: KeyInterner) -> _BoundProbe:
        """The probe's bitmask encoding under ``interner`` (memoized).

        The memo records the interner *version* it was built against and
        rebuilds when the interner has grown since: registrations after the
        first bind intern new atoms, and a stale encoding would keep
        reporting them unknown -- ``tables_complete`` would stay false and
        the source-table level would silently drop the new views.
        """
        version = interner.version
        entry = self._bindings.get(interner)
        if entry is None or entry[0] != version:
            entry = (version, _BoundProbe(self, interner))
            self._bindings[interner] = entry
        return entry[1]

    @classmethod
    def cached_of(
        cls,
        query: SpjgDescription,
        options: MatchOptions = DEFAULT_OPTIONS,
    ) -> "QueryProbe":
        """Like :meth:`of` but memoized on the description object.

        A description is derived once per rule invocation; every filter
        tree probing it with the same options (e.g. the reference and
        interned trees of the hot-path benchmark, or repeated probes of
        one served request) shares the derived keys.
        """
        cache = getattr(query, "_probe_cache", None)
        if cache is None:
            cache = {}
            query._probe_cache = cache
        probe = cache.get(options)
        if probe is None:
            probe = cls.of(query, options)
            cache[options] = probe
        return probe

    @classmethod
    def of(
        cls,
        query: SpjgDescription,
        options: MatchOptions = DEFAULT_OPTIONS,
    ) -> "QueryProbe":
        """Compile the query-side search keys (fast single-pass pipeline).

        Reuses the shallow forms and memoized class map the description
        already carries, derives every per-column group through one
        ``class_map`` lookup, and pulls check-constraint keys from a
        per-catalog cache. ``options.use_fast_probe=False`` dispatches to
        :meth:`of_reference`, the pre-fusion pipeline kept as the hot-path
        benchmark's baseline; both build identical probes.
        """
        if not options.use_fast_probe:
            return cls.of_reference(query, options)
        residual_templates = query.residual_templates()
        constrained = query.extended_range_constrained_columns()
        if options.use_check_constraints:
            check_columns, check_templates = _catalog_check_keys(
                query.catalog, query.options.support_or_ranges
            )
            residual_templates = residual_templates | check_templates
            constrained = constrained | check_columns
        return cls(
            tables=_tables_key(query.tables),
            output_requirements=_output_requirements(query),
            residual_templates=_templates_key(residual_templates),
            range_constrained_columns=_columns_key(constrained),
            aggregate_templates=_templates_key(query.aggregate_templates()),
            grouping_templates=_templates_key(query.grouping_templates()),
            grouping_requirements=_grouping_requirements(query),
            is_aggregate=query.is_aggregate,
        )

    @classmethod
    def of_reference(
        cls,
        query: SpjgDescription,
        options: MatchOptions = DEFAULT_OPTIONS,
    ) -> "QueryProbe":
        """The pre-fusion probe pipeline, preserved verbatim.

        Recomputes every derived set from first principles -- per-call
        ``class_of`` scans, shallow-form rederivation, a fresh catalog
        check-constraint walk -- exactly as probe compilation worked before
        the single-pass analyzer. The hot-path benchmark times this against
        :meth:`of` on identical descriptions so the reported speedup is
        measured in-run rather than against a stale baseline, and the
        equivalence property test asserts both pipelines agree.
        """
        residual_templates = set(
            form.template for form in query.residual_forms
        )
        constrained = set(_extended_range_constrained_reference(query))
        if options.use_check_constraints:
            _add_check_constraint_keys_reference(
                query, residual_templates, constrained
            )
        return cls(
            tables=_tables_key(query.tables),
            output_requirements=_output_requirements_reference(query),
            residual_templates=_templates_key(residual_templates),
            range_constrained_columns=_columns_key(constrained),
            aggregate_templates=_templates_key(
                _query_aggregate_templates_reference(query)
            ),
            grouping_templates=_templates_key(query.grouping_templates()),
            grouping_requirements=_grouping_requirements_reference(query),
            is_aggregate=query.is_aggregate,
        )


# ---------------------------------------------------------------------------
# Fast probe compilation
# ---------------------------------------------------------------------------


def _catalog_check_keys(
    catalog: "Catalog", support_or_ranges: bool
) -> tuple[frozenset[ColumnKey], frozenset[str]]:
    """Probe keys derived from the catalog's check constraints (cached).

    Check constraints strengthen the antecedent, so a view predicate may be
    implied by a check constraint alone; the probe must then include the
    check-derived keys or the filter would prune views the matcher accepts.
    Constraints of *every* catalog table are included because a view's extra
    tables need not appear in the query. The derivation depends only on the
    catalog and the OR-range flag, so it is computed once per catalog
    instead of once per probe.
    """
    from .intervalsets import as_or_range

    cache = getattr(catalog, "_check_key_cache", None)
    if cache is None:
        cache = {}
        catalog._check_key_cache = cache
    entry = cache.get(support_or_ranges)
    if entry is None:
        constrained: set[ColumnKey] = set()
        templates: set[str] = set()
        for table in catalog.tables():
            for check in table.check_constraints:
                classified = classify_predicate(check.predicate)
                for rp in classified.range_predicates:
                    constrained.add(rp.column)
                for conjunct in classified.residuals:
                    recognised = (
                        as_or_range(conjunct) if support_or_ranges else None
                    )
                    if recognised is not None:
                        constrained.add(recognised.column)
                    else:
                        templates.add(ShallowForm.of(conjunct).template)
        entry = (frozenset(constrained), frozenset(templates))
        cache[support_or_ranges] = entry
    return entry


def _output_requirements(query: SpjgDescription) -> tuple[OutputRequirement, ...]:
    """Availability requirements for every output and grouping item.

    One pass reusing the description's precomputed shallow forms; column
    groups come from the memoized class map with a per-probe group cache
    (outputs and groupings overwhelmingly repeat the same columns).
    """
    class_map = query.eqclasses.class_map()
    backjoins = query.options.allow_backjoins
    catalog = query.catalog
    group_cache: dict[ColumnKey, Key] = {}

    def column_group(key: ColumnKey) -> Key:
        group = group_cache.get(key)
        if group is None:
            members = set(class_map[key])
            if backjoins:
                table = catalog.table(key[0])
                for unique_key in table.all_unique_keys():
                    if any(table.is_nullable(column) for column in unique_key):
                        continue
                    for column in unique_key:
                        members |= class_map[(key[0], column)]
            group = _columns_key(members)
            group_cache[key] = group
        return group

    requirements: list[OutputRequirement] = []

    def add_expression(
        expression: Expression, form: ShallowForm | None = None
    ) -> None:
        if isinstance(expression, FuncCall) and expression.is_aggregate():
            if expression.star:
                return  # count(*) needs no columns from any view kind
            argument = expression.args[0]
            argument_form = ShallowForm.of(argument)
            templates = set(
                normalized_aggregate_template(expression, argument_form)
            )
            templates.add(argument_form.template)
            requirements.append(
                OutputRequirement(
                    templates=_templates_key(templates),
                    column_groups=tuple(
                        column_group(ref.key)
                        for ref in argument.column_refs()
                    ),
                )
            )
            return
        if expression.contains_aggregate():
            for child in expression.children():
                add_expression(child)
            return
        if isinstance(expression, Literal):
            return
        if isinstance(expression, ColumnRef):
            requirements.append(
                OutputRequirement(
                    templates=frozenset(),
                    column_groups=(column_group(expression.key),),
                )
            )
            return
        template = (form or ShallowForm.of(expression)).template
        requirements.append(
            OutputRequirement(
                templates=_templates_key({template}),
                column_groups=tuple(
                    column_group(ref.key) for ref in expression.column_refs()
                ),
            )
        )

    for info in query.outputs:
        add_expression(info.expression, info.form)
    for form, expr in zip(query.group_forms, query.statement.group_by):
        add_expression(expr, form)
    return tuple(requirements)


def _grouping_requirements(query: SpjgDescription) -> tuple[OutputRequirement, ...]:
    """Per-item grouping conditions for the grouping-column level."""
    class_map = query.eqclasses.class_map()
    requirements: list[OutputRequirement] = []
    for form, expr in zip(query.group_forms, query.statement.group_by):
        if isinstance(expr, ColumnRef):
            requirements.append(
                OutputRequirement(
                    templates=frozenset(),
                    column_groups=(_columns_key(class_map[expr.key]),),
                )
            )
        else:
            requirements.append(
                OutputRequirement(
                    templates=_templates_key({form.template}),
                    column_groups=(),
                )
            )
    return tuple(requirements)


# ---------------------------------------------------------------------------
# Reference probe compilation (the pre-fusion pipeline, kept verbatim so the
# hot-path benchmark measures the fast path's speedup from identical inputs;
# see QueryProbe.of_reference)
# ---------------------------------------------------------------------------


def _extended_range_constrained_reference(
    query: SpjgDescription,
) -> set[ColumnKey]:
    """Pre-fusion extended range-constrained columns (per-call class scans)."""
    representatives = set(query.ranges)
    for or_range in query.or_ranges:
        representatives.add(query.eqclasses.find(or_range.column))
    members: set[ColumnKey] = set()
    for rep in representatives:
        members.update(query.eqclasses.class_of(rep))
    return members


def _add_check_constraint_keys_reference(
    query: SpjgDescription,
    residual_templates: set[str],
    constrained: set[ColumnKey],
) -> None:
    """Pre-fusion check-constraint widening (full catalog walk per probe)."""
    from .intervalsets import as_or_range

    for table in query.catalog.tables():
        for check in table.check_constraints:
            classified = classify_predicate(check.predicate)
            for rp in classified.range_predicates:
                constrained.add(rp.column)
            for conjunct in classified.residuals:
                recognised = (
                    as_or_range(conjunct)
                    if query.options.support_or_ranges
                    else None
                )
                if recognised is not None:
                    constrained.add(recognised.column)
                else:
                    residual_templates.add(ShallowForm.of(conjunct).template)


def _query_aggregate_templates_reference(query: SpjgDescription) -> set[str]:
    templates: set[str] = set()
    for call in query.statement.aggregate_outputs():
        templates.update(normalized_aggregate_template(call))
    return templates


def _column_group_reference(query: SpjgDescription, key: ColumnKey) -> Key:
    """Key elements that can make one required column available.

    The column's own query equivalence class always qualifies. With the
    backjoin extension enabled, exposing any column of a non-nullable
    unique key of the owning table also suffices (the matcher can join the
    view back to the base table), so those classes widen the group.
    """
    group = set(query.eqclasses.class_of(key))
    if query.options.allow_backjoins:
        table = query.catalog.table(key[0])
        for unique_key in table.all_unique_keys():
            if any(table.is_nullable(column) for column in unique_key):
                continue
            for column in unique_key:
                group |= query.eqclasses.class_of((key[0], column))
    return _columns_key(group)


def _expression_requirement_reference(
    query: SpjgDescription, expression: Expression
) -> OutputRequirement | None:
    """Availability requirement for one non-aggregate scalar expression."""
    if isinstance(expression, Literal):
        return None
    if isinstance(expression, ColumnRef):
        return OutputRequirement(
            templates=frozenset(),
            column_groups=(_column_group_reference(query, expression.key),),
        )
    templates = {ShallowForm.of(expression).template}
    groups = tuple(
        _column_group_reference(query, ref.key)
        for ref in expression.column_refs()
    )
    return OutputRequirement(templates=_templates_key(templates), column_groups=groups)


def _aggregate_requirement_reference(
    query: SpjgDescription, call: FuncCall
) -> OutputRequirement | None:
    """Availability requirement for one aggregate call.

    Weakest across view kinds: an aggregation view satisfies it through the
    normalized aggregate template, an SPJ view through the argument's
    template or source columns.
    """
    if call.star:
        return None  # count(*) needs no columns from any view kind
    argument = call.args[0]
    argument_form = ShallowForm.of(argument)
    templates = set(normalized_aggregate_template(call))
    templates.add(argument_form.template)
    groups = tuple(
        _column_group_reference(query, ref.key)
        for ref in argument.column_refs()
    )
    return OutputRequirement(templates=_templates_key(templates), column_groups=groups)


def _output_requirements_reference(
    query: SpjgDescription,
) -> tuple[OutputRequirement, ...]:
    requirements: list[OutputRequirement] = []

    def add_expression(expression: Expression) -> None:
        if isinstance(expression, FuncCall) and expression.is_aggregate():
            requirement = _aggregate_requirement_reference(query, expression)
            if requirement is not None:
                requirements.append(requirement)
            return
        if expression.contains_aggregate():
            for child in expression.children():
                add_expression(child)
            return
        requirement = _expression_requirement_reference(query, expression)
        if requirement is not None:
            requirements.append(requirement)

    for info in query.outputs:
        add_expression(info.expression)
    for expr in query.statement.group_by:
        add_expression(expr)
    return tuple(requirements)


def _grouping_requirements_reference(
    query: SpjgDescription,
) -> tuple[OutputRequirement, ...]:
    """Per-item grouping conditions for the grouping-column level."""
    requirements: list[OutputRequirement] = []
    for expr in query.statement.group_by:
        if isinstance(expr, ColumnRef):
            requirements.append(
                OutputRequirement(
                    templates=frozenset(),
                    column_groups=(
                        _columns_key(query.eqclasses.class_of(expr.key)),
                    ),
                )
            )
        else:
            requirements.append(
                OutputRequirement(
                    templates=_templates_key({ShallowForm.of(expr).template}),
                    column_groups=(),
                )
            )
    return tuple(requirements)


# ---------------------------------------------------------------------------
# Levels
# ---------------------------------------------------------------------------


class _Level:
    """One partitioning condition: a view key and a lattice search."""

    name = "level"

    def view_key(self, view: RegisteredView) -> Key:
        raise NotImplementedError

    def projection(self, key: Key) -> Key:
        return key

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        """Lattice search for the level's condition.

        ``bound`` is the probe's bitmask encoding under the index's
        interner, bound once per tree search; ``None`` selects the plain
        frozenset search path.
        """
        raise NotImplementedError

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        """Direct evaluation of the level's condition on one key.

        Used by :meth:`FilterTree.filter_statistics` to attribute pruning
        to levels; the lattice searches above are the fast path and must
        return exactly the keys this predicate accepts.
        """
        raise NotImplementedError

    def match_bits(
        self,
        node,
        probe: QueryProbe,
        bound: "_BoundProbe",
        interner: KeyInterner,
    ) -> bool:
        """The level's condition on one lattice node's bitmask encoding.

        Must agree with :meth:`qualifies` on every stored key. The tree
        search uses it to test singleton indexes directly -- most internal
        lattice indexes hold exactly one node, where even the flat-scan
        lattice search costs more than a single bit test. The default
        falls back to the exact key predicate so custom levels stay
        correct without a bits implementation.
        """
        return self.qualifies(node.key, probe)


class HubLevel(_Level):
    """Section 4.2.2: the view's hub must be a subset of the query tables."""

    name = "hub"

    def view_key(self, view: RegisteredView) -> Key:
        return _tables_key(view.hub)

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            return index.subsets_of(probe.tables, probe_bits=bound.tables_mask)
        return index.subsets_of(probe.tables)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key <= probe.tables

    def match_bits(self, node, probe, bound, interner) -> bool:
        return node.order_bits & bound.tables_mask == node.order_bits


class SourceTableLevel(_Level):
    """Section 4.2.1: the view's tables must be a superset of the query's."""

    name = "source-tables"

    def view_key(self, view: RegisteredView) -> Key:
        return _tables_key(view.description.tables)

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            return index.supersets_of(
                probe.tables,
                probe_bits=bound.tables_mask,
                probe_complete=bound.tables_complete,
            )
        return index.supersets_of(probe.tables)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.tables

    def match_bits(self, node, probe, bound, interner) -> bool:
        mask = bound.tables_mask
        return bound.tables_complete and node.order_bits & mask == mask


class OutputExpressionLevel(_Level):
    """Section 4.2.7, aggregation subtree: textual aggregate containment."""

    name = "output-expressions"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.output_templates())

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            return index.supersets_of(
                probe.aggregate_templates,
                probe_bits=bound.aggregate_mask,
                probe_complete=bound.aggregate_complete,
            )
        return index.supersets_of(probe.aggregate_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.aggregate_templates

    def match_bits(self, node, probe, bound, interner) -> bool:
        mask = bound.aggregate_mask
        return bound.aggregate_complete and node.order_bits & mask == mask


class OutputColumnLevel(_Level):
    """Sections 4.2.3/4.2.7 merged: per-item output availability."""

    name = "output-columns"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        return _columns_key(description.extended_output_columns()) | _templates_key(
            description.output_templates()
        )

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            pairs = bound.output_requirements
            return index.descend_monotone(
                self._qualify(probe),
                qualify_bits=lambda key_bits: _requirements_satisfied_bits(
                    pairs, key_bits
                ),
            )
        return index.descend_monotone(self._qualify(probe))

    @staticmethod
    def _qualify(probe: QueryProbe):
        requirements = probe.output_requirements
        return lambda key: all(req.satisfied(key) for req in requirements)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(req.satisfied(key) for req in probe.output_requirements)

    def match_bits(self, node, probe, bound, interner) -> bool:
        return _requirements_satisfied_bits(bound.output_requirements, node.bits)


class ResidualLevel(_Level):
    """Section 4.2.6: view residual templates within the query's."""

    name = "residual"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.residual_templates())

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            return index.subsets_of(
                probe.residual_templates, probe_bits=bound.residual_mask
            )
        return index.subsets_of(probe.residual_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key <= probe.residual_templates

    def match_bits(self, node, probe, bound, interner) -> bool:
        return node.order_bits & bound.residual_mask == node.order_bits


class RangeConstraintLevel(_Level):
    """Section 4.2.5: view-constrained classes hit query-constrained columns.

    The identity key is the full constraint-class list; the lattice order
    uses the reduced list (trivial-class columns only), exactly the paper's
    weak-condition construction.
    """

    name = "range-constraints"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        classes = description.range_constrained_classes()
        return frozenset(_columns_key(cls) for cls in classes)

    def projection(self, key: Key) -> Key:
        reduced: set = set()
        for cls in key:
            if len(cls) == 1:
                reduced.update(cls)
        return frozenset(reduced)

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        constrained = probe.range_constrained_columns

        def weak_qualify(order_key: Key) -> bool:
            return order_key <= constrained

        def qualify(key: Key) -> bool:
            return all(cls & constrained for cls in key)

        interner = index.interner
        if bound is not None and interner is not None:
            range_mask = bound.range_mask

            def weak_qualify_bits(order_bits: int) -> bool:
                return order_bits & range_mask == order_bits

            def qualify_interned(key: Key) -> bool:
                return _classes_hit_bits(key, probe, bound, interner)

            return index.ascend_weak(
                weak_qualify,
                qualify_interned,
                weak_qualify_bits=weak_qualify_bits,
            )
        return index.ascend_weak(weak_qualify, qualify)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(cls & probe.range_constrained_columns for cls in key)

    def match_bits(self, node, probe, bound, interner) -> bool:
        # The order key is the union of the trivial classes' columns, so
        # the weak order-key test is implied by the full condition and
        # testing the full condition alone is exact.
        return _classes_hit_bits(node.key, probe, bound, interner)


class GroupingExpressionLevel(_Level):
    """Section 4.2.8, aggregation subtree only."""

    name = "grouping-expressions"

    def view_key(self, view: RegisteredView) -> Key:
        return _templates_key(view.description.grouping_templates())

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        if bound is not None:
            return index.supersets_of(
                probe.grouping_templates,
                probe_bits=bound.grouping_mask,
                probe_complete=bound.grouping_complete,
            )
        return index.supersets_of(probe.grouping_templates)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return key >= probe.grouping_templates

    def match_bits(self, node, probe, bound, interner) -> bool:
        mask = bound.grouping_mask
        return bound.grouping_complete and node.order_bits & mask == mask


class GroupingColumnLevel(_Level):
    """Section 4.2.4, aggregation subtree only."""

    name = "grouping-columns"

    def view_key(self, view: RegisteredView) -> Key:
        description = view.description
        return _columns_key(
            description.extended_grouping_columns()
        ) | _templates_key(description.grouping_templates())

    def search(
        self,
        index: LatticeIndex,
        probe: QueryProbe,
        bound: _BoundProbe | None = None,
    ) -> list:
        requirements = probe.grouping_requirements

        def qualify(key: Key) -> bool:
            return all(req.satisfied(key) for req in requirements)

        if bound is not None:
            pairs = bound.grouping_requirements
            return index.descend_monotone(
                qualify,
                qualify_bits=lambda key_bits: _requirements_satisfied_bits(
                    pairs, key_bits
                ),
            )
        return index.descend_monotone(qualify)

    def qualifies(self, key: Key, probe: QueryProbe) -> bool:
        return all(req.satisfied(key) for req in probe.grouping_requirements)

    def match_bits(self, node, probe, bound, interner) -> bool:
        return _requirements_satisfied_bits(
            bound.grouping_requirements, node.bits
        )


# Levels are stateless; the default compositions and the packed flat
# layout below share these singletons so every path keys views identically.
_HUB_LEVEL = HubLevel()
_SOURCE_TABLE_LEVEL = SourceTableLevel()
_OUTPUT_EXPRESSION_LEVEL = OutputExpressionLevel()
_OUTPUT_COLUMN_LEVEL = OutputColumnLevel()
_RESIDUAL_LEVEL = ResidualLevel()
_RANGE_LEVEL = RangeConstraintLevel()
_GROUPING_EXPRESSION_LEVEL = GroupingExpressionLevel()
_GROUPING_COLUMN_LEVEL = GroupingColumnLevel()

SPJ_LEVELS: tuple[_Level, ...] = (
    _HUB_LEVEL,
    _SOURCE_TABLE_LEVEL,
    _OUTPUT_COLUMN_LEVEL,
    _RESIDUAL_LEVEL,
    _RANGE_LEVEL,
)

AGGREGATE_LEVELS: tuple[_Level, ...] = (
    _HUB_LEVEL,
    _SOURCE_TABLE_LEVEL,
    _OUTPUT_EXPRESSION_LEVEL,
    _OUTPUT_COLUMN_LEVEL,
    _RESIDUAL_LEVEL,
    _RANGE_LEVEL,
    _GROUPING_EXPRESSION_LEVEL,
    _GROUPING_COLUMN_LEVEL,
)


# ---------------------------------------------------------------------------
# The packed flat layout
# ---------------------------------------------------------------------------

# Serial numbers for _PackedSubtree instances: compiled query vectors are
# cached on the bound probe keyed by serial, and serials are never reused,
# so a probe outliving an epoch's subtrees can never hit a stale entry.
_subtree_serials = count()


class _PackedSubtree:
    """One subtree's level conditions, fused into a single columnar sweep.

    The decomposition: a view survives the tree search iff it satisfies
    every level's condition (each level is a pure filter, so the recursive
    partition search equals the flat conjunction). The mask-only levels --
    hub (subset), source tables (superset), residual templates (subset),
    range-constraint classes, and on the aggregate subtree output and
    grouping expressions (superset) -- compile into one
    :class:`PackedBitsetTable` row per view over *locally* allocated atom
    bits, so one ``(row ^ flip) & query == 0`` sweep answers all of them
    for the whole catalog at once. Atoms are schema-bounded (tables,
    templates, distinct constraint classes), so rows stay one or two
    words wide however many views are registered.

    Sense encoding: subset-level atoms contribute ``universe & ~probe``
    to the query (a row fails if it carries an atom the probe lacks);
    superset-level atoms are allocated flip=True and contribute the
    probe's atoms (a row fails if it lacks one). A superset-level probe
    atom absent from the local dictionary means no view here carries it,
    so the subtree returns empty -- exactly the lattice's completeness
    short-circuit. The range level reduces to subset form per query: each
    distinct constraint class (itself one atom) gets a pass/fail verdict
    via the same interned-mask test as :func:`_classes_hit_bits`, and a
    view passes iff its class atoms avoid every failing class.

    The two per-item requirement levels (output columns, grouping
    columns) do not fuse into fixed-width masks; they are evaluated only
    on sweep survivors via :func:`_requirements_satisfied_bits` against
    per-view interned key masks kept in parallel arrays -- survivors are
    a tiny fraction of the catalog, so this stage stays off the
    per-view-python-loop hot path.
    """

    __slots__ = (
        "interner",
        "aggregate",
        "table",
        "_serial",
        "_views",
        "_row_of",
        "_output_bits",
        "_grouping_bits",
        "_hub_atoms",
        "_hub_universe",
        "_tables_atoms",
        "_residual_atoms",
        "_residual_universe",
        "_range_atoms",
        "_range_universe",
        "_outexpr_atoms",
        "_groupexpr_atoms",
    )

    def __init__(self, interner: KeyInterner, aggregate: bool) -> None:
        self.interner = interner
        self.aggregate = aggregate
        self.table = PackedBitsetTable()
        self._serial = next(_subtree_serials)
        self._views: list[RegisteredView] = []
        self._row_of: dict[str, int] = {}
        # Interned (global) masks of the requirement-level keys, parallel
        # to the table's rows; consumed per-survivor only.
        self._output_bits: list[int] = []
        self._grouping_bits: list[int] = []
        # Per-level local atom dictionaries: element -> single-bit mask in
        # the fused table. Universes (OR of every allocated bit of a
        # subset-sense level) drive the "no atom outside the probe" query
        # construction; stale bits left by removals are harmless (no
        # remaining row carries them).
        self._hub_atoms: dict = {}
        self._hub_universe = 0
        self._tables_atoms: dict = {}
        self._residual_atoms: dict = {}
        self._residual_universe = 0
        self._range_atoms: dict = {}
        self._range_universe = 0
        self._outexpr_atoms: dict = {}
        self._groupexpr_atoms: dict = {}

    def __len__(self) -> int:
        return len(self._views)

    # -- maintenance (registration side) --------------------------------------

    def _union(self, atoms: dict, elements: Iterable, flip: bool) -> int:
        mask = 0
        table = self.table
        for element in elements:
            bit = atoms.get(element)
            if bit is None:
                bit = table.alloc_bit(flip)
                atoms[element] = bit
            mask |= bit
        return mask

    def add(self, view: RegisteredView) -> None:
        interner = self.interner
        mask = self._union(
            self._hub_atoms, _HUB_LEVEL.view_key(view), False
        )
        self._hub_universe |= mask
        row_mask = mask
        row_mask |= self._union(
            self._tables_atoms, _SOURCE_TABLE_LEVEL.view_key(view), True
        )
        mask = self._union(
            self._residual_atoms, _RESIDUAL_LEVEL.view_key(view), False
        )
        self._residual_universe |= mask
        row_mask |= mask
        mask = self._union(
            self._range_atoms, _RANGE_LEVEL.view_key(view), False
        )
        self._range_universe |= mask
        row_mask |= mask
        if self.aggregate:
            row_mask |= self._union(
                self._outexpr_atoms,
                _OUTPUT_EXPRESSION_LEVEL.view_key(view),
                True,
            )
            row_mask |= self._union(
                self._groupexpr_atoms,
                _GROUPING_EXPRESSION_LEVEL.view_key(view),
                True,
            )
            self._grouping_bits.append(
                interner.mask(_GROUPING_COLUMN_LEVEL.view_key(view))
            )
        self._output_bits.append(
            interner.mask(_OUTPUT_COLUMN_LEVEL.view_key(view))
        )
        row = self.table.append(row_mask)
        self._views.append(view)
        self._row_of[view.name] = row

    def remove(self, view: RegisteredView) -> None:
        row = self._row_of.pop(view.name)
        self.table.pop(row)
        views = self._views
        last = len(views) - 1
        if row != last:
            moved = views[last]
            views[row] = moved
            self._output_bits[row] = self._output_bits[last]
            if self.aggregate:
                self._grouping_bits[row] = self._grouping_bits[last]
            self._row_of[moved.name] = row
        views.pop()
        self._output_bits.pop()
        if self.aggregate:
            self._grouping_bits.pop()

    # -- searching (query side, read-only) -------------------------------------

    @staticmethod
    def _subset_mask(atoms: dict, elements: Iterable) -> int:
        """Local bits of the probe atoms this subtree knows (rest dropped:
        an unknown atom appears in no stored row, so it cannot forbid)."""
        mask = 0
        for element in elements:
            bit = atoms.get(element)
            if bit is not None:
                mask |= bit
        return mask

    @staticmethod
    def _superset_mask(atoms: dict, elements: Iterable) -> int | None:
        """Local bits of the probe atoms, or ``None`` when one is unknown
        here -- no view in this subtree can then cover the probe."""
        mask = 0
        for element in elements:
            bit = atoms.get(element)
            if bit is None:
                return None
            mask |= bit
        return mask

    def _compile(self, probe: QueryProbe, bound: _BoundProbe):
        """The fused query vector for one probe, or ``None`` for a
        provably-empty result (superset-level early out)."""
        required = self._superset_mask(self._tables_atoms, probe.tables)
        if required is None:
            return None
        query = required
        if self.aggregate:
            required = self._superset_mask(
                self._outexpr_atoms, probe.aggregate_templates
            )
            if required is None:
                return None
            query |= required
            required = self._superset_mask(
                self._groupexpr_atoms, probe.grouping_templates
            )
            if required is None:
                return None
            query |= required
        query |= self._hub_universe & ~self._subset_mask(
            self._hub_atoms, probe.tables
        )
        query |= self._residual_universe & ~self._subset_mask(
            self._residual_atoms, probe.residual_templates
        )
        # Range-constraint level: verdict per distinct class, then subset
        # against the passing classes (mirrors _classes_hit_bits).
        ok = 0
        interner = self.interner
        range_mask = bound.range_mask
        class_masks = bound.class_masks
        constrained = None
        for cls, bit in self._range_atoms.items():
            entry = class_masks.get(cls)
            if entry is None:
                entry = interner.known_mask(cls)
                class_masks[cls] = entry
            mask, complete = entry
            if mask & range_mask:
                ok |= bit
                continue
            if complete:
                continue
            if constrained is None:
                constrained = probe.range_constrained_columns
            if cls & constrained:
                ok |= bit
        query |= self._range_universe & ~ok
        return self.table.prepare(query)

    def collect(
        self,
        probe: QueryProbe,
        bound: _BoundProbe,
        out: "list[RegisteredView]",
    ) -> None:
        """Append every view passing all of this subtree's levels."""
        views = self._views
        if not views:
            return
        generation = self.table.generation
        cache = bound.packed_cache
        entry = cache.get(self._serial)
        if entry is None or entry[0] != generation:
            entry = (generation, self._compile(probe, bound))
            cache[self._serial] = entry
        prepared = entry[1]
        if prepared is None:
            return
        output_requirements = bound.output_requirements
        grouping_requirements = (
            bound.grouping_requirements if self.aggregate else ()
        )
        output_bits = self._output_bits
        grouping_bits = self._grouping_bits
        for row in self.table.sweep(prepared):
            if not _requirements_satisfied_bits(
                output_requirements, output_bits[row]
            ):
                continue
            if grouping_requirements and not _requirements_satisfied_bits(
                grouping_requirements, grouping_bits[row]
            ):
                continue
            out.append(views[row])

    # -- copy-on-write snapshots -----------------------------------------------

    def snapshot(self) -> "_PackedSubtree":
        """A subtree sharing this one's packed rows copy-on-write.

        The table snapshot shares the backing byte image; the parallel
        arrays and atom dictionaries are flat pointer copies (O(views)),
        far below the cost of re-keying and re-interning every view.
        """
        clone = _PackedSubtree.__new__(_PackedSubtree)
        clone.interner = self.interner
        clone.aggregate = self.aggregate
        clone.table = self.table.snapshot()
        clone._serial = next(_subtree_serials)
        clone._views = list(self._views)
        clone._row_of = dict(self._row_of)
        clone._output_bits = list(self._output_bits)
        clone._grouping_bits = list(self._grouping_bits)
        clone._hub_atoms = dict(self._hub_atoms)
        clone._hub_universe = self._hub_universe
        clone._tables_atoms = dict(self._tables_atoms)
        clone._residual_atoms = dict(self._residual_atoms)
        clone._residual_universe = self._residual_universe
        clone._range_atoms = dict(self._range_atoms)
        clone._range_universe = self._range_universe
        clone._outexpr_atoms = dict(self._outexpr_atoms)
        clone._groupexpr_atoms = dict(self._groupexpr_atoms)
        return clone


# ---------------------------------------------------------------------------
# The tree
# ---------------------------------------------------------------------------


@dataclass
class _TreeNode:
    """An internal node: one lattice index whose payloads are child nodes."""

    levels: tuple[_Level, ...]
    depth: int
    interner: KeyInterner | None = None
    index: LatticeIndex = field(init=False)
    views: list[RegisteredView] = field(default_factory=list)  # leaves only

    def __post_init__(self) -> None:
        # Plain attribute, not a property: the recursive search tests it
        # once per visited node and the tree shape never changes.
        self.is_leaf = self.depth >= len(self.levels)
        if not self.is_leaf:
            level = self.levels[self.depth]
            self.index = LatticeIndex(
                projection=level.projection, interner=self.interner
            )

    def add(self, view: RegisteredView) -> None:
        if self.is_leaf:
            self.views.append(view)
            return
        level = self.levels[self.depth]
        key = level.view_key(view)
        node = self.index.node(key)
        if node is None or not node.payloads:
            child = _TreeNode(self.levels, self.depth + 1, self.interner)
            self.index.insert(key, child)
        else:
            child = node.payloads[0]
        child.add(view)

    def remove(self, view: RegisteredView) -> None:
        if self.is_leaf:
            self.views.remove(view)
            return
        level = self.levels[self.depth]
        key = level.view_key(view)
        node = self.index.node(key)
        if node is None or not node.payloads:
            raise KeyError(f"view {view.name} not present at level {level.name}")
        child: _TreeNode = node.payloads[0]
        child.remove(view)
        if child.is_empty():
            self.index.remove_payload(key, child)

    def is_empty(self) -> bool:
        if self.is_leaf:
            return not self.views
        return len(self.index) == 0

    def search(
        self,
        probe: QueryProbe,
        bound: "_BoundProbe | None",
        out: list[RegisteredView],
    ) -> None:
        """Collect every registered view under this node that passes all
        remaining levels.

        Iterative depth-first walk: Python call frames per visited tree
        node are a measurable share of filter cost. Interned singleton
        indexes -- the overwhelming majority once the tree fans out -- are
        tested with one direct ``match_bits`` call instead of a full
        lattice search.
        """
        interner = self.interner
        stack = [self]
        while stack:
            tree_node = stack.pop()
            if tree_node.is_leaf:
                out.extend(tree_node.views)
                continue
            level = tree_node.levels[tree_node.depth]
            index = tree_node.index
            if bound is not None:
                node = index.sole
                if node is not None:
                    if level.match_bits(node, probe, bound, interner):
                        stack.extend(node.payloads)
                    continue
            # Reversed push keeps the depth-first visit order of the
            # recursive formulation (first search result explored first).
            for node in reversed(level.search(index, probe, bound)):
                stack.extend(node.payloads)


class FilterTree:
    """The complete index over registered view descriptions.

    ``candidates`` returns a superset of the views the matching algorithm
    would accept for the query (never a false negative under the default
    options; see the module docstring for the one documented refinement).
    """

    def __init__(
        self,
        options: MatchOptions = DEFAULT_OPTIONS,
        spj_levels: tuple[_Level, ...] | None = None,
        aggregate_levels: tuple[_Level, ...] | None = None,
        interner: KeyInterner | None = None,
        use_interning: bool = True,
        use_packed: bool = True,
        preverify_schema: PreVerifierSchema | None = None,
        use_preverifier: bool = True,
    ):
        """Build an empty tree.

        ``spj_levels`` / ``aggregate_levels`` override the default level
        composition -- the paper notes the conditions "are independent and
        can be composed in any order", and the level-ordering ablation
        benchmark exercises exactly this hook. Every ordering yields the
        same candidate sets; only search cost differs.

        ``interner`` shares an existing :class:`KeyInterner` (the serving
        layer passes one across epoch rebuilds so bit assignments are
        stable); by default each tree creates its own. ``use_interning=
        False`` drops to plain frozenset keys everywhere -- the reference
        configuration of the hot-path benchmark and property tests.

        ``use_packed`` selects the columnar flat layout: with the default
        level composition and an interner, candidate searches sweep two
        :class:`_PackedSubtree` tables instead of walking the recursive
        tree, and the Hasse-diagram tree is only materialized on demand
        (diagnostics, custom traversals). ``use_packed=False`` keeps the
        recursive tree as the primary index -- the property tests pin the
        two paths to identical candidate lists.

        ``preverify_schema`` shares an existing
        :class:`~repro.core.preverify.PreVerifierSchema` across trees (the
        serving layer passes one per snapshot manager, like the interner,
        so pre-verifier encodings stay valid across epoch rebuilds);
        ``use_preverifier=False`` drops the columnar candidate screen
        entirely (the reference configuration for equivalence tests).
        """
        self.options = options
        if interner is None and use_interning:
            interner = KeyInterner()
        self.interner = interner
        self._spj_levels = spj_levels or SPJ_LEVELS
        self._aggregate_levels = aggregate_levels or AGGREGATE_LEVELS
        # The packed layout fuses exactly the default level conditions;
        # custom compositions (the ordering-ablation hook) fall back to
        # the recursive tree, as does the non-interned reference mode.
        self._use_packed = (
            use_packed
            and interner is not None
            and spj_levels is None
            and aggregate_levels is None
        )
        if self._use_packed:
            self._spj_packed = _PackedSubtree(interner, aggregate=False)
            self._aggregate_packed = _PackedSubtree(interner, aggregate=True)
            self._spj_root_node: _TreeNode | None = None
            self._aggregate_root_node: _TreeNode | None = None
        else:
            self._spj_packed = None
            self._aggregate_packed = None
            self._spj_root_node = _TreeNode(self._spj_levels, 0, interner)
            self._aggregate_root_node = _TreeNode(
                self._aggregate_levels, 0, interner
            )
        self._preverifier = (
            CandidatePreVerifier(preverify_schema) if use_preverifier else None
        )
        self._registered: dict[str, RegisteredView] = {}
        # Registration sequence numbers: candidate lists are returned in
        # registration order (a deterministic, index-layout-independent
        # contract -- sharded trees and worker fan-outs preserve it, so
        # cost ties in the optimizer break identically however the
        # registry is partitioned).
        self._order: dict[str, int] = {}
        self._next_order = 0

    def __len__(self) -> int:
        return len(self._registered)

    # -- the recursive tree (materialized on demand in packed mode) -----------

    @property
    def _spj_root(self) -> _TreeNode:
        if self._spj_root_node is None:
            self._materialize_trees()
        return self._spj_root_node

    @property
    def _aggregate_root(self) -> _TreeNode:
        if self._aggregate_root_node is None:
            self._materialize_trees()
        return self._aggregate_root_node

    def _materialize_trees(self) -> None:
        """Build the recursive Hasse-diagram trees from the registry.

        In packed mode the flat sweep serves every search, so the trees
        exist only for diagnostics and explicit traversals; they are
        replayed here on first access (registration order, for
        deterministic lattice links) and kept in sync by the mutators
        afterwards. Copy-on-write clones reset them to lazy again.
        """
        spj = _TreeNode(self._spj_levels, 0, self.interner)
        aggregate = _TreeNode(self._aggregate_levels, 0, self.interner)
        order = self._order
        for name in sorted(self._registered, key=order.__getitem__):
            view = self._registered[name]
            if view.description.is_aggregate:
                aggregate.add(view)
            else:
                spj.add(view)
        self._spj_root_node = spj
        self._aggregate_root_node = aggregate

    def register(self, description: SpjgDescription) -> RegisteredView:
        """Index a view description into the tree.

        Computes the hub and the view's :class:`ViewMatchContext` here,
        once -- re-registering a name after :meth:`unregister` therefore
        always yields a fresh context for the new description.
        """
        if description.name is None:
            raise ValueError("only named views can be registered")
        view = RegisteredView(
            description=description,
            hub=compute_hub(description, self.options),
            match_context=ViewMatchContext.of(description, self.options),
        )
        self.register_prebuilt(view)
        return view

    def register_prebuilt(self, view: RegisteredView) -> RegisteredView:
        """Index an already-described view, reusing its description and hub.

        Snapshot rebuilds (``repro.service``) re-index hundreds of views on
        every catalog change; describing a view and computing its hub is
        the expensive part of registration, so the serving layer keeps the
        :class:`RegisteredView` objects and replays them into fresh trees
        through this entry point.
        """
        name = view.description.name
        if name is None:
            raise ValueError("only named views can be registered")
        if name in self._registered:
            raise ValueError(f"view {name} already registered")
        aggregate = view.description.is_aggregate
        if self._use_packed:
            (self._aggregate_packed if aggregate else self._spj_packed).add(
                view
            )
            root = (
                self._aggregate_root_node if aggregate else self._spj_root_node
            )
            if root is not None:  # keep a materialized tree in sync
                root.add(view)
        else:
            (self._aggregate_root_node if aggregate else self._spj_root_node).add(
                view
            )
        if self._preverifier is not None:
            self._preverifier.add(name, view.description, view.match_context)
        self._registered[name] = view
        self._order[name] = self._next_order
        self._next_order += 1
        return view

    def unregister(self, name: str) -> None:
        """Remove a view and its keys from every level."""
        view = self._registered.pop(name, None)
        if view is None:
            raise KeyError(f"view {name} not registered")
        del self._order[name]
        aggregate = view.description.is_aggregate
        if self._use_packed:
            (self._aggregate_packed if aggregate else self._spj_packed).remove(
                view
            )
            root = (
                self._aggregate_root_node if aggregate else self._spj_root_node
            )
            if root is not None:
                root.remove(view)
        else:
            (
                self._aggregate_root_node if aggregate else self._spj_root_node
            ).remove(view)
        if self._preverifier is not None:
            self._preverifier.remove(name)

    def views(self) -> tuple[RegisteredView, ...]:
        """All registered views, in registration order."""
        return tuple(self._registered.values())

    def view(self, name: str) -> RegisteredView | None:
        """The registered view under ``name`` (None when absent)."""
        return self._registered.get(name)

    def collect_candidates(
        self,
        probe: QueryProbe,
        bound: _BoundProbe | None,
        out: list[RegisteredView],
        include_aggregate: bool,
    ) -> None:
        """Append this tree's candidates (unsorted) for a bound probe.

        The single entry point behind :meth:`candidates` and the sharded
        tree's per-shard fan-out: packed mode sweeps the flat subtree
        tables, every other configuration walks the recursive tree.
        """
        if self._use_packed and bound is not None:
            self._spj_packed.collect(probe, bound, out)
            if include_aggregate:
                self._aggregate_packed.collect(probe, bound, out)
            return
        self._spj_root.search(probe, bound, out)
        if include_aggregate:
            self._aggregate_root.search(probe, bound, out)

    def candidates(self, query: SpjgDescription) -> list[RegisteredView]:
        """Views passing all filter conditions, in registration order."""
        probe = QueryProbe.cached_of(query, self.options)
        # Bind the probe to the tree's interner once; every lattice index
        # in both subtrees shares it.
        bound = probe.bind(self.interner) if self.interner is not None else None
        found: list[RegisteredView] = []
        self.collect_candidates(probe, bound, found, query.is_aggregate)
        order = self._order
        found.sort(key=lambda view: order[view.description.name])
        tracer = current_tracer()
        if tracer.active:
            tracer.on_filter_tree(self, query, found)
        return found

    def clone_cow(self) -> "FilterTree":
        """An epoch clone sharing the packed arrays copy-on-write.

        The serving layer's snapshot rebuild uses this to derive a dirty
        shard's next epoch from the previous one: the clone shares the
        packed byte images (copied only if a side mutates rows) and copies
        the registry dictionaries flat, then the caller applies the
        registration delta. The recursive trees are reset to lazy -- an
        unregister on the clone must not splice nodes out of lattice
        structures the published previous epoch still serves.
        """
        if not self._use_packed:
            raise ValueError("clone_cow requires the packed layout")
        clone = FilterTree.__new__(FilterTree)
        clone.options = self.options
        clone.interner = self.interner
        clone._spj_levels = self._spj_levels
        clone._aggregate_levels = self._aggregate_levels
        clone._use_packed = True
        clone._spj_packed = self._spj_packed.snapshot()
        clone._aggregate_packed = self._aggregate_packed.snapshot()
        clone._spj_root_node = None
        clone._aggregate_root_node = None
        clone._preverifier = (
            self._preverifier.snapshot()
            if self._preverifier is not None
            else None
        )
        clone._registered = dict(self._registered)
        clone._order = dict(self._order)
        clone._next_order = self._next_order
        return clone

    def preverify_screen(self, query: SpjgDescription, candidates) -> list | None:
        """Columnar pre-verification verdicts for filter-tree survivors.

        ``candidates`` are :class:`RegisteredView` objects this tree
        returned from :meth:`candidates`. The result is position-aligned:
        ``None`` means "proceed to the full match", anything else is a
        rejecting :class:`~repro.core.matching.MatchResult` whose reason
        and detail are exactly what ``match_view`` would produce. Returns
        ``None`` when the tree was built without a pre-verifier.
        """
        if self._preverifier is None:
            return None
        return self._preverifier.screen(query, candidates)

    def packed_tables(self) -> tuple:
        """The packed row tables backing this tree (empty unless packed).

        The serving pool exports each table's byte image into shared
        memory before forking workers; see
        :func:`repro.service.shm.export_snapshot`. Includes the
        pre-verifier's equijoin and range tables so forked workers screen
        candidates from the same physical copy.
        """
        if not self._use_packed:
            return ()
        tables: tuple = (self._spj_packed.table, self._aggregate_packed.table)
        if self._preverifier is not None:
            tables += self._preverifier.packed_tables()
        return tables

    def lattice_node_count(self) -> int:
        """Total lattice nodes across every index of both subtrees.

        A diagnostic for register/unregister churn tests: dropping views
        must splice their nodes out of every level, so the count returns
        to its prior value after a register/unregister round trip.
        """

        def count(tree_node: _TreeNode) -> int:
            if tree_node.is_leaf:
                return 0
            total = len(tree_node.index)
            for lattice_node in tree_node.index.nodes():
                for child in lattice_node.payloads:
                    total += count(child)
            return total

        return count(self._spj_root) + count(self._aggregate_root)

    def level_attribution(
        self, query: SpjgDescription
    ) -> list[tuple[str, int, int, tuple[str, ...]]]:
        """Per-level narrowing attribution for one query (diagnostics).

        Evaluates each level's condition directly on every registered
        view's key, in tree order, and reports for every level the
        ``(name, entering, survivors, pruned_view_names)`` tuple -- which
        views each level eliminated, not just how many survived. This is
        the data behind :meth:`filter_statistics`, the rewrite-path
        tracer's filter funnel, and the experiment harness's per-level
        narrowing report. The final survivor count equals
        ``len(candidates(query))``.
        """
        probe = QueryProbe.cached_of(query, self.options)
        spj_views = [
            v for v in self._registered.values() if not v.description.is_aggregate
        ]
        aggregate_views = (
            [v for v in self._registered.values() if v.description.is_aggregate]
            if query.is_aggregate
            else []
        )
        attribution: list[tuple[str, int, int, tuple[str, ...]]] = []
        max_depth = max(
            len(self._spj_levels), len(self._aggregate_levels)
        )
        for depth in range(max_depth):
            entering = len(spj_views) + len(aggregate_views)
            pruned: list[str] = []
            for views, levels in (
                (spj_views, self._spj_levels),
                (aggregate_views, self._aggregate_levels),
            ):
                if depth >= len(levels):
                    continue
                level = levels[depth]
                kept = []
                for view in views:
                    if level.qualifies(level.view_key(view), probe):
                        kept.append(view)
                    else:
                        pruned.append(view.name)
                views[:] = kept
            names = set()
            for levels in (self._spj_levels, self._aggregate_levels):
                if depth < len(levels):
                    names.add(levels[depth].name)
            attribution.append(
                (
                    "+".join(sorted(names)),
                    entering,
                    len(spj_views) + len(aggregate_views),
                    tuple(sorted(pruned)),
                )
            )
        return attribution

    def filter_statistics(self, query: SpjgDescription) -> list[tuple[str, int]]:
        """Per-level survivor counts for one query (diagnostics).

        The counts-only view of :meth:`level_attribution` -- the
        attribution behind Section 5's "the filter tree consistently
        reduced the candidate set to less than 0.4%". The final count
        equals ``len(candidates(query))``.
        """
        attribution = self.level_attribution(query)
        registered = attribution[0][1] if attribution else len(self._registered)
        statistics: list[tuple[str, int]] = [("registered", registered)]
        statistics.extend(
            (name, survivors) for name, _, survivors, _ in attribution
        )
        return statistics
