"""The foreign-key join graph: cardinality-preserving join elimination.

Section 3.2 of the paper: a view may reference tables the query does not,
provided the extra tables are joined in through *cardinality-preserving*
joins -- equijoins between all columns of a non-null foreign key and a
unique key of the referenced table. The graph has an edge ``Ti -> Tj`` for
every such join implied (directly or transitively, via equivalence classes)
by the view's predicate, and elimination repeatedly deletes nodes with no
outgoing edges and exactly one incoming edge.

The same machinery, run to a fixpoint over *all* tables, yields the view's
**hub** (Section 4.2.2), the smallest table set the view can be reduced to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .equivalence import ColumnKey, EquivalenceClasses
from .options import DEFAULT_OPTIONS, MatchOptions

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog
    from .describe import SpjgDescription


@dataclass(frozen=True)
class FkEdge:
    """A cardinality-preserving join: ``source`` extends itself with ``target``.

    ``column_pairs`` lists the (source column, target column) equijoins that
    realise the foreign key.
    """

    source: str
    target: str
    column_pairs: tuple[tuple[ColumnKey, ColumnKey], ...]
    nullable: bool = False  # True when allowed only via null-rejection


def build_fk_join_graph(
    tables: frozenset[str],
    eqclasses: EquivalenceClasses,
    catalog: "Catalog",
    options: MatchOptions = DEFAULT_OPTIONS,
) -> list[FkEdge]:
    """All cardinality-preserving edges among ``tables`` under ``eqclasses``.

    An edge ``child -> parent`` exists when the child table declares a
    foreign key to the parent, the parent columns form a unique key (the
    catalog guarantees this), every FK column is non-nullable (unless the
    null-rejection extension is enabled, in which case the edge is emitted
    flagged ``nullable`` for the matcher to re-verify against the query),
    and each FK column is in the same equivalence class as its parent
    column -- i.e. the view really performs the join, possibly transitively.
    """
    edges: list[FkEdge] = []
    for child in sorted(tables):
        child_table = catalog.table(child)
        for fk in child_table.foreign_keys:
            if fk.parent_table not in tables or fk.parent_table == child:
                continue
            has_nullable = any(
                child_table.is_nullable(column) for column in fk.columns
            )
            if has_nullable and not options.allow_null_rejecting_fk:
                continue
            pairs: list[tuple[ColumnKey, ColumnKey]] = []
            joined = True
            for fk_column, parent_column in zip(fk.columns, fk.parent_columns):
                child_key: ColumnKey = (child, fk_column)
                parent_key: ColumnKey = (fk.parent_table, parent_column)
                if child_key not in eqclasses or parent_key not in eqclasses:
                    joined = False
                    break
                if not eqclasses.same_class(child_key, parent_key):
                    joined = False
                    break
                pairs.append((child_key, parent_key))
            if joined:
                edges.append(
                    FkEdge(
                        source=child,
                        target=fk.parent_table,
                        column_pairs=tuple(pairs),
                        nullable=has_nullable,
                    )
                )
    return edges


@dataclass
class EliminationResult:
    """Outcome of the node-deletion loop."""

    remaining: frozenset[str]
    deleted: tuple[str, ...]
    used_edges: tuple[FkEdge, ...]

    def eliminated_all(self, targets: frozenset[str]) -> bool:
        return not (targets & self.remaining)


def eliminate_tables(
    tables: frozenset[str],
    edges: list[FkEdge],
    removable: frozenset[str],
) -> EliminationResult:
    """Run the deletion loop of Section 3.2.

    Repeatedly delete any node in ``removable`` that has no outgoing edges
    and exactly one incoming edge (logically performing that join); record
    the edge used. Stops when no node qualifies.
    """
    outgoing: dict[str, set[int]] = {t: set() for t in tables}
    incoming: dict[str, set[int]] = {t: set() for t in tables}
    for i, edge in enumerate(edges):
        outgoing[edge.source].add(i)
        incoming[edge.target].add(i)

    alive = set(tables)
    deleted: list[str] = []
    used: list[FkEdge] = []
    changed = True
    while changed:
        changed = False
        # Deterministic order keeps results reproducible across runs.
        for node in sorted(alive):
            if node not in removable:
                continue
            if outgoing[node]:
                continue
            if len(incoming[node]) != 1:
                continue
            (edge_index,) = incoming[node]
            edge = edges[edge_index]
            used.append(edge)
            deleted.append(node)
            alive.remove(node)
            outgoing[edge.source].discard(edge_index)
            # Remove every edge incident to the deleted node.
            for i, other in enumerate(edges):
                if other.target == node:
                    outgoing[other.source].discard(i)
                if other.source == node:
                    incoming[other.target].discard(i)
            incoming[node].clear()
            changed = True
            break
    return EliminationResult(
        remaining=frozenset(alive), deleted=tuple(deleted), used_edges=tuple(used)
    )


def compute_hub(
    description: "SpjgDescription",
    options: MatchOptions = DEFAULT_OPTIONS,
) -> frozenset[str]:
    """The view's hub: what remains after eliminating everything possible.

    With the Section 4.2.2 refinement enabled, a table whose trivial-class
    column carries a range or residual predicate is pinned in the hub: such
    a predicate can only be subsumed when the query itself references the
    table (see the paper's argument), so keeping the table prunes more views
    without losing completeness.
    """
    edges = build_fk_join_graph(
        description.tables, description.eqclasses, description.catalog, options
    )
    removable = set(description.tables)
    if options.effective_hub_refinement:
        for column in description.columns_with_predicates():
            table = column[0]
            if (
                column in description.eqclasses
                and len(description.eqclasses.class_of(column)) == 1
            ):
                removable.discard(table)
    result = eliminate_tables(description.tables, edges, frozenset(removable))
    return result.remaining
