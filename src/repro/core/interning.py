"""Key-atom interning: lattice keys as integer bitmasks.

The filter tree's lattice keys are frozensets of tagged atoms -- table
names, column keys, expression templates, whole equivalence classes. The
subset/superset partial order the lattice searches walk only ever *compares*
those sets, so the atoms themselves are opaque; what matters is fast
``A ⊆ B`` tests. A :class:`KeyInterner` assigns each distinct atom one bit
position, encoding any key as a single (arbitrary-precision) integer whose
subset test is ``a & b == a`` -- one machine-word operation per 64 atoms
instead of a per-element hash probe.

Two access modes matter for the concurrent serving layer:

* **Interning** (``mask``) assigns fresh bits to unseen atoms. It runs on
  the registration path only, which the serving layer serializes under its
  writer lock.
* **Lookup** (``known_mask``) never mutates: query-side probes are encoded
  against the bits already assigned. Probe atoms the interner has never
  seen cannot occur in any registered key, so a subset search simply drops
  them while a superset search can return empty immediately. Keeping the
  read path mutation-free means unbounded query diversity cannot grow the
  interner, and lock-free readers race only against GIL-atomic dict reads.

One interner is shared by every lattice index of a filter tree, and the
serving layer's :class:`~repro.service.snapshot.SnapshotManager` shares a
single interner across all epoch rebuilds, so bit assignments (and the
integer key encodings cached on registered views) survive snapshot churn.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["KeyInterner"]


class KeyInterner:
    """Assigns each distinct hashable atom a single-bit integer mask."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: dict[Hashable, int] = {}

    def __len__(self) -> int:
        """Number of distinct atoms interned so far."""
        return len(self._bits)

    @property
    def version(self) -> int:
        """Monotone counter that advances whenever a new atom is interned.

        Bit assignments are append-only, so a mask computed under version
        ``v`` is still *correct* for the atoms it covers at any later
        version -- but ``known_mask`` completeness flags and masks for
        atoms interned after ``v`` can change. Consumers that memoize
        encodings (:meth:`QueryProbe.bind`) record the version they were
        built against and rebuild when it moves; without that check, a
        probe bound before a registration would keep reporting
        newly-interned atoms as unknown and silently miss candidates.
        """
        return len(self._bits)

    def __contains__(self, atom: Hashable) -> bool:
        return atom in self._bits

    def mask(self, atoms: Iterable[Hashable]) -> int:
        """The bitmask of ``atoms``, interning any not yet seen.

        Registration-side only: callers must serialize interning writes
        (the filter tree mutators and the serving layer's writer lock do).
        """
        bits = self._bits
        encoded = 0
        for atom in atoms:
            bit = bits.get(atom)
            if bit is None:
                bit = 1 << len(bits)
                bits[atom] = bit
            encoded |= bit
        return encoded

    def known_mask(self, atoms: Iterable[Hashable]) -> tuple[int, bool]:
        """``(mask of already-interned atoms, whether all were interned)``.

        Read-only: never assigns bits, so it is safe on the lock-free
        query path. An atom the interner has not seen belongs to no
        registered key; the boolean lets superset-style searches fail
        fast while subset-style searches may ignore it.
        """
        bits = self._bits
        encoded = 0
        complete = True
        for atom in atoms:
            bit = bits.get(atom)
            if bit is None:
                complete = False
            else:
                encoded |= bit
        return encoded, complete
