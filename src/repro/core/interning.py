"""Key-atom interning: lattice keys as integer bitmasks.

The filter tree's lattice keys are frozensets of tagged atoms -- table
names, column keys, expression templates, whole equivalence classes. The
subset/superset partial order the lattice searches walk only ever *compares*
those sets, so the atoms themselves are opaque; what matters is fast
``A ⊆ B`` tests. A :class:`KeyInterner` assigns each distinct atom one bit
position, encoding any key as a single (arbitrary-precision) integer whose
subset test is ``a & b == a`` -- one machine-word operation per 64 atoms
instead of a per-element hash probe.

Two access modes matter for the concurrent serving layer:

* **Interning** (``mask``) assigns fresh bits to unseen atoms. It runs on
  the registration path only, which the serving layer serializes under its
  writer lock.
* **Lookup** (``known_mask``) never mutates: query-side probes are encoded
  against the bits already assigned. Probe atoms the interner has never
  seen cannot occur in any registered key, so a subset search simply drops
  them while a superset search can return empty immediately. Keeping the
  read path mutation-free means unbounded query diversity cannot grow the
  interner, and lock-free readers race only against GIL-atomic dict reads.

One interner is shared by every lattice index of a filter tree, and the
serving layer's :class:`~repro.service.snapshot.SnapshotManager` shares a
single interner across all epoch rebuilds, so bit assignments (and the
integer key encodings cached on registered views) survive snapshot churn.
"""

from __future__ import annotations

import os
from typing import Hashable, Iterable

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

# ``REPRO_PACKED_BACKEND=pure`` forces the pure-python sweep kernels even
# when numpy is importable -- the cross-backend equivalence tests and the
# no-numpy CI leg rely on it. Any other value keeps the automatic choice.
if os.environ.get("REPRO_PACKED_BACKEND", "").strip().lower() == "pure":
    _ACTIVE_NUMPY = None
else:
    _ACTIVE_NUMPY = _numpy

#: Name of the sweep backend compiled into new :class:`PackedBitsetTable`
#: instances -- recorded in benchmark reports so numbers are comparable.
PACKED_BACKEND = "packed-numpy" if _ACTIVE_NUMPY is not None else "packed-pure"

__all__ = ["KeyInterner", "PackedBitsetTable", "PACKED_BACKEND", "packed_backend_name"]


def packed_backend_name() -> str:
    """The active sweep backend (``packed-numpy`` or ``packed-pure``)."""
    return PACKED_BACKEND


class KeyInterner:
    """Assigns each distinct hashable atom a single-bit integer mask."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: dict[Hashable, int] = {}

    def __len__(self) -> int:
        """Number of distinct atoms interned so far."""
        return len(self._bits)

    @property
    def version(self) -> int:
        """Monotone counter that advances whenever a new atom is interned.

        Bit assignments are append-only, so a mask computed under version
        ``v`` is still *correct* for the atoms it covers at any later
        version -- but ``known_mask`` completeness flags and masks for
        atoms interned after ``v`` can change. Consumers that memoize
        encodings (:meth:`QueryProbe.bind`) record the version they were
        built against and rebuild when it moves; without that check, a
        probe bound before a registration would keep reporting
        newly-interned atoms as unknown and silently miss candidates.
        """
        return len(self._bits)

    def __contains__(self, atom: Hashable) -> bool:
        return atom in self._bits

    def mask(self, atoms: Iterable[Hashable]) -> int:
        """The bitmask of ``atoms``, interning any not yet seen.

        Registration-side only: callers must serialize interning writes
        (the filter tree mutators and the serving layer's writer lock do).
        """
        bits = self._bits
        encoded = 0
        for atom in atoms:
            bit = bits.get(atom)
            if bit is None:
                bit = 1 << len(bits)
                bits[atom] = bit
            encoded |= bit
        return encoded

    def known_mask(self, atoms: Iterable[Hashable]) -> tuple[int, bool]:
        """``(mask of already-interned atoms, whether all were interned)``.

        Read-only: never assigns bits, so it is safe on the lock-free
        query path. An atom the interner has not seen belongs to no
        registered key; the boolean lets superset-style searches fail
        fast while subset-style searches may ignore it.
        """
        bits = self._bits
        encoded = 0
        complete = True
        for atom in atoms:
            bit = bits.get(atom)
            if bit is None:
                complete = False
            else:
                encoded |= bit
        return encoded, complete


class PackedBitsetTable:
    """Fixed-width bitmask rows stored contiguously, swept in bulk.

    One table holds the per-view masks of one filter-tree level (or the
    fused masks of several mask-only levels): row ``i`` is an integer whose
    bits are locally-allocated atom positions (:meth:`alloc_bit`). The
    query side asks one question -- *which rows satisfy*
    ``(row ^ flip) & query == 0`` -- which expresses subset tests
    (``query`` = complement of the probe over the level's allocated bits)
    and superset tests (``flip`` over the level's bits turns "probe atom
    missing from row" into a hit) in the same kernel, so one sweep answers
    an entire level for every registered view.

    Two backends produce **identical results from identical bytes**: the
    canonical packed representation is a little-endian byte string of
    ``words`` 64-bit words per row (the top bit of the last word is a
    guard, always zero in stored rows).

    * ``packed-numpy``: the bytes are wrapped zero-copy in a read-only
      ``(rows, words)`` uint64 matrix; one vectorized compare per sweep.
    * ``packed-pure``: the bytes become one arbitrary-precision integer
      (``int.from_bytes``); a sweep is five full-width integer operations
      -- XOR flip, AND probe, a guard-carry add that sets each row's guard
      bit iff the row failed, and the guard extraction -- all C loops
      inside CPython, so the python-level work is O(survivors), not
      O(rows).

    Mutations (``append`` / ``pop`` / ``alloc_bit``) only touch the
    canonical per-row mask list and mark the packed form dirty; it is
    rebuilt lazily before the next sweep. :meth:`snapshot` shares both the
    mask list and the packed buffers copy-on-write, which is what lets
    epoch rebuilds slice clean shards out of the previous snapshot without
    copying a byte.
    """

    __slots__ = (
        "_use_numpy",
        "_rows",
        "_bit_count",
        "_words",
        "_flip_mask",
        "_shared_rows",
        "_dirty",
        "_data",
        "_matrix",
        "_blob",
        "_flip_rep",
        "_ones_rep",
        "_guard_rep",
        "_total_mask",
        "generation",
        "__weakref__",
    )

    def __init__(self, backend: str | None = None) -> None:
        """``backend`` forces ``"numpy"`` or ``"pure"`` (tests); ``None``
        selects the module default (:data:`PACKED_BACKEND`)."""
        if backend is None:
            self._use_numpy = _ACTIVE_NUMPY is not None
        elif backend == "numpy":
            if _numpy is None:
                raise RuntimeError("numpy backend requested but numpy is absent")
            self._use_numpy = True
        elif backend == "pure":
            self._use_numpy = False
        else:
            raise ValueError(f"unknown packed backend {backend!r}")
        self._rows: list[int] = []
        self._bit_count = 0
        self._words = 1
        self._flip_mask = 0
        self._shared_rows = False
        self._dirty = True
        self._data = b""
        self._matrix = None
        self._blob = 0
        self._flip_rep = 0
        self._ones_rep = 0
        self._guard_rep = 0
        self._total_mask = 0
        #: Monotone mutation counter; query-side caches (compiled probe
        #: vectors, localized requirement masks) key on it.
        self.generation = 0

    # -- shape ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def backend(self) -> str:
        return "packed-numpy" if self._use_numpy else "packed-pure"

    @property
    def words(self) -> int:
        """64-bit words per row in the packed representation."""
        return self._words

    @property
    def width_bits(self) -> int:
        """Distinct bit positions allocated so far."""
        return self._bit_count

    @property
    def nbytes(self) -> int:
        """Bytes of the packed representation (current row count x width)."""
        return len(self._rows) * self._words * 8

    def row_masks(self) -> list[int]:
        """The canonical per-row masks (shared list -- do not mutate)."""
        return self._rows

    def packed_bytes(self) -> bytes:
        """The packed little-endian byte image (identical across backends)."""
        self._ensure_packed()
        data = self._data
        return data if isinstance(data, bytes) else bytes(data)

    # -- mutation (registration side; callers serialize) ----------------------

    def _own_rows(self) -> None:
        if self._shared_rows:
            self._rows = list(self._rows)
            self._shared_rows = False

    def alloc_bit(self, flip: bool = False) -> int:
        """Allocate the next bit position; returns its single-bit mask.

        ``flip=True`` marks the bit as superset-sense: stored rows keep the
        positive atom, the sweep kernel complements it. Widening past the
        current word count (one bit per word is reserved as the pure
        backend's guard) forces a repack on the next sweep.
        """
        usable = self._words * 64 - 1
        if self._bit_count >= usable:
            self._words += 1
        bit = 1 << self._bit_count
        self._bit_count += 1
        if flip:
            self._flip_mask |= bit
        self._dirty = True
        self.generation += 1
        return bit

    def append(self, mask: int) -> int:
        """Add one row; returns its row index."""
        self._own_rows()
        self._rows.append(mask)
        self._dirty = True
        self.generation += 1
        return len(self._rows) - 1

    def pop(self, row: int) -> int | None:
        """Swap-remove ``row``; returns the old index of the row moved into
        its place (``None`` when the last row was removed).

        Swap-remove is safe for the filter tree because candidate lists are
        sorted by registration order after collection -- internal row order
        carries no contract.
        """
        self._own_rows()
        rows = self._rows
        last = rows.pop()
        self._dirty = True
        self.generation += 1
        if row == len(rows):
            return None
        rows[row] = last
        return len(rows)

    # -- packing --------------------------------------------------------------

    def _ensure_packed(self) -> None:
        if not self._dirty:
            return
        words = self._words
        row_bytes = words * 8
        data = b"".join(
            mask.to_bytes(row_bytes, "little") for mask in self._rows
        )
        self._data = data
        count = len(self._rows)
        if self._use_numpy:
            self._matrix = _numpy.frombuffer(data, dtype="<u8").reshape(
                count, words
            )
        else:
            stride = row_bytes * 8
            self._blob = int.from_bytes(data, "little")
            self._total_mask = (1 << (stride * count)) - 1 if count else 0
            self._flip_rep = self._replicate(self._flip_mask, count)
            self._ones_rep = self._replicate((1 << (stride - 1)) - 1, count)
            self._guard_rep = self._replicate(1 << (stride - 1), count)
        self._dirty = False

    def _replicate(self, lane: int, count: int) -> int:
        """``lane`` copied into every row slot (log-doubling shifts)."""
        if count == 0 or lane == 0:
            return 0
        stride = self._words * 64
        value = lane
        filled = 1
        while filled < count:
            value |= value << (stride * filled)
            filled *= 2
        return value & self._total_mask

    # -- sweeping (query side, read-only) -------------------------------------

    def prepare(self, query_mask: int, flip_mask: int | None = None) -> tuple:
        """Compile ``query_mask`` for repeated sweeps against this table.

        ``flip_mask`` overrides the table's per-bit flip sense for this
        query (``None`` keeps the allocation-time default); only its
        intersection with ``query_mask`` matters to the kernel. The pure
        backend replicates the probe into every row lane (a handful of
        large shifts); callers cache the result keyed on
        :attr:`generation` so steady-state sweeps skip it.
        """
        self._ensure_packed()
        flip = (self._flip_mask if flip_mask is None else flip_mask) & query_mask
        if self._use_numpy:
            words = self._words
            if words == 1:
                return (
                    self.generation,
                    _numpy.uint64(query_mask),
                    _numpy.uint64(flip),
                )
            qvec = _numpy.empty(words, dtype=_numpy.uint64)
            fvec = _numpy.empty(words, dtype=_numpy.uint64)
            for word in range(words):
                qvec[word] = (query_mask >> (word * 64)) & 0xFFFFFFFFFFFFFFFF
                fvec[word] = (flip >> (word * 64)) & 0xFFFFFFFFFFFFFFFF
            return (self.generation, qvec, fvec)
        return (
            self.generation,
            self._replicate(query_mask, len(self._rows)),
            self._replicate(flip, len(self._rows)),
        )

    def sweep(self, prepared: tuple) -> list[int]:
        """Row indices where ``(row ^ flip) & query == 0``, ascending."""
        if not self._rows:
            return []
        self._ensure_packed()
        generation, query, flip = prepared
        if generation != self.generation:
            raise ValueError("stale prepared query (table mutated)")
        if self._use_numpy:
            matrix = self._matrix
            if self._words == 1:
                misses = (matrix.reshape(-1) ^ flip) & query
                return _numpy.nonzero(misses == 0)[0].tolist()
            misses = ((matrix ^ flip) & query).any(axis=1)
            return _numpy.nonzero(~misses)[0].tolist()
        # Pure backend: one failed row sets its guard bit via the lane-local
        # carry of ``miss + (2**(stride-1) - 1)``; surviving rows are the
        # guard bytes left at zero. All full-width operations below run in
        # C; the python loop is over survivors only.
        misses = (self._blob ^ flip) & query
        guards = (misses + self._ones_rep) & self._guard_rep
        passed = guards ^ self._guard_rep
        if not passed:
            return []
        step = self._words * 8
        image = passed.to_bytes(step * len(self._rows), "little")
        find = image.find
        out: list[int] = []
        position = find(0x80)
        while position != -1:
            out.append(position // step)
            position = find(0x80, position + 1)
        return out

    def sweep_mask(self, query_mask: int, flip_mask: int | None = None) -> list[int]:
        """One-shot :meth:`prepare` + :meth:`sweep`."""
        return self.sweep(self.prepare(query_mask, flip_mask))

    def rows_intersecting(self, rows: list[int], mask: int) -> list[bool]:
        """Per-row truth of ``row & mask != 0`` for the given row indices.

        The candidate pre-verifier's equijoin screen asks this for the
        (small) set of rows that survived the lattice walk; bits of
        ``mask`` above this table's width are ignored (no stored row can
        carry them).
        """
        if not rows:
            return []
        # Tiny batches: the numpy gather's fixed overhead exceeds a direct
        # int-and per row, and ``_rows`` holds the same canonical masks
        # under both backends.
        if not self._use_numpy or len(rows) < 24:
            table = self._rows
            return [(table[row] & mask) != 0 for row in rows]
        self._ensure_packed()
        sub = self._matrix[_ACTIVE_NUMPY.asarray(rows, dtype=_ACTIVE_NUMPY.intp)]
        words = self._words
        if words == 1:
            query = _ACTIVE_NUMPY.uint64(mask & 0xFFFFFFFFFFFFFFFF)
            return ((sub.reshape(-1) & query) != 0).tolist()
        qvec = _ACTIVE_NUMPY.empty(words, dtype=_ACTIVE_NUMPY.uint64)
        for word in range(words):
            qvec[word] = (mask >> (word * 64)) & 0xFFFFFFFFFFFFFFFF
        return ((sub & qvec).any(axis=1)).tolist()

    # -- copy-on-write snapshots ----------------------------------------------

    def snapshot(self) -> "PackedBitsetTable":
        """A table sharing this one's rows and packed buffers.

        Both tables mark the row list shared; whichever mutates first
        copies it (O(rows) pointer copy). The packed byte image is
        immutable and simply carried over, so an epoch rebuild that leaves
        a shard untouched reuses the previous epoch's backing array as-is.
        """
        clone = PackedBitsetTable.__new__(PackedBitsetTable)
        clone._use_numpy = self._use_numpy
        self._shared_rows = True
        clone._rows = self._rows
        clone._shared_rows = True
        clone._bit_count = self._bit_count
        clone._words = self._words
        clone._flip_mask = self._flip_mask
        clone._dirty = self._dirty
        clone._data = self._data
        clone._matrix = self._matrix
        clone._blob = self._blob
        clone._flip_rep = self._flip_rep
        clone._ones_rep = self._ones_rep
        clone._guard_rep = self._guard_rep
        clone._total_mask = self._total_mask
        clone.generation = self.generation
        return clone

    def shares_buffer_with(self, other: "PackedBitsetTable") -> bool:
        """Whether both tables currently serve from the same packed bytes
        (diagnostic for the copy-on-write tests)."""
        return (
            not self._dirty
            and not other._dirty
            and self._data is other._data
        )

    def adopt_buffer(self, buffer) -> None:
        """Re-point the packed image at an externally owned buffer.

        ``buffer`` (a writable or read-only buffer, normally a
        ``multiprocessing.shared_memory`` view) must already hold exactly
        this table's packed bytes; the serving tier copies
        :meth:`packed_bytes` into a shared segment, adopts it here, and
        forks -- workers then sweep the one physical copy instead of each
        holding a COW duplicate of the row image. The buffer is only read,
        never written. Any later mutation marks the table dirty and the
        next :meth:`_ensure_packed` rebuilds a private byte image,
        automatically un-sharing this table from the segment.
        """
        self._ensure_packed()
        view = memoryview(buffer).cast("B")
        if len(view) != len(self._data):
            raise ValueError(
                f"buffer holds {len(view)} bytes, table packs "
                f"{len(self._data)}"
            )
        if view != self._data:
            raise ValueError("buffer content differs from the packed image")
        self._data = view
        if self._use_numpy and self._rows:
            self._matrix = _numpy.frombuffer(view, dtype="<u8").reshape(
                len(self._rows), self._words
            )
