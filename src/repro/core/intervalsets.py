"""Interval sets: disjunctions of ranges (the paper's OR extension).

Section 3.1.2: "This range coverage algorithm can be extended to support
disjunctions (OR) of range predicates. ... Our prototype does not support
disjunctions." This module supplies that extension: an
:class:`IntervalSet` is a normalized union of disjoint intervals, and
:func:`as_or_range` recognises the predicate shapes that produce one --
``a < 5 OR a > 10 [OR a = 7]`` and ``a IN (1, 2, 3)`` -- on a single
column.

Containment is tested interval-by-interval: a query interval must lie
inside a *single* view interval. Over dense domains this is exact; over
integer domains a query interval could in principle bridge a gap whose
missing points are unrepresentable (e.g. view ``[1,2] u [3,4]`` vs query
``[1,4]``), which this test conservatively rejects -- in keeping with the
paper's speed-over-completeness trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.expressions import (
    ColumnRef,
    Expression,
    InList,
    Literal,
    Or,
)
from .equivalence import ColumnKey
from .ranges import Bound, Interval, as_range_predicate


@dataclass(frozen=True)
class IntervalSet:
    """A normalized union of disjoint, non-empty intervals.

    ``intervals == ()`` means the empty set; use :data:`UNBOUNDED_SET` for
    the full line.
    """

    intervals: tuple[Interval, ...]

    @classmethod
    def of(cls, intervals) -> "IntervalSet":
        """Normalize: drop empties, sort, merge overlapping intervals."""
        candidates = [i for i in intervals if not i.is_empty]
        candidates.sort(key=_lower_sort_key)
        merged: list[Interval] = []
        for interval in candidates:
            if merged and _overlaps_or_touches(merged[-1], interval):
                merged[-1] = _merge(merged[-1], interval)
            else:
                merged.append(interval)
        return cls(intervals=tuple(merged))

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_unbounded(self) -> bool:
        return len(self.intervals) == 1 and self.intervals[0].is_unbounded

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = [
            mine.intersect(theirs)
            for mine in self.intervals
            for theirs in other.intervals
        ]
        return IntervalSet.of(pieces)

    def contains(self, other: "IntervalSet") -> bool:
        """True when every interval of ``other`` fits in one of ours."""
        return all(
            any(mine.contains(theirs) for mine in self.intervals)
            for theirs in other.intervals
        )

    def contains_value(self, value: object) -> bool:
        return any(interval.contains_value(value) for interval in self.intervals)

    def __str__(self) -> str:
        if self.is_empty:
            return "{}"
        return " u ".join(str(i) for i in self.intervals)


UNBOUNDED_SET = IntervalSet(intervals=(Interval(),))


def _lower_sort_key(interval: Interval):
    if interval.lower is None:
        return (0, 0, 0)
    return (1, interval.lower.value, not interval.lower.inclusive)


def _overlaps_or_touches(left: Interval, right: Interval) -> bool:
    """After sorting by lower bound: does ``right`` start inside ``left``?"""
    if left.upper is None:
        return True
    if right.lower is None:
        return True
    try:
        if right.lower.value < left.upper.value:
            return True
        if right.lower.value > left.upper.value:
            return False
    except TypeError:
        return False
    # Equal boundary values: they touch when at least one side is closed.
    return left.upper.inclusive or right.lower.inclusive


def _merge(left: Interval, right: Interval) -> Interval:
    upper: Bound | None
    if left.upper is None or right.upper is None:
        upper = None
    else:
        try:
            if left.upper.value > right.upper.value:
                upper = left.upper
            elif right.upper.value > left.upper.value:
                upper = right.upper
            else:
                upper = left.upper if left.upper.inclusive else right.upper
        except TypeError:
            upper = left.upper
    return Interval(lower=left.lower, upper=upper)


@dataclass(frozen=True)
class OrRangePredicate:
    """A recognised disjunctive range conjunct on a single column."""

    column: ColumnKey
    interval_set: IntervalSet
    expression: Expression  # the original conjunct, for compensation


def as_or_range(conjunct: Expression) -> OrRangePredicate | None:
    """Recognise ``col op c OR col op c' OR ...`` and ``col IN (...)``.

    All disjuncts must be range predicates over the *same* column; IN lists
    must be non-negated with non-null literal members. Returns None for
    anything else (the conjunct then stays a residual predicate).
    """
    if isinstance(conjunct, InList):
        if conjunct.negated or not isinstance(conjunct.operand, ColumnRef):
            return None
        points = []
        for item in conjunct.items:
            if not isinstance(item, Literal) or item.value is None:
                return None
            bound = Bound(item.value, inclusive=True)
            points.append(Interval(lower=bound, upper=bound))
        return OrRangePredicate(
            column=conjunct.operand.key,
            interval_set=IntervalSet.of(points),
            expression=conjunct,
        )
    if not isinstance(conjunct, Or):
        return None
    column: ColumnKey | None = None
    intervals = []
    for disjunct in conjunct.disjuncts:
        range_predicate = as_range_predicate(disjunct)
        if range_predicate is None:
            return None
        if column is None:
            column = range_predicate.column
        elif column != range_predicate.column:
            return None
        intervals.append(range_predicate.interval())
    assert column is not None
    return OrRangePredicate(
        column=column,
        interval_set=IntervalSet.of(intervals),
        expression=conjunct,
    )
