"""The lattice index (Section 4.1 of the paper).

A lattice index stores a collection of *key sets* organised by the subset
partial order: every node carries pointers to its minimal proper supersets
and maximal proper subsets, and the index keeps arrays of *tops* (no
supersets) and *roots* (no subsets). Subset and superset searches then
avoid a linear scan by walking only the relevant region of the Hasse
diagram.

Two generalisations over the paper's description, both needed by the
filter-tree levels:

* each node carries a **payload list**, so the same index serves as a
  partition map (key -> bucket of views / child nodes);
* the partial order may be computed on a **projection** of the key (the
  range-constraint level orders nodes by the *reduced* constraint list
  while keys carry the full list -- exactly the trick of Section 4.2.5).

Keys are frozensets of arbitrary hashable elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

Key = frozenset
T = TypeVar("T")


@dataclass
class LatticeNode:
    """One stored key set with its payloads and Hasse-diagram neighbours."""

    key: Key
    order_key: Key
    payloads: list = field(default_factory=list)
    supersets: list["LatticeNode"] = field(default_factory=list)
    subsets: list["LatticeNode"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<LatticeNode {sorted(map(str, self.key))}>"


class LatticeIndex:
    """A lattice-ordered index from key sets to payload lists."""

    def __init__(self, projection: Callable[[Key], Key] | None = None):
        self._projection = projection or (lambda key: key)
        self._nodes: dict[Key, LatticeNode] = {}
        self.tops: list[LatticeNode] = []
        self.roots: list[LatticeNode] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def node(self, key: Key) -> LatticeNode | None:
        """The node stored under exactly ``key``, if any."""
        return self._nodes.get(key)

    def nodes(self) -> Iterator[LatticeNode]:
        """All nodes in the index (no particular order)."""
        yield from self._nodes.values()

    # -- maintenance ---------------------------------------------------------

    def insert(self, key: Key, payload) -> LatticeNode:
        """Add a payload under ``key``, creating and linking a node if new."""
        existing = self._nodes.get(key)
        if existing is not None:
            existing.payloads.append(payload)
            return existing
        node = LatticeNode(key=key, order_key=self._projection(key))
        node.payloads.append(payload)
        self._link(node)
        self._nodes[key] = node
        return node

    def _link(self, node: LatticeNode) -> None:
        order = node.order_key
        strict_supersets = [
            other for other in self._nodes.values() if order < other.order_key
        ]
        strict_subsets = [
            other for other in self._nodes.values() if other.order_key < order
        ]
        parents = _minimal(strict_supersets)
        children = _maximal(strict_subsets)
        # A direct parent-child edge that the new node now sits between is
        # replaced by the two edges through the new node.
        for parent in parents:
            for child in children:
                if child in parent.subsets:
                    parent.subsets.remove(child)
                    child.supersets.remove(parent)
        for parent in parents:
            parent.subsets.append(node)
            node.supersets.append(parent)
        for child in children:
            child.supersets.append(node)
            node.subsets.append(child)
        self._refresh_extremes(node, parents, children)

    def _refresh_extremes(
        self,
        node: LatticeNode,
        parents: list[LatticeNode],
        children: list[LatticeNode],
    ) -> None:
        if not parents:
            self.tops.append(node)
        if not children:
            self.roots.append(node)
        # A previously-extreme node may have gained a neighbour through the
        # new node only if it became the new node's child/parent.
        self.tops = [t for t in self.tops if not t.supersets]
        self.roots = [r for r in self.roots if not r.subsets]

    def remove_payload(self, key: Key, payload) -> None:
        """Remove one payload; the node is unlinked when its list empties."""
        node = self._nodes.get(key)
        if node is None:
            raise KeyError(f"no node for key {sorted(map(str, key))}")
        node.payloads.remove(payload)
        if node.payloads:
            return
        del self._nodes[key]
        # Splice the node out: its parents adopt its children when no other
        # path exists between them.
        for parent in node.supersets:
            parent.subsets.remove(node)
        for child in node.subsets:
            child.supersets.remove(node)
        for parent in node.supersets:
            for child in node.subsets:
                if not _reachable_downward(parent, child):
                    parent.subsets.append(child)
                    child.supersets.append(parent)
        if node in self.tops:
            self.tops.remove(node)
            self.tops.extend(
                child for child in node.subsets if not child.supersets
            )
        if node in self.roots:
            self.roots.remove(node)
            self.roots.extend(
                parent for parent in node.supersets if not parent.subsets
            )

    # -- searches ----------------------------------------------------------------

    def subsets_of(self, search_key: Key) -> list[LatticeNode]:
        """All nodes whose order key is a subset of (or equal to) the search key.

        Starts from the roots and follows superset pointers, pruning as soon
        as a node's key stops being a subset (all its supersets fail too).
        """
        found: list[LatticeNode] = []
        seen: set[int] = set()
        stack = [root for root in self.roots if root.order_key <= search_key]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            found.append(node)
            for parent in node.supersets:
                if id(parent) not in seen and parent.order_key <= search_key:
                    stack.append(parent)
        return found

    def supersets_of(self, search_key: Key) -> list[LatticeNode]:
        """All nodes whose order key is a superset of (or equal to) the search key.

        Starts from the tops and follows subset pointers, pruning when a
        node's key stops being a superset.
        """
        found: list[LatticeNode] = []
        seen: set[int] = set()
        stack = [top for top in self.tops if top.order_key >= search_key]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            found.append(node)
            for child in node.subsets:
                if id(child) not in seen and child.order_key >= search_key:
                    stack.append(child)
        return found

    def descend_monotone(self, qualify: Callable[[Key], bool]) -> list[LatticeNode]:
        """All nodes satisfying a condition that is monotone in the key.

        ``qualify`` must be upward-closed: if a key qualifies, so does every
        superset. The search starts at the tops and prunes an entire
        down-set as soon as a node fails (its subsets must fail too).
        Used for the output-column and grouping-column conditions
        (Sections 4.2.3 / 4.2.4).
        """
        found: list[LatticeNode] = []
        seen: set[int] = set()
        stack = [top for top in self.tops if qualify(top.key)]
        for top in self.tops:
            seen.add(id(top))  # tops are all inspected exactly once
        while stack:
            node = stack.pop()
            found.append(node)
            for child in node.subsets:
                if id(child) not in seen:
                    seen.add(id(child))
                    if qualify(child.key):
                        stack.append(child)
        return found

    def ascend_weak(
        self,
        weak_qualify: Callable[[Key], bool],
        qualify: Callable[[Key], bool],
    ) -> list[LatticeNode]:
        """The range-constraint search (Section 4.2.5).

        ``weak_qualify`` is applied to the *order key* and must be
        downward-closed (if a node fails, all supersets fail): it drives
        pruning while ascending from the roots. ``qualify`` is the full
        condition on the identity key; only nodes passing it are returned,
        but failing it does not prune the ascent.
        """
        found: list[LatticeNode] = []
        seen: set[int] = set()
        stack = []
        for root in self.roots:
            seen.add(id(root))
            if weak_qualify(root.order_key):
                stack.append(root)
        while stack:
            node = stack.pop()
            if qualify(node.key):
                found.append(node)
            for parent in node.supersets:
                if id(parent) not in seen:
                    seen.add(id(parent))
                    if weak_qualify(parent.order_key):
                        stack.append(parent)
        return found

    def all_payloads(self) -> Iterator:
        """Every payload in the index, in node order."""
        for node in self._nodes.values():
            yield from node.payloads


def _minimal(nodes: list[LatticeNode]) -> list[LatticeNode]:
    """Nodes with no other node's order key strictly below theirs."""
    return [
        a
        for a in nodes
        if not any(b.order_key < a.order_key for b in nodes if b is not a)
    ]


def _maximal(nodes: list[LatticeNode]) -> list[LatticeNode]:
    return [
        a
        for a in nodes
        if not any(b.order_key > a.order_key for b in nodes if b is not a)
    ]


def _reachable_downward(start: LatticeNode, target: LatticeNode) -> bool:
    """True when ``target`` is reachable from ``start`` via subset pointers."""
    stack = list(start.subsets)
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if node is target:
            return True
        if id(node) in seen:
            continue
        seen.add(id(node))
        # Only descend through nodes that could still lead to the target.
        if target.order_key < node.order_key:
            stack.extend(node.subsets)
    return False
