"""The lattice index (Section 4.1 of the paper).

A lattice index stores a collection of *key sets* organised by the subset
partial order: every node carries pointers to its minimal proper supersets
and maximal proper subsets, and the index keeps arrays of *tops* (no
supersets) and *roots* (no subsets). Subset and superset searches then
avoid a linear scan by walking only the relevant region of the Hasse
diagram.

Two generalisations over the paper's description, both needed by the
filter-tree levels:

* each node carries a **payload list**, so the same index serves as a
  partition map (key -> bucket of views / child nodes);
* the partial order may be computed on a **projection** of the key (the
  range-constraint level orders nodes by the *reduced* constraint list
  while keys carry the full list -- exactly the trick of Section 4.2.5).

Keys are frozensets of arbitrary hashable elements. When the index is
given a :class:`~repro.core.interning.KeyInterner`, every key is also
encoded as an integer bitmask at insert time, and all order comparisons --
linking, extreme maintenance, and the four searches -- become ``a & b``
integer tests with popcount-ordered minimal/maximal selection. Without an
interner the index falls back to plain frozenset comparisons; the two
modes are observably identical (property-tested), which is also what the
hot-path benchmark uses as its before/after pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from .interning import KeyInterner, PackedBitsetTable

Key = frozenset
T = TypeVar("T")

# Interned indexes at or below this size answer subset/superset searches
# with one flat pass of ``a & b`` tests over all nodes; above it, they
# sweep a packed columnar table of order-bit rows (see _packed_rows)
# instead of walking the Hasse diagram: the per-row bit test is so much
# cheaper than the traversal's pointer-chasing and visited-set
# bookkeeping that pruning never pays off, and the packed sweep moves
# the whole scan out of the python loop. Every strategy returns exactly
# the same node set (each search is a pure filter; the diagram is only a
# pruning device, still maintained for the monotone/weak walks).
_FLAT_SCAN_LIMIT = 48


@dataclass(eq=False)
class LatticeNode:
    """One stored key set with its payloads and Hasse-diagram neighbours.

    ``bits`` / ``order_bits`` are the interned bitmask encodings of
    ``key`` / ``order_key`` (0 when the index has no interner).
    Nodes compare and hash by identity (``eq=False``): the searches keep
    visited sets of nodes on their hot path, and structural equality over
    the cyclic neighbour lists would be meaningless anyway.
    """

    key: Key
    order_key: Key
    bits: int = 0
    order_bits: int = 0
    payloads: list = field(default_factory=list)
    supersets: list["LatticeNode"] = field(default_factory=list)
    subsets: list["LatticeNode"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<LatticeNode {sorted(map(str, self.key))}>"


class LatticeIndex:
    """A lattice-ordered index from key sets to payload lists."""

    def __init__(
        self,
        projection: Callable[[Key], Key] | None = None,
        interner: KeyInterner | None = None,
    ):
        self._projection = projection or (lambda key: key)
        self.interner = interner
        self._nodes: dict[Key, LatticeNode] = {}
        self.tops: list[LatticeNode] = []
        self.roots: list[LatticeNode] = []
        # The index's only node when it holds exactly one, else None.
        # Most filter-tree indexes stay singletons once the tree fans
        # out; the tree search tests this attribute to bypass the lattice
        # machinery entirely for them.
        self.sole: LatticeNode | None = None
        # Columnar order-bit rows for large interned indexes: built lazily
        # the first time a subset/superset search would otherwise walk the
        # Hasse diagram, invalidated by any mutation. One vectorized sweep
        # over contiguous rows replaces the pointer-chasing walk.
        self._packed: tuple[PackedBitsetTable, list[LatticeNode], dict[int, int], int] | None = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def node(self, key: Key) -> LatticeNode | None:
        """The node stored under exactly ``key``, if any."""
        return self._nodes.get(key)

    def nodes(self) -> Iterator[LatticeNode]:
        """All nodes in the index (no particular order)."""
        yield from self._nodes.values()

    # -- maintenance ---------------------------------------------------------

    def insert(self, key: Key, payload) -> LatticeNode:
        """Add a payload under ``key``, creating and linking a node if new."""
        existing = self._nodes.get(key)
        if existing is not None:
            existing.payloads.append(payload)
            return existing
        node = LatticeNode(key=key, order_key=self._projection(key))
        if self.interner is not None:
            node.bits = self.interner.mask(key)
            node.order_bits = self.interner.mask(node.order_key)
        node.payloads.append(payload)
        self._link(node)
        self._nodes[key] = node
        self.sole = node if len(self._nodes) == 1 else None
        self._packed = None
        return node

    def _link(self, node: LatticeNode) -> None:
        if self.interner is not None:
            order = node.order_bits
            strict_supersets = [
                other
                for other in self._nodes.values()
                if order != other.order_bits
                and order & other.order_bits == order
            ]
            strict_subsets = [
                other
                for other in self._nodes.values()
                if order != other.order_bits
                and other.order_bits & order == other.order_bits
            ]
            parents = _minimal_bits(strict_supersets)
            children = _maximal_bits(strict_subsets)
        else:
            order_key = node.order_key
            strict_supersets = [
                other
                for other in self._nodes.values()
                if order_key < other.order_key
            ]
            strict_subsets = [
                other
                for other in self._nodes.values()
                if other.order_key < order_key
            ]
            parents = _minimal(strict_supersets)
            children = _maximal(strict_subsets)
        # A direct parent-child edge that the new node now sits between is
        # replaced by the two edges through the new node.
        for parent in parents:
            for child in children:
                if child in parent.subsets:
                    parent.subsets.remove(child)
                    child.supersets.remove(parent)
        for parent in parents:
            parent.subsets.append(node)
            node.supersets.append(parent)
        for child in children:
            child.supersets.append(node)
            node.subsets.append(child)
        self._refresh_extremes(node, parents, children)

    def _refresh_extremes(
        self,
        node: LatticeNode,
        parents: list[LatticeNode],
        children: list[LatticeNode],
    ) -> None:
        if not parents:
            self.tops.append(node)
        if not children:
            self.roots.append(node)
        # A previously-extreme node may have gained a neighbour through the
        # new node only if it became the new node's child/parent.
        self.tops = [t for t in self.tops if not t.supersets]
        self.roots = [r for r in self.roots if not r.subsets]

    def remove_payload(self, key: Key, payload) -> None:
        """Remove one payload; the node is unlinked when its list empties."""
        node = self._nodes.get(key)
        if node is None:
            raise KeyError(f"no node for key {sorted(map(str, key))}")
        node.payloads.remove(payload)
        if node.payloads:
            return
        del self._nodes[key]
        self.sole = (
            next(iter(self._nodes.values())) if len(self._nodes) == 1 else None
        )
        self._packed = None
        # Splice the node out: its parents adopt its children when no other
        # path exists between them.
        use_bits = self.interner is not None
        for parent in node.supersets:
            parent.subsets.remove(node)
        for child in node.subsets:
            child.supersets.remove(node)
        for parent in node.supersets:
            for child in node.subsets:
                if not _reachable_downward(parent, child, use_bits):
                    parent.subsets.append(child)
                    child.supersets.append(parent)
        if node in self.tops:
            self.tops.remove(node)
            self.tops.extend(
                child for child in node.subsets if not child.supersets
            )
        if node in self.roots:
            self.roots.remove(node)
            self.roots.extend(
                parent for parent in node.supersets if not parent.subsets
            )

    # -- packed flat sweeps ------------------------------------------------------

    def _packed_rows(
        self,
    ) -> tuple[PackedBitsetTable, list[LatticeNode], dict[int, int], int]:
        """The index's order-bit rows as a packed table (built lazily).

        Global interner bits are compressed to dense local positions so the
        rows stay one or two words wide however large the shared interner
        grows; the mapping is rebuilt with the table on any mutation.
        """
        packed = self._packed
        if packed is None:
            node_list = list(self._nodes.values())
            union = 0
            for node in node_list:
                union |= node.order_bits
            table = PackedBitsetTable()
            mapping: dict[int, int] = {}
            remaining = union
            while remaining:
                bit = remaining & -remaining
                mapping[bit] = table.alloc_bit()
                remaining ^= bit
            for node in node_list:
                table.append(_compress_bits(node.order_bits, mapping))
            packed = (table, node_list, mapping, union)
            self._packed = packed
        return packed

    def _packed_subsets(self, probe_bits: int) -> list[LatticeNode]:
        table, node_list, mapping, union = self._packed_rows()
        local = _compress_bits(probe_bits & union, mapping)
        width_mask = (1 << table.width_bits) - 1
        return [
            node_list[row]
            for row in table.sweep_mask(width_mask & ~local, 0)
        ]

    def _packed_supersets(self, probe_bits: int) -> list[LatticeNode]:
        table, node_list, mapping, union = self._packed_rows()
        if probe_bits & ~union:
            # A probe atom no stored key contains: nothing is a superset.
            return []
        local = _compress_bits(probe_bits, mapping)
        # Superset sense: a row passes when it covers every probe bit,
        # i.e. ``(row ^ local) & local == 0``.
        return [node_list[row] for row in table.sweep_mask(local, local)]

    # -- searches ----------------------------------------------------------------

    def subsets_of(
        self, search_key: Key, probe_bits: int | None = None
    ) -> list[LatticeNode]:
        """All nodes whose order key is a subset of (or equal to) the search key.

        Starts from the roots and follows superset pointers, pruning as soon
        as a node's key stops being a subset (all its supersets fail too).
        ``probe_bits`` is an optional precomputed ``known_mask`` of the
        search key (atoms the interner has never seen belong to no stored
        key, so dropping them cannot change the result).
        """
        if self.interner is not None:
            if probe_bits is None:
                probe_bits, _ = self.interner.known_mask(search_key)
            nodes = self._nodes
            if len(nodes) <= _FLAT_SCAN_LIMIT:
                return [
                    node
                    for node in nodes.values()
                    if node.order_bits & probe_bits == node.order_bits
                ]
            return self._packed_subsets(probe_bits)
        found = []
        seen = set()
        stack = [root for root in self.roots if root.order_key <= search_key]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            found.append(node)
            for parent in node.supersets:
                if parent not in seen and parent.order_key <= search_key:
                    stack.append(parent)
        return found

    def supersets_of(
        self,
        search_key: Key,
        probe_bits: int | None = None,
        probe_complete: bool | None = None,
    ) -> list[LatticeNode]:
        """All nodes whose order key is a superset of (or equal to) the search key.

        Starts from the tops and follows subset pointers, pruning when a
        node's key stops being a superset. A search key containing an atom
        the interner has never seen matches nothing (``probe_complete``
        False short-circuits to empty).
        """
        if self.interner is not None:
            if probe_bits is None or probe_complete is None:
                probe_bits, probe_complete = self.interner.known_mask(search_key)
            if not probe_complete:
                return []
            nodes = self._nodes
            if len(nodes) <= _FLAT_SCAN_LIMIT:
                return [
                    node
                    for node in nodes.values()
                    if node.order_bits & probe_bits == probe_bits
                ]
            return self._packed_supersets(probe_bits)
        found = []
        seen = set()
        stack = [top for top in self.tops if top.order_key >= search_key]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            found.append(node)
            for child in node.subsets:
                if child not in seen and child.order_key >= search_key:
                    stack.append(child)
        return found

    def descend_monotone(
        self,
        qualify: Callable[[Key], bool],
        qualify_bits: Callable[[int], bool] | None = None,
    ) -> list[LatticeNode]:
        """All nodes satisfying a condition that is monotone in the key.

        ``qualify`` must be upward-closed: if a key qualifies, so does every
        superset. The search starts at the tops and prunes an entire
        down-set as soon as a node fails (its subsets must fail too).
        Used for the output-column and grouping-column conditions
        (Sections 4.2.3 / 4.2.4). When the index is interned, callers may
        supply ``qualify_bits`` evaluating the same condition on the key's
        bitmask encoding; it takes precedence over ``qualify``.
        """
        if qualify_bits is not None and self.interner is not None:
            nodes = self._nodes
            if len(nodes) <= _FLAT_SCAN_LIMIT:
                return [node for node in nodes.values() if qualify_bits(node.bits)]
            found: list[LatticeNode] = []
            seen: set[LatticeNode] = set(self.tops)  # tops inspected exactly once
            stack = [top for top in self.tops if qualify_bits(top.bits)]
            while stack:
                node = stack.pop()
                found.append(node)
                for child in node.subsets:
                    if child not in seen:
                        seen.add(child)
                        if qualify_bits(child.bits):
                            stack.append(child)
            return found
        found = []
        seen = set(self.tops)
        stack = [top for top in self.tops if qualify(top.key)]
        while stack:
            node = stack.pop()
            found.append(node)
            for child in node.subsets:
                if child not in seen:
                    seen.add(child)
                    if qualify(child.key):
                        stack.append(child)
        return found

    def ascend_weak(
        self,
        weak_qualify: Callable[[Key], bool],
        qualify: Callable[[Key], bool],
        weak_qualify_bits: Callable[[int], bool] | None = None,
    ) -> list[LatticeNode]:
        """The range-constraint search (Section 4.2.5).

        ``weak_qualify`` is applied to the *order key* and must be
        downward-closed (if a node fails, all supersets fail): it drives
        pruning while ascending from the roots. ``qualify`` is the full
        condition on the identity key; only nodes passing it are returned,
        but failing it does not prune the ascent. ``weak_qualify_bits``
        is the bitmask-encoded form of ``weak_qualify`` for interned
        indexes (the full condition inspects the inside of key atoms, so
        it stays a key callable).
        """
        if weak_qualify_bits is not None and self.interner is not None:
            nodes = self._nodes
            if len(nodes) <= _FLAT_SCAN_LIMIT:
                return [
                    node
                    for node in nodes.values()
                    if weak_qualify_bits(node.order_bits) and qualify(node.key)
                ]
            found: list[LatticeNode] = []
            seen: set[LatticeNode] = set(self.roots)
            stack = [
                root for root in self.roots if weak_qualify_bits(root.order_bits)
            ]
            while stack:
                node = stack.pop()
                if qualify(node.key):
                    found.append(node)
                for parent in node.supersets:
                    if parent not in seen:
                        seen.add(parent)
                        if weak_qualify_bits(parent.order_bits):
                            stack.append(parent)
            return found
        found = []
        seen = set(self.roots)
        stack = [root for root in self.roots if weak_qualify(root.order_key)]
        while stack:
            node = stack.pop()
            if qualify(node.key):
                found.append(node)
            for parent in node.supersets:
                if parent not in seen:
                    seen.add(parent)
                    if weak_qualify(parent.order_key):
                        stack.append(parent)
        return found

    def all_payloads(self) -> Iterator:
        """Every payload in the index, in node order."""
        for node in self._nodes.values():
            yield from node.payloads


def _compress_bits(mask: int, mapping: dict[int, int]) -> int:
    """Re-encode a global interner mask onto dense local bit masks.

    ``mapping`` sends each global single-bit mask to the local single-bit
    mask :meth:`PackedBitsetTable.alloc_bit` allocated for it.
    """
    local = 0
    while mask:
        bit = mask & -mask
        local |= mapping[bit]
        mask ^= bit
    return local


def _minimal(nodes: list[LatticeNode]) -> list[LatticeNode]:
    """Nodes with no other node's order key strictly below theirs."""
    return [
        a
        for a in nodes
        if not any(b.order_key < a.order_key for b in nodes if b is not a)
    ]


def _maximal(nodes: list[LatticeNode]) -> list[LatticeNode]:
    return [
        a
        for a in nodes
        if not any(b.order_key > a.order_key for b in nodes if b is not a)
    ]


def _minimal_bits(nodes: list[LatticeNode]) -> list[LatticeNode]:
    """Popcount-ordered minimal selection over bitmask order keys.

    Processing candidates by ascending popcount means any strict subset of
    the node under test is already in ``result`` (or dominated by one that
    is), so one pass with subset tests against the kept nodes suffices.
    """
    result: list[LatticeNode] = []
    for a in sorted(nodes, key=lambda n: n.order_bits.bit_count()):
        bits = a.order_bits
        if not any(
            kept.order_bits != bits and kept.order_bits & bits == kept.order_bits
            for kept in result
        ):
            result.append(a)
    return result


def _maximal_bits(nodes: list[LatticeNode]) -> list[LatticeNode]:
    result: list[LatticeNode] = []
    for a in sorted(nodes, key=lambda n: -n.order_bits.bit_count()):
        bits = a.order_bits
        if not any(
            kept.order_bits != bits and bits & kept.order_bits == bits
            for kept in result
        ):
            result.append(a)
    return result


def _reachable_downward(
    start: LatticeNode, target: LatticeNode, use_bits: bool
) -> bool:
    """True when ``target`` is reachable from ``start`` via subset pointers."""
    stack = list(start.subsets)
    seen: set[LatticeNode] = set()
    if use_bits:
        target_bits = target.order_bits
        while stack:
            node = stack.pop()
            if node is target:
                return True
            if node in seen:
                continue
            seen.add(node)
            # Only descend through nodes that could still lead to the target.
            if (
                target_bits != node.order_bits
                and target_bits & node.order_bits == target_bits
            ):
                stack.extend(node.subsets)
        return False
    while stack:
        node = stack.pop()
        if node is target:
            return True
        if node in seen:
            continue
        seen.add(node)
        if target.order_key < node.order_key:
            stack.extend(node.subsets)
    return False
