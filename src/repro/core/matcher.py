"""The view-matching service: registration, filtering, matching, statistics.

:class:`ViewMatcher` is the component a transformation-based optimizer calls
from its view-matching rule. It keeps an in-memory description of every
materialized view, indexes the descriptions in a filter tree, and -- per
invocation -- narrows to candidates, runs the full matching tests, and
returns substitute expressions.

The matcher counts what Section 5 of the paper reports: invocations,
candidate-set sizes, how many candidates survive full matching, and
substitutes produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import MatchError
from ..obs.telemetry import (
    TelemetryHub,
    WorkerTelemetry,
    current_trace_context,
    telemetry_hub,
)
from ..obs.trace import current_tracer
from ..sql.statements import SelectStatement
from .describe import SpjgDescription, describe, validate_view_description
from .filtertree import FilterTree, RegisteredView
from .interning import KeyInterner
from .matching import (
    STAGE_PREVERIFY,
    STAGE_SKIPPED,
    MatchResult,
    RejectReason,
    match_view,
)
from .options import DEFAULT_OPTIONS, MatchOptions
from .parallel import fork_available, forked_map
from .preverify import PreVerifierSchema
from .sharding import ShardedFilterTree

if TYPE_CHECKING:
    from ..catalog.catalog import Catalog


@dataclass
class MatcherStatistics:
    """Counters accumulated across view-matching invocations."""

    invocations: int = 0
    views_considered: int = 0     # candidates handed to full matching
    views_registered_total: int = 0  # sum over invocations of registry size
    matches: int = 0              # candidates that produced a substitute
    substitutes: int = 0          # total substitutes returned
    rejects_by_reason: dict[str, int] = field(default_factory=dict)
    # Rejections decided by the columnar pre-verifier sweep (a subset of
    # rejects_by_reason's RANGE/EQUIJOIN counts -- same reasons, no
    # match_view walk) and candidates never verified at all because the
    # optimizer's cost bound proved no cheaper plan was reachable.
    preverifier_rejects: int = 0
    candidates_skipped: int = 0

    def record_rejection(self, reason: RejectReason) -> None:
        key = reason.name
        self.rejects_by_reason[key] = self.rejects_by_reason.get(key, 0) + 1

    @property
    def candidate_fraction(self) -> float:
        """Average fraction of registered views that survived filtering."""
        if self.views_registered_total == 0:
            return 0.0
        return self.views_considered / self.views_registered_total

    @property
    def candidate_success_rate(self) -> float:
        """Fraction of candidates that passed full matching."""
        if self.views_considered == 0:
            return 0.0
        return self.matches / self.views_considered

    @property
    def substitutes_per_invocation(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.substitutes / self.invocations

    def reset(self) -> None:
        self.invocations = 0
        self.views_considered = 0
        self.views_registered_total = 0
        self.matches = 0
        self.substitutes = 0
        self.rejects_by_reason.clear()
        self.preverifier_rejects = 0
        self.candidates_skipped = 0

    def merge(self, other: "MatcherStatistics") -> None:
        """Fold another counter set into this one.

        The parallel batch path accumulates statistics in forked workers
        and merges each worker's counters back into the parent matcher,
        so funnels stay identical to a sequential run of the same batch.
        """
        self.invocations += other.invocations
        self.views_considered += other.views_considered
        self.views_registered_total += other.views_registered_total
        self.matches += other.matches
        self.substitutes += other.substitutes
        for reason, count in other.rejects_by_reason.items():
            self.rejects_by_reason[reason] = (
                self.rejects_by_reason.get(reason, 0) + count
            )
        self.preverifier_rejects += other.preverifier_rejects
        self.candidates_skipped += other.candidates_skipped

    def report(self) -> str:
        """A human-readable summary (candidate funnel + rejection reasons)."""
        lines = [
            f"invocations:            {self.invocations}",
            f"candidates checked:     {self.views_considered} "
            f"({self.candidate_fraction:.3%} of registered views)",
            f"matches / substitutes:  {self.matches} / {self.substitutes} "
            f"({self.candidate_success_rate:.0%} of candidates)",
            f"substitutes/invocation: {self.substitutes_per_invocation:.2f}",
        ]
        if self.preverifier_rejects:
            lines.append(
                f"pre-verifier rejects:   {self.preverifier_rejects}"
            )
        if self.candidates_skipped:
            lines.append(
                f"cost-bound skipped:     {self.candidates_skipped}"
            )
        if self.rejects_by_reason:
            lines.append("rejections by reason:")
            total_rejects = sum(self.rejects_by_reason.values())
            for reason, count in sorted(
                self.rejects_by_reason.items(), key=lambda kv: -kv[1]
            ):
                lines.append(
                    f"  {reason.lower():20s} {count:6d} ({count / total_rejects:.0%})"
                )
        return "\n".join(lines)


class ViewMatcher:
    """Registry plus matching engine over one catalog."""

    def __init__(
        self,
        catalog: "Catalog",
        options: MatchOptions = DEFAULT_OPTIONS,
        use_filter_tree: bool = True,
        interner: KeyInterner | None = None,
        use_interning: bool = True,
        use_match_contexts: bool = True,
        shard_count: int = 1,
        telemetry: TelemetryHub | None = None,
        use_preverifier: bool = True,
        use_template_cache: bool = True,
        preverify_schema: PreVerifierSchema | None = None,
    ):
        """``interner`` shares key-atom bit assignments with other trees
        (the serving layer reuses one across epoch rebuilds).
        ``use_interning=False`` / ``use_match_contexts=False`` disable the
        bitset keys and the precomputed per-view contexts respectively --
        the "before" configurations the hot-path benchmark compares
        against; production callers leave both on. ``shard_count > 1``
        partitions the registry across that many per-shard filter trees
        (:class:`~repro.core.sharding.ShardedFilterTree`), the layout the
        parallel matching fan-out requires; candidate sets and ordering
        are unchanged. ``telemetry`` injects the sink for the always-on
        cross-process pipeline (invocation sketches, worker snapshots);
        ``None`` falls back to the process-global hub.

        ``use_preverifier`` / ``use_template_cache`` toggle the columnar
        candidate screen and the compensation-template cache; both change
        only latency, never results (the bench's modes-identical
        assertion and the property suite pin this down).
        ``preverify_schema`` shares pre-verifier encodings across trees,
        like ``interner``.
        """
        self.catalog = catalog
        self.options = options
        self.use_filter_tree = use_filter_tree
        self.use_match_contexts = use_match_contexts
        self.use_preverifier = use_preverifier
        self.use_template_cache = use_template_cache
        self.shard_count = shard_count
        self.telemetry = telemetry
        if shard_count > 1:
            self.filter_tree: FilterTree | ShardedFilterTree = ShardedFilterTree(
                options,
                shard_count=shard_count,
                interner=interner,
                use_interning=use_interning,
                preverify_schema=preverify_schema,
                use_preverifier=use_preverifier,
            )
            self.filter_tree.telemetry = telemetry
        else:
            self.filter_tree = FilterTree(
                options,
                interner=interner,
                use_interning=use_interning,
                preverify_schema=preverify_schema,
                use_preverifier=use_preverifier,
            )
        self.statistics = MatcherStatistics()

    @property
    def interner(self) -> KeyInterner | None:
        """The filter tree's key interner (None in reference mode)."""
        return self.filter_tree.interner

    @classmethod
    def from_registered_views(
        cls,
        catalog: "Catalog",
        views,
        options: MatchOptions = DEFAULT_OPTIONS,
        use_filter_tree: bool = True,
        interner: KeyInterner | None = None,
        shard_count: int = 1,
        telemetry: TelemetryHub | None = None,
        use_preverifier: bool = True,
        use_template_cache: bool = True,
        preverify_schema: PreVerifierSchema | None = None,
    ) -> "ViewMatcher":
        """Build a matcher by re-indexing already-described views.

        ``views`` is an iterable of :class:`RegisteredView` objects (from a
        previous matcher's :meth:`registered_views`). Descriptions, hubs,
        and match contexts are reused verbatim, so constructing a matcher
        this way costs only the filter-tree inserts -- the epoch-snapshot
        rebuild path of ``repro.service`` depends on this being cheap, and
        passes its long-lived ``interner`` so key encodings stay stable
        across rebuilds.
        """
        matcher = cls(
            catalog,
            options=options,
            use_filter_tree=use_filter_tree,
            interner=interner,
            shard_count=shard_count,
            telemetry=telemetry,
            use_preverifier=use_preverifier,
            use_template_cache=use_template_cache,
            preverify_schema=preverify_schema,
        )
        for view in views:
            matcher.filter_tree.register_prebuilt(view)
        return matcher

    @classmethod
    def with_filter_tree(
        cls,
        catalog: "Catalog",
        filter_tree: "FilterTree | ShardedFilterTree",
        options: MatchOptions = DEFAULT_OPTIONS,
        use_match_contexts: bool = True,
        telemetry: TelemetryHub | None = None,
        use_preverifier: bool = True,
        use_template_cache: bool = True,
    ) -> "ViewMatcher":
        """Build a matcher around an existing (possibly shared) filter tree.

        The serving layer's copy-on-write epoch rebuild assembles a
        :class:`ShardedFilterTree` that reuses the unchanged shard trees of
        the previous epoch and hands it in here; no view is re-indexed.
        """
        matcher = cls.__new__(cls)
        matcher.catalog = catalog
        matcher.options = options
        matcher.use_filter_tree = True
        matcher.use_match_contexts = use_match_contexts
        matcher.use_preverifier = use_preverifier
        matcher.use_template_cache = use_template_cache
        matcher.shard_count = getattr(filter_tree, "shard_count", 1)
        matcher.filter_tree = filter_tree
        matcher.statistics = MatcherStatistics()
        matcher.telemetry = telemetry
        if hasattr(filter_tree, "telemetry"):
            # Per-epoch wrappers are rebuilt around shared shard trees,
            # so the hub pointer must be refreshed on every rebuild.
            filter_tree.telemetry = telemetry
        return matcher

    # -- registration -------------------------------------------------------

    def register_view(self, name: str, statement: SelectStatement) -> RegisteredView:
        """Register a bound SPJG view definition under ``name``.

        Raises :class:`MatchError` when the definition is outside the
        indexable-view class of Section 2.
        """
        description = describe(
            statement, self.catalog, name=name, options=self.options
        )
        validate_view_description(description)
        return self.filter_tree.register(description)

    def register_from_catalog(self) -> int:
        """Register every view currently defined in the catalog."""
        count = 0
        for view in self.catalog.views():
            if view.name not in {v.name for v in self.filter_tree.views()}:
                self.register_view(view.name, view.query)
                count += 1
        return count

    def unregister_view(self, name: str) -> None:
        """Remove a view from the registry and the filter tree."""
        self.filter_tree.unregister(name)

    @property
    def view_count(self) -> int:
        return len(self.filter_tree)

    def registered_views(self) -> tuple[RegisteredView, ...]:
        """All currently registered views."""
        return self.filter_tree.views()

    # -- matching -------------------------------------------------------------

    def _hub(self) -> TelemetryHub:
        """The telemetry sink: the injected hub or the process global."""
        return self.telemetry if self.telemetry is not None else telemetry_hub()

    def describe_query(self, statement: SelectStatement) -> SpjgDescription:
        """Build a query description under this matcher's options."""
        return describe(statement, self.catalog, options=self.options)

    def candidates(self, query: SpjgDescription) -> list[RegisteredView]:
        """The candidate set for one query expression.

        With the filter tree disabled this is every registered view -- the
        configuration of the paper's "No Filter" experiment lines.
        """
        if self.use_filter_tree:
            return self.filter_tree.candidates(query)
        return list(self.filter_tree.views())

    def _preverify_verdicts(self, query, candidates):
        """Columnar screen verdicts for ``candidates`` (None = no screen).

        Gated on the precomputed-context configuration: the screen's
        rejects replay registration-time context state, so the
        rebuilt-contexts reference mode must measure the unscreened path.
        """
        if not candidates:
            return None
        if not (
            self.use_preverifier
            and self.use_filter_tree
            and self.use_match_contexts
        ):
            return None
        screener = getattr(self.filter_tree, "preverify_screen", None)
        if screener is None:
            return None
        return screener(query, candidates)

    def match(
        self,
        query: SpjgDescription | SelectStatement,
        workers: int | None = None,
        staleness=None,
        cost_policy=None,
    ) -> list[MatchResult]:
        """One view-matching invocation: all match results over candidates.

        Returns the full :class:`MatchResult` list (successes and
        rejections) for diagnosability; use :meth:`substitutes` when only
        the rewrites are wanted. ``workers > 1`` fans candidate filtering
        and full matching out across forked workers, one shard group each
        -- requires a sharded tree and ``fork``; results, ordering, and
        statistics are identical to a sequential run.

        ``staleness`` is an optional policy callable (typically a
        :class:`repro.cdc.StalenessBound`): called with a candidate view's
        name, it returns ``None`` when the view is usable or a detail
        string when the view's maintenance lag exceeds the request's
        bound. Excluded candidates are recorded with the ``STALE`` reject
        reason -- they still count as considered, so the funnel shows
        staleness attrition next to the structural reject reasons.

        ``cost_policy`` enables cost-bounded best-first verification (the
        optimizer's path): candidates are verified cheapest-first by the
        policy's per-view cost lower bound, every successful match is
        reported through ``policy.observe(result)`` so the policy can
        tighten its upper bound, and once ``policy.bound()`` proves no
        remaining candidate can beat the best plan the rest are returned
        unverified with ``stage="skipped"`` (substitute and reject reason
        both ``None``). The result list keeps candidate order regardless.
        """
        if isinstance(query, SelectStatement):
            query = self.describe_query(query)
        if (
            workers is not None
            and workers > 1
            and cost_policy is None
            and isinstance(self.filter_tree, ShardedFilterTree)
            and fork_available()
        ):
            return self._match_parallel(query, workers, staleness)
        started = time.perf_counter()
        stats = self.statistics
        stats.invocations += 1
        stats.views_registered_total += self.view_count
        candidates = self.candidates(query)
        verdicts = self._preverify_verdicts(query, candidates)
        order = list(range(len(candidates)))
        bounds = None
        if cost_policy is not None and len(candidates) > 1:
            bounds = [
                cost_policy.lower_bound(candidate.description)
                for candidate in candidates
            ]
            order.sort(key=lambda position: (bounds[position], position))
        results: list[MatchResult | None] = [None] * len(candidates)
        matched = 0
        skip_from: int | None = None
        for rank, position in enumerate(order):
            candidate = candidates[position]
            if (
                bounds is not None
                and cost_policy.bound() <= bounds[position]
            ):
                # Bounds ascend along `order`, so nothing later can beat
                # the best plan either.
                skip_from = rank
                break
            stats.views_considered += 1
            stale_detail = (
                staleness(candidate.description.name)
                if staleness is not None
                else None
            )
            if stale_detail is not None:
                result = MatchResult(
                    view=candidate.description,
                    reject_reason=RejectReason.STALE,
                    reject_detail=stale_detail,
                )
            elif verdicts is not None and verdicts[position] is not None:
                result = verdicts[position]
            else:
                result = match_view(
                    query,
                    candidate.description,
                    self.options,
                    context=(
                        candidate.match_context if self.use_match_contexts else None
                    ),
                    use_templates=self.use_template_cache,
                )
            if result.matched:
                matched += 1
                stats.matches += 1
                stats.substitutes += 1
                if cost_policy is not None:
                    cost_policy.observe(result)
            elif result.reject_reason is not None:
                stats.record_rejection(result.reject_reason)
                if result.stage == STAGE_PREVERIFY:
                    stats.preverifier_rejects += 1
            results[position] = result
        if skip_from is not None:
            for position in order[skip_from:]:
                stats.candidates_skipped += 1
                results[position] = MatchResult(
                    view=candidates[position].description,
                    stage=STAGE_SKIPPED,
                )
        self._record_invocation(
            time.perf_counter() - started, len(candidates), matched
        )
        tracer = current_tracer()
        if tracer.active:
            tracer.on_match_invocation(self.view_count, candidates, results)
        return results

    def _record_invocation(
        self, elapsed: float, candidates: int, matched: int
    ) -> None:
        """Always-on telemetry for one invocation: one sketch sample and
        three counter adds -- cheap enough to leave on (the bench's
        telemetry-overhead gate holds it there)."""
        hub = self._hub()
        hub.record("match_invocation_seconds", elapsed)
        hub.increment("match_invocations")
        if candidates:
            hub.increment("match_candidates", candidates)
        if matched:
            hub.increment("match_matches", matched)

    def _match_parallel(
        self, query: SpjgDescription, workers: int, staleness=None
    ) -> list[MatchResult]:
        """Fan one invocation's filtering and matching across forked workers.

        Each worker filters its assigned shards and runs ``match_view`` on
        the survivors; the parent merges by global registration sequence,
        so the result list is ordered exactly like the sequential path's
        and the statistics funnel is computed from the merged results.
        The staleness policy is applied in the parent after the merge --
        a stale candidate's result is replaced with a ``STALE`` rejection
        before statistics are computed, so the funnel matches the
        sequential path exactly.

        Each worker also returns a serialized
        :class:`~repro.obs.telemetry.TelemetrySnapshot` -- its counters,
        per-candidate latency sketch, and a ``match.worker`` span tagged
        with the active :class:`TraceContext`'s trace id -- which the
        parent merges into its hub and, when a tracer is sampling this
        request, stitches into the parent trace.  Before this, forked
        matching recorded nothing: the child's in-memory metrics died
        with the child.
        """
        started = time.perf_counter()
        tree = self.filter_tree
        assert isinstance(tree, ShardedFilterTree)
        worker_count = max(1, min(workers, tree.shard_count))
        groups = [
            tuple(range(start, tree.shard_count, worker_count))
            for start in range(worker_count)
        ]
        options = self.options
        use_contexts = self.use_match_contexts
        use_templates = self.use_template_cache
        screen_enabled = self.use_preverifier and use_contexts
        # Captured by value into the closure: the context crosses the
        # fork inside the child's copy-on-write image.
        context = current_trace_context()
        trace_id = context.trace_id if context is not None else None

        def match_group(
            shard_indices: tuple[int, ...],
        ) -> tuple[list[tuple[int, RegisteredView, MatchResult]], dict]:
            worker = WorkerTelemetry()
            sketch = worker.sketch("match_worker_view_seconds")
            worker_started = time.perf_counter()
            pairs = tree.shard_candidates(query, shard_indices)
            verdicts = (
                tree.preverify_screen(
                    query, [candidate for _, candidate in pairs]
                )
                if screen_enabled and pairs
                else None
            )
            entries = []
            matched = 0
            for position, (sequence, candidate) in enumerate(pairs):
                if verdicts is not None and verdicts[position] is not None:
                    entries.append((sequence, candidate, verdicts[position]))
                    continue
                candidate_started = time.perf_counter()
                result = match_view(
                    query,
                    candidate.description,
                    options,
                    context=(
                        candidate.match_context if use_contexts else None
                    ),
                    use_templates=use_templates,
                )
                sketch.record(time.perf_counter() - candidate_started)
                if result.matched:
                    matched += 1
                entries.append((sequence, candidate, result))
            elapsed = time.perf_counter() - worker_started
            worker.counter("match_worker_candidates", len(entries))
            if matched:
                worker.counter("match_worker_matches", matched)
            worker.record_span(
                "match.worker",
                elapsed,
                trace_id=trace_id,
                shards=list(shard_indices),
                candidates=len(entries),
                matched=matched,
            )
            return entries, worker.snapshot().to_dict()

        hub = self._hub()
        tracer = current_tracer()
        merged: list[tuple[int, RegisteredView, MatchResult]] = []
        for group, snapshot_dict in forked_map(
            match_group, groups, worker_count
        ):
            merged.extend(group)
            hub.merge_snapshot_dict(snapshot_dict)
            if tracer.active:
                for span in snapshot_dict.get("spans", ()):
                    attributes = dict(span.get("attributes", {}))
                    if span.get("trace_id") is not None:
                        attributes["trace_id"] = span["trace_id"]
                    tracer.record_span(
                        span["name"], span.get("duration", 0.0), **attributes
                    )
        merged.sort(key=lambda entry: entry[0])
        if staleness is not None:
            merged = [
                (
                    sequence,
                    candidate,
                    MatchResult(
                        view=candidate.description,
                        reject_reason=RejectReason.STALE,
                        reject_detail=stale_detail,
                    )
                    if (
                        stale_detail := staleness(candidate.description.name)
                    )
                    is not None
                    else result,
                )
                for sequence, candidate, result in merged
            ]
        stats = self.statistics
        stats.invocations += 1
        stats.views_registered_total += self.view_count
        candidates = [candidate for _, candidate, _ in merged]
        results: list[MatchResult] = []
        matched = 0
        for _, _, result in merged:
            stats.views_considered += 1
            if result.matched:
                matched += 1
                stats.matches += 1
                stats.substitutes += 1
            elif result.reject_reason is not None:
                stats.record_rejection(result.reject_reason)
                if result.stage == STAGE_PREVERIFY:
                    stats.preverifier_rejects += 1
            results.append(result)
        self._record_invocation(
            time.perf_counter() - started, len(candidates), matched
        )
        if tracer.active:
            tracer.on_match_invocation(self.view_count, candidates, results)
        return results

    def match_many(
        self,
        queries,
        workers: int | None = None,
        staleness=None,
    ) -> list[list[MatchResult]]:
        """Match a batch of queries, one full result list per query.

        With ``workers > 1`` (and ``fork`` available) the batch is split
        across forked workers, each running the ordinary sequential match
        for its queries against the copy-on-write shared registry; worker
        statistics merge back into this matcher so the funnel equals a
        sequential run of the same batch. Tracer events raised inside
        workers stay in the worker process.
        """
        described = [
            self.describe_query(query)
            if isinstance(query, SelectStatement)
            else query
            for query in queries
        ]
        if not described:
            return []
        worker_count = workers or 1
        if worker_count <= 1 or not fork_available():
            return [
                self.match(query, staleness=staleness) for query in described
            ]

        def match_one(
            query: SpjgDescription,
        ) -> tuple[list[MatchResult], MatcherStatistics, dict]:
            # Child-local statistics and telemetry: start fresh so the
            # parent can merge exactly this query's contribution.
            self.statistics = MatcherStatistics()
            self.telemetry = TelemetryHub()
            results = self.match(query, staleness=staleness)
            return (
                results,
                self.statistics,
                self.telemetry.export_snapshot().to_dict(),
            )

        outcomes = forked_map(
            match_one, described, min(worker_count, len(described))
        )
        hub = self._hub()
        combined: list[list[MatchResult]] = []
        for results, stats, snapshot_dict in outcomes:
            self.statistics.merge(stats)
            hub.merge_snapshot_dict(snapshot_dict)
            combined.append(results)
        return combined

    def substitutes(
        self, query: SpjgDescription | SelectStatement, staleness=None
    ) -> list[MatchResult]:
        """Successful matches only, each carrying its substitute statement."""
        return [
            result
            for result in self.match(query, staleness=staleness)
            if result.matched
        ]

    def match_sql(self, sql: str) -> list[MatchResult]:
        """Convenience: parse, bind, and match a SELECT statement."""
        return self.substitutes(self.catalog.bind_sql(sql))

    def union_substitutes(self, query: SpjgDescription | SelectStatement):
        """Union substitutes (Section 7) over the registered views.

        Runs the restricted multi-view search of
        :func:`repro.core.unions.find_union_substitutes` on the filter
        tree's candidate set. Union substitutes do not participate in the
        single-view statistics counters.
        """
        from .unions import find_union_substitutes

        if isinstance(query, SelectStatement):
            query = self.describe_query(query)
        candidates = [view.description for view in self.candidates(query)]
        return find_union_substitutes(query, candidates, self.options)


def matcher_for_catalog(
    catalog: "Catalog",
    options: MatchOptions = DEFAULT_OPTIONS,
    use_filter_tree: bool = True,
) -> ViewMatcher:
    """Build a matcher and register every view already in the catalog."""
    matcher = ViewMatcher(catalog, options=options, use_filter_tree=use_filter_tree)
    matcher.register_from_catalog()
    return matcher


__all__ = [
    "MatchError",
    "MatcherStatistics",
    "MatchResult",
    "RejectReason",
    "ViewMatcher",
    "matcher_for_catalog",
]
