"""The view-matching algorithm (Section 3 of the paper).

Given the descriptions of a query SPJG expression and a candidate
materialized view, decide whether the query can be computed from the view
alone and, if so, construct the substitute expression over the view:

1. table-set containment, with extra view tables eliminated through
   cardinality-preserving foreign-key joins (Section 3.2),
2. the equijoin subsumption test over column equivalence classes,
3. the range subsumption test over per-class intervals,
4. the residual subsumption test via shallow expression matching,
5. mapping of compensating predicates and output expressions to view
   output columns,
6. aggregation handling: group-by subset check, compensating group-by,
   count(*) -> SUM(count_big), AVG -> SUM/COUNT_BIG (Section 3.3).

Every rejection carries a :class:`RejectReason` so tests and the
experiment harness can report where candidates die.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum, auto
from itertools import count

from ..sql.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsNull,
    Literal,
    conjunction,
)
from ..sql.statements import SelectItem, SelectStatement, TableRef
from .describe import SpjgDescription
from .equivalence import ColumnKey, EquivalenceClasses
from .fkgraph import FkEdge, build_fk_join_graph, eliminate_tables
from .intervalsets import IntervalSet, OrRangePredicate, UNBOUNDED_SET, as_or_range
from .normalize import classify_predicate
from .options import DEFAULT_OPTIONS, MatchOptions
from .ranges import (
    RangePredicate,
    UNBOUNDED,
    compensating_range_conjuncts,
    derive_ranges,
)
from .residual import ShallowForm


class RejectReason(Enum):
    """Where in the pipeline a candidate view was rejected."""

    VIEW_KIND = auto()            # aggregation view for a non-aggregation query
    TABLES = auto()               # view lacks some query table
    EXTRA_TABLES = auto()         # extra tables not cardinality-preserving
    NULLABLE_FK = auto()          # nullable FK join without null rejection
    EQUIJOIN = auto()             # equijoin subsumption failed
    RANGE = auto()                # range subsumption failed
    RESIDUAL = auto()             # residual subsumption failed
    PREDICATE_MAPPING = auto()    # compensating predicate not computable
    OUTPUT_MAPPING = auto()       # output expression not computable
    GROUPING = auto()             # query group-by not a subset of the view's
    AGGREGATE = auto()            # aggregate not derivable from view outputs
    STALE = auto()                # view's applied LSN outside the staleness bound


#: Pipeline stage that produced a :class:`MatchResult`. ``verify`` is the
#: full per-candidate walk below; ``preverify`` marks rejects issued by the
#: vectorized candidate screen (:mod:`repro.core.preverify`) before any
#: ``match_view`` call; ``skipped`` marks candidates the matcher never
#: verified because the optimizer's cost bound proved no cheaper plan was
#: reachable (neither matched nor rejected).
STAGE_VERIFY = "verify"
STAGE_PREVERIFY = "preverify"
STAGE_SKIPPED = "skipped"

#: The exact detail string of an equijoin-subsumption reject. The packed
#: pre-verifier re-issues equijoin rejects without running ``_match``, and
#: the no-false-rejects contract includes the detail text.
EQUIJOIN_REJECT_DETAIL = "view equates columns the query does not"


@dataclass
class MatchResult:
    """Outcome of matching one query expression against one view."""

    view: SpjgDescription
    substitute: SelectStatement | None = None
    reject_reason: RejectReason | None = None
    reject_detail: str = ""
    compensating_equalities: int = 0
    compensating_ranges: int = 0
    compensating_residuals: int = 0
    regrouped: bool = False
    eliminated_tables: tuple[str, ...] = ()
    backjoined_tables: tuple[str, ...] = ()
    #: Which stage produced this result (``compare=False``: the enabled and
    #: disabled pre-verifier paths must yield *equal* result sets even when
    #: a reject short-circuited at a different stage).
    stage: str = field(default=STAGE_VERIFY, compare=False, repr=False)
    #: Internal: ``(equality prefix, residual/backjoin suffix,
    #: class-augmentation data or None)`` -- the compensation conjuncts
    #: split around the range slice plus the extra-table class
    #: augmentation, captured by ``_match`` so a successful result can
    #: seed the compensation-template cache without re-deriving anything.
    template_parts: tuple | None = field(
        default=None, compare=False, repr=False
    )
    #: Internal: ``(phase, augmentation)`` progress marker maintained by
    #: ``_match`` so a reject can be classified (constant-independent or
    #: not, relative to the range tests) for the compensation-template
    #: cache. Phases: 0 = steps 1-2, 1 = range containment, 2 = residual
    #: test / equality mapping, 3 = range-compensation mapping, 4 = later.
    match_progress: tuple = field(default=(0, None), compare=False, repr=False)

    @property
    def matched(self) -> bool:
        return self.substitute is not None

    def compensation_steps(self) -> list[str]:
        """Human-readable summary of what the substitute had to compensate.

        One line per compensation kind actually applied (extra-table FK
        elimination, backjoins, equality/range/residual predicates,
        group-by rollup); the rewrite-path tracer records these for the
        winning view of each match invocation.
        """
        steps: list[str] = []
        if self.eliminated_tables:
            steps.append(
                "extra-table FK elimination: "
                + ", ".join(self.eliminated_tables)
            )
        if self.backjoined_tables:
            steps.append(
                "backjoined base tables: " + ", ".join(self.backjoined_tables)
            )
        if self.compensating_equalities:
            steps.append(
                f"{self.compensating_equalities} compensating column "
                "equalities"
            )
        if self.compensating_ranges:
            steps.append(
                f"{self.compensating_ranges} compensating range predicates"
            )
        if self.compensating_residuals:
            steps.append(
                f"{self.compensating_residuals} compensating residual "
                "predicates"
            )
        if self.regrouped:
            steps.append("group-by rollup (compensating aggregation)")
        if not steps and self.matched:
            steps.append("exact match, no compensation")
        return steps


class _Reject(Exception):
    """Internal control flow: abandon the match with a reason."""

    def __init__(self, reason: RejectReason, detail: str = ""):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


@dataclass(slots=True)
class _ViewOutputs:
    """Lookup structures over a view's output list.

    ``slots=True``: one instance lives on every registered view for the
    process lifetime, so per-instance ``__dict__`` overhead is resident
    catalog memory. ``copy.copy`` (see ``fresh_outputs``) works with
    slots classes, which is all the per-match path needs.
    """

    view_name: str
    simple: dict[ColumnKey, str]
    expressions: list[tuple[ShallowForm, str]] = field(default_factory=list)
    aggregates: list[tuple[ShallowForm, str]] = field(default_factory=list)
    count_big_column: str | None = None
    backjoins: "_BackjoinState | None" = None

    @classmethod
    def of(cls, view: SpjgDescription) -> "_ViewOutputs":
        assert view.name is not None
        outputs = cls(view_name=view.name, simple=view.simple_output_map)
        for info in view.expression_outputs:
            assert info.name is not None
            expr = info.expression
            if isinstance(expr, FuncCall) and expr.is_aggregate():
                if expr.name == "count_big" and expr.star:
                    outputs.count_big_column = info.name
                else:
                    outputs.aggregates.append((info.form, info.name))
            else:
                outputs.expressions.append((info.form, info.name))
        return outputs

    def direct_column_for(
        self, key: ColumnKey, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """Reroute ``key`` to an exposed output column (no backjoins)."""
        if key in self.simple:
            return ColumnRef(self.view_name, self.simple[key])
        if key not in eqclasses:
            return None
        for member in sorted(eqclasses.class_of(key)):
            if member in self.simple:
                return ColumnRef(self.view_name, self.simple[member])
        return None

    def column_for(
        self, key: ColumnKey, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """Reroute ``key`` to an output column, backjoining as a last resort."""
        direct = self.direct_column_for(key, eqclasses)
        if direct is not None:
            return direct
        if self.backjoins is not None:
            return self.backjoins.resolve(key)
        return None

    def expression_output_for(
        self, form: ShallowForm, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """A view output column computing exactly this expression."""
        for candidate, name in self.expressions:
            if candidate.matches(form, eqclasses):
                return ColumnRef(self.view_name, name)
        return None

    def sum_output_for(
        self, argument: Expression, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """The view's SUM output over an equivalent argument expression."""
        wanted = ShallowForm.of(FuncCall("sum", (argument,)))
        for candidate, name in self.aggregates:
            if candidate.matches(wanted, eqclasses):
                return ColumnRef(self.view_name, name)
        return None


class _BackjoinState:
    """Pending base-table backjoins for one match (Section 7 extension).

    A missing column of table T becomes available by joining the view back
    to T on a unique key of T whose columns the view exposes: every view
    row stems from exactly one T row, and the (non-null) unique key
    recovers it, so the join is cardinality preserving. Only meaningful for
    non-aggregation views, where view rows are base-row images.
    """

    def __init__(self, view: SpjgDescription, augmented: EquivalenceClasses):
        self.view = view
        self.augmented = augmented
        self.outputs: _ViewOutputs | None = None
        self.joined: dict[str, tuple[Expression, ...]] = {}

    def resolve(self, key: ColumnKey) -> ColumnRef | None:
        table_name, column = key
        if table_name not in self.view.tables:
            return None
        if table_name in self.joined:
            return ColumnRef(table_name, column)
        assert self.outputs is not None
        table = self.view.catalog.table(table_name)
        for unique_key in table.all_unique_keys():
            if any(table.is_nullable(kc) for kc in unique_key):
                continue  # a NULL key value would break the equijoin
            mapped: list[tuple[ColumnRef, str]] = []
            for key_column in unique_key:
                reference = self.outputs.direct_column_for(
                    (table_name, key_column), self.augmented
                )
                if reference is None:
                    break
                mapped.append((reference, key_column))
            else:
                self.joined[table_name] = tuple(
                    BinaryOp("=", reference, ColumnRef(table_name, key_column))
                    for reference, key_column in mapped
                )
                return ColumnRef(table_name, column)
        return None

    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self.joined))

    def join_predicates(self) -> tuple[Expression, ...]:
        return tuple(
            predicate
            for table in sorted(self.joined)
            for predicate in self.joined[table]
        )


# Registration-time context tuples repeat heavily across views (check
# constraints and fk edges derive from the catalog tables a view reads,
# and thousands of generated views share the same few table sets), so
# identical tuples are interned to one object. Keys are the tuples
# themselves; the memo stays schema-bounded. Unhashable payloads simply
# skip interning.
_TUPLE_MEMO: dict = {}


def _intern_tuple(value: tuple) -> tuple:
    try:
        return _TUPLE_MEMO.setdefault(value, value)
    except TypeError:
        return value


# Every context gets a process-unique serial: the compensation-template
# cache keys on it, so unregistering and re-registering a view (which
# builds a fresh context) can never resurrect templates derived from the
# old registration, while epoch swaps that carry contexts forward keep
# their cache entries warm.
_context_serials = count()


@dataclass(frozen=True, slots=True)
class ViewMatchContext:
    """Frozen per-view matching state, built once at registration time.

    ``match_view`` used to re-derive all of this on every invocation:
    the output lookup structures, the view-side interval sets, the
    classified check-constraint predicates of every view table, and the
    foreign-key join graph for extra-table elimination. None of it
    depends on the query, so the filter tree builds one context per view
    at registration (:meth:`~repro.core.filtertree.FilterTree.register`)
    and the serving layer's epoch rebuilds carry it along inside
    :class:`~repro.core.filtertree.RegisteredView`. Per invocation only
    the query-side derivation and the subsumption tests remain.
    """

    view: SpjgDescription
    options: MatchOptions
    outputs: _ViewOutputs  # backjoins is always None here; copied per match
    range_items: tuple[tuple[ColumnKey, IntervalSet], ...]
    check_ranges: tuple[RangePredicate, ...]
    check_or_ranges: tuple[OrRangePredicate, ...]
    check_residuals: tuple[ShallowForm, ...]
    fk_edges: tuple[FkEdge, ...]
    serial: int = field(
        default_factory=lambda: next(_context_serials), compare=False
    )

    @classmethod
    def of(
        cls, view: SpjgDescription, options: MatchOptions = DEFAULT_OPTIONS
    ) -> "ViewMatchContext":
        if view.name is None:
            raise ValueError("view description must carry a view name")
        check_ranges, check_or_ranges, check_residuals = (
            _check_constraint_predicates(view, options)
        )
        return cls(
            view=view,
            options=options,
            outputs=_ViewOutputs.of(view),
            range_items=_range_items(
                view.classified.range_predicates, view.or_ranges
            ),
            check_ranges=_intern_tuple(check_ranges),
            check_or_ranges=_intern_tuple(check_or_ranges),
            check_residuals=_intern_tuple(check_residuals),
            fk_edges=_intern_tuple(
                tuple(
                    build_fk_join_graph(
                        view.tables, view.eqclasses, view.catalog, options
                    )
                )
            ),
        )

    def fresh_outputs(self) -> _ViewOutputs:
        """A per-invocation copy safe to attach backjoin state to."""
        return copy.copy(self.outputs)


def match_view(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions = DEFAULT_OPTIONS,
    context: ViewMatchContext | None = None,
    use_templates: bool = True,
) -> MatchResult:
    """Match one query expression against one materialized view.

    ``context`` is the view's precomputed :class:`ViewMatchContext`; when
    absent (or built under different options) an equivalent one is derived
    on the fly, so direct callers need not manage contexts.

    ``use_templates`` enables the compensation-template cache: repeat
    query shapes (same fingerprint, different range constants) against the
    same registration-time context replay the stored compensation skeleton
    and re-derive only the range subsumption test and range constants.
    Only authoritative contexts participate -- a context rebuilt on the
    fly would mint a fresh cache key per call.
    """
    result = MatchResult(view=view)
    authoritative = (
        context is not None
        and context.view is view
        and context.options == options
    )
    if not authoritative:
        context = ViewMatchContext.of(view, options)
    full_match_ran = False
    try:
        if use_templates and authoritative:
            if _try_template(query, view, options, context, result):
                return result
        full_match_ran = True
        _match(query, view, options, context, result)
        if use_templates and authoritative:
            _store_template(query, view, options, context, result)
    except _Reject as reject:
        result.substitute = None
        result.reject_reason = reject.reason
        result.reject_detail = reject.detail
        # Rejects raised by the full match (not by a template replay,
        # whose outcomes are already cached) seed reject templates.
        if full_match_ran and use_templates and authoritative:
            _store_reject_template(query, view, options, context, result)
    return result


def _match(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    result: MatchResult,
) -> None:
    if view.name is None:
        raise ValueError("view description must carry a view name")
    if view.is_aggregate and not query.is_aggregate:
        raise _Reject(RejectReason.VIEW_KIND, "aggregation view, SPJ query")
    if view.statement.distinct:
        raise _Reject(RejectReason.VIEW_KIND, "DISTINCT view is not indexable")

    # ---- Step 1: tables, extra-table elimination, augmented classes --------
    if not view.tables >= query.tables:
        missing = query.tables - view.tables
        raise _Reject(RejectReason.TABLES, f"view lacks {sorted(missing)}")
    extras = view.tables - query.tables
    # The query's classes are only mutated when extra view tables extend
    # them; the no-extras common case reuses them directly (``find`` path
    # compression is the only mutation below, and it is idempotent).
    augmented = query.eqclasses.copy() if extras else query.eqclasses
    augmentation: tuple | None = None
    if extras:
        used_edges = _eliminate_extras(query, view, extras, context.fk_edges)
        result.eliminated_tables = tuple(sorted(extras))
        added_columns: list[ColumnKey] = []
        for table in sorted(extras):
            for column in view.catalog.table(table).column_names:
                added_columns.append((table, column))
                augmented.add_column((table, column))
        added_equalities: list[tuple[ColumnKey, ColumnKey]] = []
        for edge in used_edges:
            for child_key, parent_key in edge.column_pairs:
                added_equalities.append((child_key, parent_key))
                augmented.add_equality(child_key, parent_key)
        augmentation = (tuple(added_columns), tuple(added_equalities))

    # ---- Step 2: equijoin subsumption ---------------------------------------
    if not view.eqclasses.refines(augmented):
        raise _Reject(RejectReason.EQUIJOIN, EQUIJOIN_REJECT_DETAIL)
    equality_partitions = _equality_partitions(view, augmented)

    # ---- Step 3: range subsumption -------------------------------------------
    result.match_progress = (1, augmentation)
    check_ranges = context.check_ranges
    check_or_ranges = context.check_or_ranges
    check_residuals = context.check_residuals
    view_sets = _interval_sets_from_items(context.range_items, augmented)
    if extras or check_ranges or check_or_ranges:
        query_test_sets = _interval_sets(
            tuple(query.classified.range_predicates) + check_ranges,
            tuple(query.or_ranges) + check_or_ranges,
            augmented,
        )
    else:
        # No per-view antecedent strengthening and no class augmentation:
        # the query-side sets are view-independent and memoized per query.
        query_test_sets = _query_range_sets(query)
    for representative, view_set in view_sets.items():
        query_set = query_test_sets.get(representative, UNBOUNDED_SET)
        if not view_set.contains(query_set):
            raise _Reject(
                RejectReason.RANGE,
                f"view range {view_set} does not contain query range "
                f"{query_set}",
            )
    result.match_progress = (2, augmentation)
    range_compensations, or_range_compensations = _range_compensations(
        query, view, augmented, context.range_items
    )

    # ---- Step 4: residual subsumption ----------------------------------------
    residual_compensations = _residual_subsumption(
        query, view, augmented, check_residuals
    )

    # ---- Step 5: build and map compensating predicates ------------------------
    outputs = context.fresh_outputs()
    if options.allow_backjoins and not view.is_aggregate:
        backjoins = _BackjoinState(view, augmented)
        backjoins.outputs = outputs
        outputs.backjoins = backjoins
    compensations: list[Expression] = []
    for partition in equality_partitions:
        compensations.extend(_map_equality_partition(partition, outputs, view))
        result.compensating_equalities += len(partition) - 1
    result.match_progress = (3, augmentation)
    for representative, op, value in range_compensations:
        reference = outputs.column_for(representative, augmented)
        if reference is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"no output column for range compensation on {representative}",
            )
        compensations.append(BinaryOp(op, reference, Literal(value)))
        result.compensating_ranges += 1
    result.match_progress = (4, augmentation)
    for expression in or_range_compensations:
        mapped = _map_expression(expression, augmented, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                "disjunctive range compensation not computable from view",
            )
        compensations.append(mapped)
        result.compensating_ranges += 1
    for form in residual_compensations:
        mapped = _map_expression(form.expression, augmented, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"residual compensation {form.template} not computable from view",
            )
        compensations.append(mapped)
        result.compensating_residuals += 1

    # ---- Step 6: outputs and aggregation --------------------------------------
    if not query.is_aggregate:
        select_items = _map_spj_outputs(query, augmented, outputs, options)
        group_by: tuple[Expression, ...] = ()
    elif not view.is_aggregate:
        select_items, group_by = _map_aggregation_over_spj_view(
            query, augmented, outputs, options
        )
    else:
        select_items, group_by, regrouped = _map_aggregation_over_agg_view(
            query, view, augmented, outputs, options
        )
        result.regrouped = regrouped

    from_tables = [TableRef(name=outputs.view_name)]
    if outputs.backjoins is not None and outputs.backjoins.joined:
        result.backjoined_tables = outputs.backjoins.tables()
        from_tables.extend(TableRef(name=t) for t in result.backjoined_tables)
        compensations.extend(outputs.backjoins.join_predicates())
    result.substitute = SelectStatement(
        select_items=tuple(select_items),
        from_tables=tuple(from_tables),
        where=conjunction(compensations),
        group_by=tuple(group_by),
        distinct=query.statement.distinct,
    )
    # Split the conjunct list around the range slice so a template replay
    # can splice rebuilt range constants between the (shape-stable)
    # equality prefix and residual/backjoin suffix.
    equalities = result.compensating_equalities
    ranges = result.compensating_ranges
    result.template_parts = (
        tuple(compensations[:equalities]),
        tuple(compensations[equalities + ranges:]),
        augmentation,
    )


# ---------------------------------------------------------------------------
# Step helpers
# ---------------------------------------------------------------------------


def _eliminate_extras(
    query: SpjgDescription,
    view: SpjgDescription,
    extras: frozenset[str],
    edges: tuple[FkEdge, ...],
) -> tuple[FkEdge, ...]:
    elimination = eliminate_tables(view.tables, list(edges), removable=extras)
    if not elimination.eliminated_all(extras):
        leftover = extras & elimination.remaining
        raise _Reject(
            RejectReason.EXTRA_TABLES,
            f"cannot eliminate {sorted(leftover)} via cardinality-preserving joins",
        )
    for edge in elimination.used_edges:
        if edge.nullable:
            _verify_null_rejection(query, edge)
    return elimination.used_edges


def _verify_null_rejection(query: SpjgDescription, edge: FkEdge) -> None:
    """The Section 3.2 extension: a nullable FK column is acceptable when the
    query discards NULLs in it anyway (a range or IS NOT NULL predicate)."""
    table = query.catalog.table(edge.source)
    for child_key, _parent_key in edge.column_pairs:
        if not table.is_nullable(child_key[1]):
            continue
        if child_key not in query.eqclasses:
            raise _Reject(
                RejectReason.NULLABLE_FK,
                f"nullable FK column {child_key} not referenced by the query",
            )
        representative = query.eqclasses.find(child_key)
        if representative in query.ranges:
            continue  # any range predicate rejects NULLs
        if _has_null_rejecting_residual(query, child_key):
            continue
        raise _Reject(
            RejectReason.NULLABLE_FK,
            f"no null-rejecting query predicate on {child_key}",
        )


def _has_null_rejecting_residual(query: SpjgDescription, key: ColumnKey) -> bool:
    for form in query.residual_forms:
        expr = form.expression
        if isinstance(expr, IsNull) and expr.negated:
            operand = expr.operand
            if isinstance(operand, ColumnRef) and query.eqclasses.same_class(
                operand.key, key
            ):
                return True
        if isinstance(expr, BinaryOp) and expr.is_comparison():
            for ref in expr.column_refs():
                if query.eqclasses.same_class(ref.key, key):
                    return True
    return False


def _equality_partitions(
    view: SpjgDescription, augmented: EquivalenceClasses
) -> list[list[frozenset[ColumnKey]]]:
    """Group view equivalence classes by the query class they map into.

    Each returned partition lists the view classes falling into one query
    class; partitions of size >= 2 need len-1 compensating column-equality
    predicates to merge them (Section 3.1.2, equijoin subsumption).
    """
    by_query_root: dict[ColumnKey, dict[ColumnKey, frozenset[ColumnKey]]] = {}
    for view_class in view.eqclasses.classes():
        member = next(iter(view_class))
        if member not in augmented:
            continue
        query_root = augmented.find(member)
        view_root = view.eqclasses.find(member)
        by_query_root.setdefault(query_root, {})[view_root] = view_class
    return [
        sorted(partitions.values(), key=lambda cls: sorted(cls))
        for partitions in by_query_root.values()
        if len(partitions) > 1
    ]


def _map_equality_partition(
    partition: list[frozenset[ColumnKey]],
    outputs: _ViewOutputs,
    view: SpjgDescription,
) -> list[Expression]:
    """Build the compensating equality chain for one query class.

    The paper's rule: these references may be rerouted within their *view*
    equivalence class only -- which is exactly "pick any member of the view
    class that is exposed as an output column".
    """
    references: list[ColumnRef] = []
    for view_class in partition:
        exposed = next(
            (
                ColumnRef(outputs.view_name, outputs.simple[member])
                for member in sorted(view_class)
                if member in outputs.simple
            ),
            None,
        )
        if exposed is None and outputs.backjoins is not None:
            for member in sorted(view_class):
                exposed = outputs.backjoins.resolve(member)
                if exposed is not None:
                    break
        if exposed is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"no output column in view class {sorted(view_class)} for "
                "compensating equality",
            )
        references.append(exposed)
    return [
        BinaryOp("=", references[i], references[i + 1])
        for i in range(len(references) - 1)
    ]


def _range_items(
    range_predicates: tuple[RangePredicate, ...],
    or_ranges: tuple[OrRangePredicate, ...],
) -> tuple[tuple[ColumnKey, IntervalSet], ...]:
    """Each range-bearing conjunct as a ``(column, interval set)`` pair.

    The equivalence-class grouping depends on the (query-augmented)
    classes of one match, but the per-conjunct interval sets do not --
    precomputing them at registration leaves only the group-and-intersect
    step per invocation.
    """
    items = [
        (predicate.column, IntervalSet.of([predicate.interval()]))
        for predicate in range_predicates
    ]
    items.extend(
        (or_range.column, or_range.interval_set) for or_range in or_ranges
    )
    return tuple(items)


def _interval_sets_from_items(
    items: tuple[tuple[ColumnKey, IntervalSet], ...],
    eqclasses: EquivalenceClasses,
) -> dict[ColumnKey, IntervalSet]:
    """Group per-conjunct interval sets by class and intersect."""
    sets: dict[ColumnKey, IntervalSet] = {}
    for column, interval_set in items:
        representative = eqclasses.find(column)
        current = sets.get(representative, UNBOUNDED_SET)
        sets[representative] = current.intersect(interval_set)
    return sets


def _interval_sets(
    range_predicates: tuple[RangePredicate, ...],
    or_ranges: tuple[OrRangePredicate, ...],
    eqclasses: EquivalenceClasses,
) -> dict[ColumnKey, IntervalSet]:
    """Per-class interval sets: plain bounds intersected with disjunctions."""
    return _interval_sets_from_items(
        _range_items(range_predicates, or_ranges), eqclasses
    )


def _query_plain_ranges(query: SpjgDescription) -> dict[ColumnKey, "Interval"]:
    """The query's own per-class plain range intervals, memoized.

    Same amortization as :func:`_query_range_sets`: valid whenever no
    extra-table augmentation applies, so the derivation runs once per
    query instead of once per template replay.
    """
    ranges = query.__dict__.get("_query_plain_ranges")
    if ranges is None:
        ranges = derive_ranges(
            query.classified.range_predicates, query.eqclasses
        )
        query.__dict__["_query_plain_ranges"] = ranges
    return ranges


def _query_range_sets(query: SpjgDescription) -> dict[ColumnKey, IntervalSet]:
    """The query's own per-class interval sets, memoized on the description.

    Valid whenever no extra-table augmentation and no per-view check
    constraints apply -- which is every candidate of the common equal-table
    case, so the derivation runs once per query instead of once per
    candidate. The pre-verifier builds its query signature from the same
    memo, keeping screen and full match literally in agreement.
    """
    sets = query.__dict__.get("_query_range_sets")
    if sets is None:
        sets = _interval_sets(
            tuple(query.classified.range_predicates),
            tuple(query.or_ranges),
            query.eqclasses,
        )
        query.__dict__["_query_range_sets"] = sets
    return sets


def range_reject_detail(
    query: SpjgDescription, context: ViewMatchContext
) -> str | None:
    """The exact RANGE reject detail ``_match`` would raise, or None.

    Re-runs the real containment loop (same interval sets, same iteration
    order, same f-string) so a pre-verifier RANGE verdict carries the
    identical detail; ``None`` means the real test would not reject --
    callers must then fall through to the full match.
    """
    try:
        view_sets = _interval_sets_from_items(
            context.range_items, query.eqclasses
        )
        if context.check_ranges or context.check_or_ranges:
            query_test_sets = _interval_sets(
                tuple(query.classified.range_predicates) + context.check_ranges,
                tuple(query.or_ranges) + context.check_or_ranges,
                query.eqclasses,
            )
        else:
            query_test_sets = _query_range_sets(query)
    except KeyError:
        return None  # view column unknown to the query's classes
    for representative, view_set in view_sets.items():
        query_set = query_test_sets.get(representative, UNBOUNDED_SET)
        if not view_set.contains(query_set):
            return (
                f"view range {view_set} does not contain query range "
                f"{query_set}"
            )
    return None


def _range_compensations(
    query: SpjgDescription,
    view: SpjgDescription,
    augmented: EquivalenceClasses,
    view_range_items: tuple[tuple[ColumnKey, IntervalSet], ...],
) -> tuple[list[tuple[ColumnKey, str, object]], list["Expression"]]:
    """Compensating range predicates, assuming containment already holds.

    Classes where neither side has a disjunctive range use the paper's
    bound-difference rule. Classes involving disjunctions are compensated
    by re-applying *all* of the query's range conjuncts on that class --
    sound (it reduces the view to exactly the query's range constraints)
    and simple, at the cost of occasionally re-checking a bound the view
    already enforces.
    """
    query_plain = derive_ranges(query.classified.range_predicates, augmented)
    view_plain = derive_ranges(view.classified.range_predicates, augmented)
    or_representatives: set[ColumnKey] = {
        augmented.find(orr.column) for orr in query.or_ranges
    } | {
        augmented.find(orr.column)
        for orr in view.or_ranges
        if orr.column in augmented
    }
    plain_compensations: list[tuple[ColumnKey, str, object]] = []
    for representative, query_interval in query_plain.items():
        if representative in or_representatives:
            continue
        view_interval = view_plain.get(representative, UNBOUNDED)
        for op, value in compensating_range_conjuncts(view_interval, query_interval):
            plain_compensations.append((representative, op, value))
    or_compensations: list[Expression] = []
    if or_representatives:
        query_sets = _interval_sets(
            query.classified.range_predicates, query.or_ranges, augmented
        )
        view_sets = _interval_sets_from_items(view_range_items, augmented)
        for representative in sorted(or_representatives):
            query_set = query_sets.get(representative)
            if query_set is None:
                continue  # only the view is constrained; nothing to narrow
            if view_sets.get(representative) == query_set:
                continue
            for predicate in query.classified.range_predicates:
                if augmented.find(predicate.column) == representative:
                    or_compensations.append(
                        BinaryOp(
                            predicate.op,
                            ColumnRef(*predicate.column),
                            Literal(predicate.value),
                        )
                    )
            for or_range in query.or_ranges:
                if augmented.find(or_range.column) == representative:
                    or_compensations.append(or_range.expression)
    return plain_compensations, or_compensations


def _check_constraint_predicates(
    view: SpjgDescription, options: MatchOptions
) -> tuple[
    tuple[RangePredicate, ...],
    tuple[OrRangePredicate, ...],
    tuple[ShallowForm, ...],
]:
    """Check constraints of all view tables, classified for the antecedent.

    Check constraints hold on every row of a table, so they can be added to
    the query's where-clause without changing its result -- strengthening
    the antecedent of the implication tests (Section 3.1.2).
    """
    if not options.use_check_constraints:
        return (), (), ()
    ranges: list[RangePredicate] = []
    or_ranges: list[OrRangePredicate] = []
    residuals: list[ShallowForm] = []
    for table in sorted(view.tables):
        for check in view.catalog.table(table).check_constraints:
            classified = classify_predicate(check.predicate)
            ranges.extend(classified.range_predicates)
            for conjunct in classified.residuals:
                recognised = (
                    as_or_range(conjunct) if options.support_or_ranges else None
                )
                if recognised is not None:
                    or_ranges.append(recognised)
                else:
                    residuals.append(ShallowForm.of(conjunct))
            # Column equalities inside check constraints are ignored: they
            # are vanishingly rare and would complicate class augmentation.
    return tuple(ranges), tuple(or_ranges), tuple(residuals)


def _residual_subsumption(
    query: SpjgDescription,
    view: SpjgDescription,
    augmented: EquivalenceClasses,
    check_residuals: tuple[ShallowForm, ...],
) -> tuple[ShallowForm, ...]:
    """Residual test; returns the query residuals needing compensation.

    Check-constraint residuals participate as antecedent conjuncts (a view
    residual may match one) but never need compensation themselves.
    """
    antecedent = tuple(query.residual_forms) + check_residuals
    matched_real: set[int] = set()
    for view_form in view.residual_forms:
        found = False
        for i, query_form in enumerate(antecedent):
            if view_form.matches(query_form, augmented):
                found = True
                if i < len(query.residual_forms):
                    matched_real.add(i)
        if not found:
            raise _Reject(
                RejectReason.RESIDUAL,
                f"view residual {view_form.template} not implied by the query",
            )
    return tuple(
        form
        for i, form in enumerate(query.residual_forms)
        if i not in matched_real
    )


# ---------------------------------------------------------------------------
# Expression mapping (Sections 3.1.3 / 3.1.4)
# ---------------------------------------------------------------------------


def _map_expression(
    expression: Expression,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
    allow_top_match: bool = True,
) -> Expression | None:
    """Rewrite an expression over base tables into one over view outputs.

    Constants pass through; a column reference reroutes within its
    equivalence class to an exposed output column; a whole expression that
    matches a view output expression becomes a reference to that column
    (always tried for output expressions, and for arbitrary subexpressions
    only under the ``map_complex_expressions`` extension). Returns None
    when the expression cannot be computed from the view's output.
    """
    if isinstance(expression, Literal):
        return expression
    if isinstance(expression, ColumnRef):
        return outputs.column_for(expression.key, eqclasses)
    if allow_top_match or options.map_complex_expressions:
        matched = outputs.expression_output_for(ShallowForm.of(expression), eqclasses)
        if matched is not None:
            return matched
    children = expression.children()
    mapped_children: list[Expression] = []
    for child in children:
        mapped = _map_expression(
            child,
            eqclasses,
            outputs,
            options,
            allow_top_match=options.map_complex_expressions,
        )
        if mapped is None:
            return None
        mapped_children.append(mapped)
    return expression.with_children(mapped_children)


def _map_spj_outputs(
    query: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> list[SelectItem]:
    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_expression(info.expression, eqclasses, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"output {info.form.template} not computable from view",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items


def _map_aggregation_over_spj_view(
    query: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> tuple[list[SelectItem], tuple[Expression, ...]]:
    """An aggregation query over an SPJ view: re-aggregate the view's rows.

    The view's rows are (after compensation) exactly the query's SPJ rows
    with the right duplication factor, so every aggregate is recomputed
    with its argument rerouted to view outputs.
    """
    group_by: list[Expression] = []
    for expr in query.statement.group_by:
        mapped = _map_expression(expr, eqclasses, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"grouping expression {expr} not computable from view",
            )
        group_by.append(mapped)
    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_aggregate_aware(
            info.expression, eqclasses, outputs, options, _recompute_aggregate
        )
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"output {info.form.template} not computable from view",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items, tuple(group_by)


def _recompute_aggregate(
    call: FuncCall,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> Expression | None:
    if call.star:
        return call
    mapped = _map_expression(call.args[0], eqclasses, outputs, options)
    if mapped is None:
        return None
    return FuncCall(call.name, (mapped,))


def _map_aggregation_over_agg_view(
    query: SpjgDescription,
    view: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> tuple[list[SelectItem], tuple[Expression, ...], bool]:
    """An aggregation query over an aggregation view (Section 3.3).

    The query's grouping list must be a subset of the view's (each query
    grouping expression matches a view grouping expression under the query
    equivalence classes). A strict subset needs a compensating group-by;
    aggregates roll up: count(*) becomes SUM(count_big), SUM(E) becomes
    SUM of the view's SUM column.
    """
    matched_view_groups: set[int] = set()
    for query_form in query.group_forms:
        found = False
        for i, view_form in enumerate(view.group_forms):
            if view_form.matches(query_form, eqclasses):
                matched_view_groups.add(i)
                found = True
        if not found:
            raise _Reject(
                RejectReason.GROUPING,
                f"query grouping expression {query_form.template} not in view "
                "grouping list",
            )
    regroup = len(matched_view_groups) < len(view.group_forms)

    group_by: list[Expression] = []
    if regroup:
        for expr in query.statement.group_by:
            mapped = _map_expression(expr, eqclasses, outputs, options)
            if mapped is None:
                raise _Reject(
                    RejectReason.OUTPUT_MAPPING,
                    f"grouping expression {expr} not computable from view",
                )
            group_by.append(mapped)

    # A regrouped *global* aggregation (empty query group-by) must produce
    # its one output row even when compensation removes every view row;
    # SUM over that empty input is NULL, so the rolled-up count needs a
    # COALESCE back to 0 (plain SQL: COUNT over empty input is 0).
    guard_empty = regroup and not query.statement.group_by

    def rollup(
        call: FuncCall,
        eqc: EquivalenceClasses,
        out: _ViewOutputs,
        opts: MatchOptions,
    ) -> Expression | None:
        return _rollup_aggregate(call, eqc, out, regroup, guard_empty)

    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_aggregate_aware(
            info.expression, eqclasses, outputs, options, rollup
        )
        if mapped is None:
            raise _Reject(
                RejectReason.AGGREGATE,
                f"output {info.form.template} not derivable from view aggregates",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items, tuple(group_by), regroup


def _rollup_aggregate(
    call: FuncCall,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    regroup: bool,
    guard_empty: bool = False,
) -> Expression | None:
    """Derive one query aggregate from an aggregation view's outputs.

    ``guard_empty`` marks a regrouped global aggregation, where the
    compensated view rows may be empty: the rolled-up row count then
    becomes ``coalesce(sum(cnt), 0)`` so the substitute reports 0 rows
    (not NULL) exactly as ``count(*)`` over an empty input does, while
    SUM correctly stays NULL.
    """
    if call.name in ("count", "count_big") and call.star:
        if outputs.count_big_column is None:
            return None
        counter = ColumnRef(outputs.view_name, outputs.count_big_column)
        if not regroup:
            return counter
        summed: Expression = FuncCall("sum", (counter,))
        if guard_empty:
            summed = FuncCall("coalesce", (summed, Literal(0)))
        return summed
    if call.name == "sum":
        reference = outputs.sum_output_for(call.args[0], eqclasses)
        if reference is None:
            return None
        return FuncCall("sum", (reference,)) if regroup else reference
    if call.name == "avg":
        total = _rollup_aggregate(
            FuncCall("sum", call.args), eqclasses, outputs, regroup
        )
        counter = _rollup_aggregate(
            FuncCall("count_big", star=True), eqclasses, outputs, regroup, guard_empty
        )
        if total is None or counter is None:
            return None
        return BinaryOp("/", total, counter)
    # count(E) over an aggregation view cannot be derived: the view lost the
    # per-row NULL information.
    return None


# ---------------------------------------------------------------------------
# Compensation-template cache
# ---------------------------------------------------------------------------
#
# Successful matches of the same *query shape* against the same registered
# view differ only in range constants: every other step (equijoin
# partitions, residual matching, output/grouping mapping, backjoins) is a
# pure function of the shape fingerprint below plus the registration-time
# context. A template stores the finished substitute skeleton with the
# range conjuncts cut out; a hit re-runs only the range subsumption test
# and rebuilds the range constants.


#: Template kinds, by how far the stored outcome is constant-independent.
#: Every ``_match`` step except range containment (step 3) and
#: range-compensation mapping (step 5's range slice) depends only on the
#: query's shape fingerprint, so a reject raised *outside* those two
#: points replays verbatim once the constant-dependent checks up to its
#: raise point have re-run. Rejects raised *at* those points are stored
#: as "unknown" templates that replay the verified constant-independent
#: prefix and fall back to the full match if the constant-dependent check
#: now passes.
_TPL_SUCCESS = 0          # full match succeeded; replay builds the substitute
_TPL_REJECT_PRE = 1       # rejected in steps 1-2; replay raises immediately
_TPL_RANGE_UNKNOWN = 2    # rejected at containment; steps 1-2 verified
_TPL_REJECT_MID = 3       # rejected between containment and range mapping
_TPL_MAP_UNKNOWN = 4      # rejected at range mapping; prefix verified
_TPL_REJECT_POST = 5      # rejected after range mapping


@dataclass(frozen=True, slots=True)
class _CompensationTemplate:
    kind: int
    #: Extra-table elimination outcome and the ``(columns, equalities)``
    #: class-augmentation lists (or None) that rebuild step 1's augmented
    #: classes without re-running the FK graph search. The elimination
    #: search and its null-rejection check read only fingerprint-stable
    #: query facts (table set, class membership, range-column presence,
    #: residual shapes), so the outcome replays verbatim.
    eliminated: tuple[str, ...]
    augmentation: tuple | None
    #: Raise-time compensation counters (fingerprint-stable; the range
    #: count is recomputed at replay because it depends on constants).
    equalities: int
    residuals: int
    #: Stored reject for the _TPL_REJECT_* kinds.
    reject_reason: RejectReason | None = None
    reject_detail: str = ""
    #: Range-class representative -> resolved view output reference, or
    #: None when no output column exists (a compensation need then raises
    #: the same PREDICATE_MAPPING reject the full match would). Used by
    #: every kind that replays past range mapping.
    range_refs: dict | None = None
    #: View-side range structures precomputed at store time for the
    #: unaugmented case: the per-class containment sets (as items) and
    #: the per-class plain intervals the bound-difference rule reads.
    #: Both are keyed by store-time class representatives; equal
    #: fingerprints share the class *partition* (it is part of the
    #: fingerprint), and replays guard each stored representative with
    #: ``find(rep) == rep`` -- any canonical-representative drift bails
    #: to the full match instead of trusting a stale key.
    view_sets: tuple = ()
    view_plain: dict | None = None
    #: Success-only substitute skeleton.
    select_items: tuple = ()
    from_tables: tuple = ()
    group_by: tuple = ()
    distinct: bool = False
    prefix: tuple = ()       # compensating equalities
    suffix: tuple = ()       # residual compensations + backjoin predicates
    regrouped: bool = False
    backjoined: tuple[str, ...] = ()


#: ``(context serial, query fingerprint) -> _CompensationTemplate``.
#: Insertion-ordered; eviction drops the oldest entry. A plain dict keeps
#: lookups race-tolerant under the serving layer's reader threads (at
#: worst a concurrent eviction makes a ``get`` miss).
_TEMPLATE_CACHE: dict = {}
_TEMPLATE_CACHE_LIMIT = 4096
_template_hits = 0
_template_stores = 0
_UNSET = object()


def template_cache_info() -> dict:
    """Hit/store counters and current size (benchmark reporting)."""
    return {
        "hits": _template_hits,
        "stores": _template_stores,
        "entries": len(_TEMPLATE_CACHE),
    }


def clear_template_cache() -> None:
    """Drop all templates and reset counters (tests and benchmarks)."""
    global _template_hits, _template_stores
    _TEMPLATE_CACHE.clear()
    _template_hits = 0
    _template_stores = 0


def _template_fingerprint(query: SpjgDescription):
    """The query's shape fingerprint: everything but range constants.

    Two queries with equal fingerprints agree on tables (hence on the
    seeded column universe), equivalence classes, residual and output
    expressions, grouping, DISTINCT, and the (column, op) skeleton of
    their range predicates -- every ``match_view`` step except the range
    subsumption test and range-constant compensations is then identical.
    Queries with disjunctive ranges are not fingerprinted (None).
    """
    fingerprint = query.__dict__.get("_template_fp", _UNSET)
    if fingerprint is not _UNSET:
        return fingerprint
    if query.or_ranges:
        fingerprint = None
    else:
        fingerprint = (
            query.tables,
            query.is_aggregate,
            query.statement.distinct,
            tuple(
                sorted(
                    tuple(sorted(cls))
                    for cls in query.eqclasses.nontrivial_classes()
                )
            ),
            tuple(
                sorted(
                    (predicate.column, predicate.op)
                    for predicate in query.classified.range_predicates
                )
            ),
            tuple(repr(form.expression) for form in query.residual_forms),
            tuple(
                (info.item.alias, repr(info.expression))
                for info in query.outputs
            ),
            tuple(repr(expr) for expr in query.statement.group_by),
        )
    query.__dict__["_template_fp"] = fingerprint
    return fingerprint


def _store_template(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    result: MatchResult,
) -> None:
    """Cache a successful match's compensation skeleton, when safe.

    Not stored: views with disjunctive ranges (compensated by re-applying
    query conjuncts wholesale) and any range class whose compensation
    would have to resolve through a backjoin (resolution could alter the
    join skeleton between store and hit time). Extra-table eliminations
    *are* stored: the elimination search and its null-rejection check
    read only fingerprint-stable facts, so the template carries the
    outcome and the class augmentation needed to replay it.
    """
    global _template_stores
    if result.substitute is None or result.template_parts is None:
        return
    if view.or_ranges:
        return
    fingerprint = _template_fingerprint(query)
    if fingerprint is None:
        return
    prefix, suffix, augmentation = result.template_parts
    range_refs = _derive_range_refs(query, view, options, context, augmentation)
    if range_refs is None:
        return
    view_sets, view_plain = _stored_view_ranges(
        query, view, context, augmentation, need_plain=True
    )
    substitute = result.substitute
    _cache_put(
        (context.serial, fingerprint),
        _CompensationTemplate(
            kind=_TPL_SUCCESS,
            eliminated=result.eliminated_tables,
            augmentation=augmentation,
            equalities=result.compensating_equalities,
            residuals=result.compensating_residuals,
            range_refs=range_refs,
            view_sets=view_sets,
            view_plain=view_plain,
            select_items=substitute.select_items,
            from_tables=substitute.from_tables,
            group_by=substitute.group_by,
            distinct=substitute.distinct,
            prefix=prefix,
            suffix=suffix,
            regrouped=result.regrouped,
            backjoined=result.backjoined_tables,
        ),
    )
    _template_stores += 1


def _stored_view_ranges(
    query: SpjgDescription,
    view: SpjgDescription,
    context: ViewMatchContext,
    augmentation: tuple | None,
    need_plain: bool,
) -> tuple[tuple, dict | None]:
    """The view-side range structures a template can replay verbatim.

    Only the unaugmented case is precomputed: with extra-table
    elimination the grouping classes are query-augmented, so replays
    rebuild them (the rare path). The returned structures are functions
    of the view's registration-time range conjuncts and the query's
    class partition -- both fingerprint-stable -- keyed by store-time
    representatives, which replays re-validate with ``find``.
    """
    if augmentation is not None:
        return (), None
    eqclasses = query.eqclasses
    view_sets = tuple(
        _interval_sets_from_items(context.range_items, eqclasses).items()
    )
    view_plain = (
        derive_ranges(view.classified.range_predicates, eqclasses)
        if need_plain
        else None
    )
    return view_sets, view_plain


def _derive_range_refs(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    augmentation: tuple | None,
) -> dict | None:
    """Range-class representative -> view output reference (or None).

    ``None`` overall means "do not template": some class has no direct
    output column while backjoins are enabled, so resolution at replay
    time could alter the join skeleton.
    """
    if augmentation is None:
        eqclasses = query.eqclasses
    else:
        eqclasses = _augment_classes(query.eqclasses, *augmentation)
    range_refs: dict = {}
    for representative in derive_ranges(
        query.classified.range_predicates, eqclasses
    ):
        direct = context.outputs.direct_column_for(representative, eqclasses)
        if direct is None:
            if options.allow_backjoins and not view.is_aggregate:
                return None
            range_refs[representative] = None
        else:
            range_refs[representative] = direct
    return range_refs


#: Reject phase (``MatchResult.match_progress``) -> stored template kind.
_REJECT_KINDS = {
    0: _TPL_REJECT_PRE,
    1: _TPL_RANGE_UNKNOWN,
    2: _TPL_REJECT_MID,
    3: _TPL_MAP_UNKNOWN,
    4: _TPL_REJECT_POST,
}


def _store_reject_template(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    result: MatchResult,
) -> None:
    """Cache a full-match reject's replayable outcome, when safe.

    The raise phase recorded by ``_match`` decides the kind: rejects in
    the constant-independent steps replay directly (after re-running any
    constant-dependent checks that precede them), while rejects *at* the
    range containment test or the range-compensation mapping -- whose
    outcome depends on the query's range constants -- are stored as
    "unknown" templates that only fast-path the verified prefix.
    """
    global _template_stores
    if view.or_ranges:
        return
    fingerprint = _template_fingerprint(query)
    if fingerprint is None:
        return
    phase, augmentation = result.match_progress
    kind = _REJECT_KINDS[phase]
    range_refs: dict | None = None
    needs_plain = kind in (_TPL_MAP_UNKNOWN, _TPL_REJECT_POST)
    if needs_plain:
        range_refs = _derive_range_refs(
            query, view, options, context, augmentation
        )
        if range_refs is None:
            return
    if kind == _TPL_REJECT_PRE:
        view_sets, view_plain = (), None
    else:
        view_sets, view_plain = _stored_view_ranges(
            query, view, context, augmentation, need_plain=needs_plain
        )
    _cache_put(
        (context.serial, fingerprint),
        _CompensationTemplate(
            kind=kind,
            eliminated=result.eliminated_tables,
            augmentation=augmentation,
            equalities=result.compensating_equalities,
            residuals=result.compensating_residuals,
            reject_reason=result.reject_reason,
            reject_detail=result.reject_detail,
            range_refs=range_refs,
            view_sets=view_sets,
            view_plain=view_plain,
        ),
    )
    _template_stores += 1


def _cache_put(key: tuple, template: _CompensationTemplate) -> None:
    cache = _TEMPLATE_CACHE
    if key not in cache and len(cache) >= _TEMPLATE_CACHE_LIMIT:
        try:
            del cache[next(iter(cache))]
        except (StopIteration, KeyError, RuntimeError):
            pass
    cache[key] = template


def _augment_classes(
    eqclasses: EquivalenceClasses,
    columns: tuple,
    equalities: tuple,
) -> EquivalenceClasses:
    """The extra-table class augmentation ``_match`` performs in step 1,
    replayed from a template's stored column/equality lists (same
    insertion order, so the merged classes are identical)."""
    augmented = eqclasses.copy()
    for key in columns:
        augmented.add_column(key)
    for child_key, parent_key in equalities:
        augmented.add_equality(child_key, parent_key)
    return augmented


def _try_template(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    result: MatchResult,
) -> bool:
    """Replay a cached template; True when ``result`` was filled in.

    The fingerprint guarantees every step except range containment and
    range-compensation mapping is byte-identical to the stored walk, so
    only those re-run: the real containment loop (raising the identical
    RANGE reject on failure) and the range-constant compensations
    (raising the identical PREDICATE_MAPPING reject when a class has no
    output column). The constant-independent outcome beyond them --
    success or a stored reject -- then replays verbatim.
    Eliminated-extra-table templates rebuild the augmented classes from
    the stored column/equality lists instead of re-running the FK graph
    search -- the elimination outcome itself is fingerprint-stable. A
    ``False`` return falls through to the full match; a stored reject is
    raised as ``_Reject`` exactly like the full match would.
    """
    global _template_hits
    fingerprint = _template_fingerprint(query)
    if fingerprint is None:
        return False
    template = _TEMPLATE_CACHE.get((context.serial, fingerprint))
    if template is None:
        return False
    kind = template.kind
    # Mirror the raise-time state of the full match: step 1 records the
    # eliminated extras before any later reject, and the raise-time
    # compensation counters are fingerprint-stable.
    result.eliminated_tables = template.eliminated
    if kind == _TPL_REJECT_PRE:
        result.compensating_equalities = template.equalities
        result.compensating_residuals = template.residuals
        _template_hits += 1
        raise _Reject(template.reject_reason, template.reject_detail)
    if template.augmentation is not None:
        augmented = _augment_classes(query.eqclasses, *template.augmentation)
        view_set_items = _interval_sets_from_items(
            context.range_items, augmented
        ).items()
    else:
        augmented = query.eqclasses
        # Replay the view-side sets stored at derivation time: the class
        # partition is part of the fingerprint, so the stored grouping is
        # this query's grouping unless the canonical representative of a
        # class drifted -- checked per key, bailing to the full match.
        for representative, _ in template.view_sets:
            if augmented.find(representative) != representative:
                result.eliminated_tables = ()
                return False
        view_set_items = template.view_sets
    if (
        template.augmentation is not None
        or context.check_ranges
        or context.check_or_ranges
    ):
        query_test_sets = _interval_sets(
            tuple(query.classified.range_predicates) + context.check_ranges,
            tuple(query.or_ranges) + context.check_or_ranges,
            augmented,
        )
    else:
        query_test_sets = _query_range_sets(query)
    for representative, view_set in view_set_items:
        query_set = query_test_sets.get(representative, UNBOUNDED_SET)
        if not view_set.contains(query_set):
            _template_hits += 1
            raise _Reject(
                RejectReason.RANGE,
                f"view range {view_set} does not contain query range "
                f"{query_set}",
            )
    if kind == _TPL_REJECT_MID:
        result.compensating_equalities = template.equalities
        result.compensating_residuals = template.residuals
        _template_hits += 1
        raise _Reject(template.reject_reason, template.reject_detail)
    if kind == _TPL_RANGE_UNKNOWN:
        # The stored walk never got past containment; this query's
        # constants do. Hand off to the full match, which will upgrade
        # the cache entry with whatever it finds.
        result.eliminated_tables = ()
        return False
    if template.view_plain is not None:
        # Fast bound-difference pass: the view-side intervals replay from
        # the store (guarded above), and the query side is memoized on
        # the description -- only the (op, constant) pairs are fresh.
        view_plain = template.view_plain
        plain = [
            (representative, op, value)
            for representative, query_interval in _query_plain_ranges(
                query
            ).items()
            for op, value in compensating_range_conjuncts(
                view_plain.get(representative, UNBOUNDED), query_interval
            )
        ]
    else:
        plain, or_compensations = _range_compensations(
            query, view, augmented, context.range_items
        )
        if or_compensations:
            result.eliminated_tables = ()
            return False  # cannot arise (no disjunctions on either side)
    compensations: list[Expression] = []
    range_refs = template.range_refs
    for representative, op, value in plain:
        if representative not in range_refs:
            result.eliminated_tables = ()
            return False
        reference = range_refs[representative]
        if reference is None:
            result.compensating_equalities = template.equalities
            result.compensating_ranges = len(compensations)
            _template_hits += 1
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"no output column for range compensation on {representative}",
            )
        compensations.append(BinaryOp(op, reference, Literal(value)))
    if kind == _TPL_REJECT_POST:
        result.compensating_equalities = template.equalities
        result.compensating_ranges = len(compensations)
        result.compensating_residuals = template.residuals
        _template_hits += 1
        raise _Reject(template.reject_reason, template.reject_detail)
    if kind == _TPL_MAP_UNKNOWN:
        # The stored walk rejected at range mapping; this query's
        # compensation needs all mapped. Fall through to the full match.
        result.eliminated_tables = ()
        result.compensating_equalities = 0
        result.compensating_ranges = 0
        return False
    result.substitute = SelectStatement(
        select_items=template.select_items,
        from_tables=template.from_tables,
        where=conjunction(
            list(template.prefix) + compensations + list(template.suffix)
        ),
        group_by=template.group_by,
        distinct=template.distinct,
    )
    result.compensating_equalities = template.equalities
    result.compensating_ranges = len(compensations)
    result.compensating_residuals = template.residuals
    result.regrouped = template.regrouped
    result.backjoined_tables = template.backjoined
    _template_hits += 1
    return True


def _map_aggregate_aware(
    expression: Expression,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
    aggregate_handler,
) -> Expression | None:
    """Map an output expression, dispatching aggregate calls to a handler."""
    if isinstance(expression, FuncCall) and expression.is_aggregate():
        return aggregate_handler(expression, eqclasses, outputs, options)
    if not expression.contains_aggregate():
        return _map_expression(expression, eqclasses, outputs, options)
    mapped_children: list[Expression] = []
    for child in expression.children():
        mapped = _map_aggregate_aware(
            child, eqclasses, outputs, options, aggregate_handler
        )
        if mapped is None:
            return None
        mapped_children.append(mapped)
    return expression.with_children(mapped_children)
