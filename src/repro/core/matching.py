"""The view-matching algorithm (Section 3 of the paper).

Given the descriptions of a query SPJG expression and a candidate
materialized view, decide whether the query can be computed from the view
alone and, if so, construct the substitute expression over the view:

1. table-set containment, with extra view tables eliminated through
   cardinality-preserving foreign-key joins (Section 3.2),
2. the equijoin subsumption test over column equivalence classes,
3. the range subsumption test over per-class intervals,
4. the residual subsumption test via shallow expression matching,
5. mapping of compensating predicates and output expressions to view
   output columns,
6. aggregation handling: group-by subset check, compensating group-by,
   count(*) -> SUM(count_big), AVG -> SUM/COUNT_BIG (Section 3.3).

Every rejection carries a :class:`RejectReason` so tests and the
experiment harness can report where candidates die.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum, auto

from ..sql.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsNull,
    Literal,
    conjunction,
)
from ..sql.statements import SelectItem, SelectStatement, TableRef
from .describe import SpjgDescription
from .equivalence import ColumnKey, EquivalenceClasses
from .fkgraph import FkEdge, build_fk_join_graph, eliminate_tables
from .intervalsets import IntervalSet, OrRangePredicate, UNBOUNDED_SET, as_or_range
from .normalize import classify_predicate
from .options import DEFAULT_OPTIONS, MatchOptions
from .ranges import (
    RangePredicate,
    UNBOUNDED,
    compensating_range_conjuncts,
    derive_ranges,
)
from .residual import ShallowForm


class RejectReason(Enum):
    """Where in the pipeline a candidate view was rejected."""

    VIEW_KIND = auto()            # aggregation view for a non-aggregation query
    TABLES = auto()               # view lacks some query table
    EXTRA_TABLES = auto()         # extra tables not cardinality-preserving
    NULLABLE_FK = auto()          # nullable FK join without null rejection
    EQUIJOIN = auto()             # equijoin subsumption failed
    RANGE = auto()                # range subsumption failed
    RESIDUAL = auto()             # residual subsumption failed
    PREDICATE_MAPPING = auto()    # compensating predicate not computable
    OUTPUT_MAPPING = auto()       # output expression not computable
    GROUPING = auto()             # query group-by not a subset of the view's
    AGGREGATE = auto()            # aggregate not derivable from view outputs
    STALE = auto()                # view's applied LSN outside the staleness bound


@dataclass
class MatchResult:
    """Outcome of matching one query expression against one view."""

    view: SpjgDescription
    substitute: SelectStatement | None = None
    reject_reason: RejectReason | None = None
    reject_detail: str = ""
    compensating_equalities: int = 0
    compensating_ranges: int = 0
    compensating_residuals: int = 0
    regrouped: bool = False
    eliminated_tables: tuple[str, ...] = ()
    backjoined_tables: tuple[str, ...] = ()

    @property
    def matched(self) -> bool:
        return self.substitute is not None

    def compensation_steps(self) -> list[str]:
        """Human-readable summary of what the substitute had to compensate.

        One line per compensation kind actually applied (extra-table FK
        elimination, backjoins, equality/range/residual predicates,
        group-by rollup); the rewrite-path tracer records these for the
        winning view of each match invocation.
        """
        steps: list[str] = []
        if self.eliminated_tables:
            steps.append(
                "extra-table FK elimination: "
                + ", ".join(self.eliminated_tables)
            )
        if self.backjoined_tables:
            steps.append(
                "backjoined base tables: " + ", ".join(self.backjoined_tables)
            )
        if self.compensating_equalities:
            steps.append(
                f"{self.compensating_equalities} compensating column "
                "equalities"
            )
        if self.compensating_ranges:
            steps.append(
                f"{self.compensating_ranges} compensating range predicates"
            )
        if self.compensating_residuals:
            steps.append(
                f"{self.compensating_residuals} compensating residual "
                "predicates"
            )
        if self.regrouped:
            steps.append("group-by rollup (compensating aggregation)")
        if not steps and self.matched:
            steps.append("exact match, no compensation")
        return steps


class _Reject(Exception):
    """Internal control flow: abandon the match with a reason."""

    def __init__(self, reason: RejectReason, detail: str = ""):
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


@dataclass(slots=True)
class _ViewOutputs:
    """Lookup structures over a view's output list.

    ``slots=True``: one instance lives on every registered view for the
    process lifetime, so per-instance ``__dict__`` overhead is resident
    catalog memory. ``copy.copy`` (see ``fresh_outputs``) works with
    slots classes, which is all the per-match path needs.
    """

    view_name: str
    simple: dict[ColumnKey, str]
    expressions: list[tuple[ShallowForm, str]] = field(default_factory=list)
    aggregates: list[tuple[ShallowForm, str]] = field(default_factory=list)
    count_big_column: str | None = None
    backjoins: "_BackjoinState | None" = None

    @classmethod
    def of(cls, view: SpjgDescription) -> "_ViewOutputs":
        assert view.name is not None
        outputs = cls(view_name=view.name, simple=view.simple_output_map)
        for info in view.expression_outputs:
            assert info.name is not None
            expr = info.expression
            if isinstance(expr, FuncCall) and expr.is_aggregate():
                if expr.name == "count_big" and expr.star:
                    outputs.count_big_column = info.name
                else:
                    outputs.aggregates.append((info.form, info.name))
            else:
                outputs.expressions.append((info.form, info.name))
        return outputs

    def direct_column_for(
        self, key: ColumnKey, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """Reroute ``key`` to an exposed output column (no backjoins)."""
        if key in self.simple:
            return ColumnRef(self.view_name, self.simple[key])
        if key not in eqclasses:
            return None
        for member in sorted(eqclasses.class_of(key)):
            if member in self.simple:
                return ColumnRef(self.view_name, self.simple[member])
        return None

    def column_for(
        self, key: ColumnKey, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """Reroute ``key`` to an output column, backjoining as a last resort."""
        direct = self.direct_column_for(key, eqclasses)
        if direct is not None:
            return direct
        if self.backjoins is not None:
            return self.backjoins.resolve(key)
        return None

    def expression_output_for(
        self, form: ShallowForm, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """A view output column computing exactly this expression."""
        for candidate, name in self.expressions:
            if candidate.matches(form, eqclasses):
                return ColumnRef(self.view_name, name)
        return None

    def sum_output_for(
        self, argument: Expression, eqclasses: EquivalenceClasses
    ) -> ColumnRef | None:
        """The view's SUM output over an equivalent argument expression."""
        wanted = ShallowForm.of(FuncCall("sum", (argument,)))
        for candidate, name in self.aggregates:
            if candidate.matches(wanted, eqclasses):
                return ColumnRef(self.view_name, name)
        return None


class _BackjoinState:
    """Pending base-table backjoins for one match (Section 7 extension).

    A missing column of table T becomes available by joining the view back
    to T on a unique key of T whose columns the view exposes: every view
    row stems from exactly one T row, and the (non-null) unique key
    recovers it, so the join is cardinality preserving. Only meaningful for
    non-aggregation views, where view rows are base-row images.
    """

    def __init__(self, view: SpjgDescription, augmented: EquivalenceClasses):
        self.view = view
        self.augmented = augmented
        self.outputs: _ViewOutputs | None = None
        self.joined: dict[str, tuple[Expression, ...]] = {}

    def resolve(self, key: ColumnKey) -> ColumnRef | None:
        table_name, column = key
        if table_name not in self.view.tables:
            return None
        if table_name in self.joined:
            return ColumnRef(table_name, column)
        assert self.outputs is not None
        table = self.view.catalog.table(table_name)
        for unique_key in table.all_unique_keys():
            if any(table.is_nullable(kc) for kc in unique_key):
                continue  # a NULL key value would break the equijoin
            mapped: list[tuple[ColumnRef, str]] = []
            for key_column in unique_key:
                reference = self.outputs.direct_column_for(
                    (table_name, key_column), self.augmented
                )
                if reference is None:
                    break
                mapped.append((reference, key_column))
            else:
                self.joined[table_name] = tuple(
                    BinaryOp("=", reference, ColumnRef(table_name, key_column))
                    for reference, key_column in mapped
                )
                return ColumnRef(table_name, column)
        return None

    def tables(self) -> tuple[str, ...]:
        return tuple(sorted(self.joined))

    def join_predicates(self) -> tuple[Expression, ...]:
        return tuple(
            predicate
            for table in sorted(self.joined)
            for predicate in self.joined[table]
        )


# Registration-time context tuples repeat heavily across views (check
# constraints and fk edges derive from the catalog tables a view reads,
# and thousands of generated views share the same few table sets), so
# identical tuples are interned to one object. Keys are the tuples
# themselves; the memo stays schema-bounded. Unhashable payloads simply
# skip interning.
_TUPLE_MEMO: dict = {}


def _intern_tuple(value: tuple) -> tuple:
    try:
        return _TUPLE_MEMO.setdefault(value, value)
    except TypeError:
        return value


@dataclass(frozen=True, slots=True)
class ViewMatchContext:
    """Frozen per-view matching state, built once at registration time.

    ``match_view`` used to re-derive all of this on every invocation:
    the output lookup structures, the view-side interval sets, the
    classified check-constraint predicates of every view table, and the
    foreign-key join graph for extra-table elimination. None of it
    depends on the query, so the filter tree builds one context per view
    at registration (:meth:`~repro.core.filtertree.FilterTree.register`)
    and the serving layer's epoch rebuilds carry it along inside
    :class:`~repro.core.filtertree.RegisteredView`. Per invocation only
    the query-side derivation and the subsumption tests remain.
    """

    view: SpjgDescription
    options: MatchOptions
    outputs: _ViewOutputs  # backjoins is always None here; copied per match
    range_items: tuple[tuple[ColumnKey, IntervalSet], ...]
    check_ranges: tuple[RangePredicate, ...]
    check_or_ranges: tuple[OrRangePredicate, ...]
    check_residuals: tuple[ShallowForm, ...]
    fk_edges: tuple[FkEdge, ...]

    @classmethod
    def of(
        cls, view: SpjgDescription, options: MatchOptions = DEFAULT_OPTIONS
    ) -> "ViewMatchContext":
        if view.name is None:
            raise ValueError("view description must carry a view name")
        check_ranges, check_or_ranges, check_residuals = (
            _check_constraint_predicates(view, options)
        )
        return cls(
            view=view,
            options=options,
            outputs=_ViewOutputs.of(view),
            range_items=_range_items(
                view.classified.range_predicates, view.or_ranges
            ),
            check_ranges=_intern_tuple(check_ranges),
            check_or_ranges=_intern_tuple(check_or_ranges),
            check_residuals=_intern_tuple(check_residuals),
            fk_edges=_intern_tuple(
                tuple(
                    build_fk_join_graph(
                        view.tables, view.eqclasses, view.catalog, options
                    )
                )
            ),
        )

    def fresh_outputs(self) -> _ViewOutputs:
        """A per-invocation copy safe to attach backjoin state to."""
        return copy.copy(self.outputs)


def match_view(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions = DEFAULT_OPTIONS,
    context: ViewMatchContext | None = None,
) -> MatchResult:
    """Match one query expression against one materialized view.

    ``context`` is the view's precomputed :class:`ViewMatchContext`; when
    absent (or built under different options) an equivalent one is derived
    on the fly, so direct callers need not manage contexts.
    """
    result = MatchResult(view=view)
    try:
        if (
            context is None
            or context.options != options
            or context.view is not view
        ):
            context = ViewMatchContext.of(view, options)
        _match(query, view, options, context, result)
    except _Reject as reject:
        result.substitute = None
        result.reject_reason = reject.reason
        result.reject_detail = reject.detail
    return result


def _match(
    query: SpjgDescription,
    view: SpjgDescription,
    options: MatchOptions,
    context: ViewMatchContext,
    result: MatchResult,
) -> None:
    if view.name is None:
        raise ValueError("view description must carry a view name")
    if view.is_aggregate and not query.is_aggregate:
        raise _Reject(RejectReason.VIEW_KIND, "aggregation view, SPJ query")
    if view.statement.distinct:
        raise _Reject(RejectReason.VIEW_KIND, "DISTINCT view is not indexable")

    # ---- Step 1: tables, extra-table elimination, augmented classes --------
    if not view.tables >= query.tables:
        missing = query.tables - view.tables
        raise _Reject(RejectReason.TABLES, f"view lacks {sorted(missing)}")
    extras = view.tables - query.tables
    augmented = query.eqclasses.copy()
    if extras:
        used_edges = _eliminate_extras(query, view, extras, context.fk_edges)
        result.eliminated_tables = tuple(sorted(extras))
        for table in sorted(extras):
            for column in view.catalog.table(table).column_names:
                augmented.add_column((table, column))
        for edge in used_edges:
            for child_key, parent_key in edge.column_pairs:
                augmented.add_equality(child_key, parent_key)

    # ---- Step 2: equijoin subsumption ---------------------------------------
    if not view.eqclasses.refines(augmented):
        raise _Reject(RejectReason.EQUIJOIN, "view equates columns the query does not")
    equality_partitions = _equality_partitions(view, augmented)

    # ---- Step 3: range subsumption -------------------------------------------
    check_ranges = context.check_ranges
    check_or_ranges = context.check_or_ranges
    check_residuals = context.check_residuals
    view_sets = _interval_sets_from_items(context.range_items, augmented)
    query_test_sets = _interval_sets(
        tuple(query.classified.range_predicates) + check_ranges,
        tuple(query.or_ranges) + check_or_ranges,
        augmented,
    )
    for representative, view_set in view_sets.items():
        query_set = query_test_sets.get(representative, UNBOUNDED_SET)
        if not view_set.contains(query_set):
            raise _Reject(
                RejectReason.RANGE,
                f"view range {view_set} does not contain query range "
                f"{query_set}",
            )
    range_compensations, or_range_compensations = _range_compensations(
        query, view, augmented, context.range_items
    )

    # ---- Step 4: residual subsumption ----------------------------------------
    residual_compensations = _residual_subsumption(
        query, view, augmented, check_residuals
    )

    # ---- Step 5: build and map compensating predicates ------------------------
    outputs = context.fresh_outputs()
    if options.allow_backjoins and not view.is_aggregate:
        backjoins = _BackjoinState(view, augmented)
        backjoins.outputs = outputs
        outputs.backjoins = backjoins
    compensations: list[Expression] = []
    for partition in equality_partitions:
        compensations.extend(_map_equality_partition(partition, outputs, view))
        result.compensating_equalities += len(partition) - 1
    for representative, op, value in range_compensations:
        reference = outputs.column_for(representative, augmented)
        if reference is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"no output column for range compensation on {representative}",
            )
        compensations.append(BinaryOp(op, reference, Literal(value)))
        result.compensating_ranges += 1
    for expression in or_range_compensations:
        mapped = _map_expression(expression, augmented, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                "disjunctive range compensation not computable from view",
            )
        compensations.append(mapped)
        result.compensating_ranges += 1
    for form in residual_compensations:
        mapped = _map_expression(form.expression, augmented, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"residual compensation {form.template} not computable from view",
            )
        compensations.append(mapped)
        result.compensating_residuals += 1

    # ---- Step 6: outputs and aggregation --------------------------------------
    if not query.is_aggregate:
        select_items = _map_spj_outputs(query, augmented, outputs, options)
        group_by: tuple[Expression, ...] = ()
    elif not view.is_aggregate:
        select_items, group_by = _map_aggregation_over_spj_view(
            query, augmented, outputs, options
        )
    else:
        select_items, group_by, regrouped = _map_aggregation_over_agg_view(
            query, view, augmented, outputs, options
        )
        result.regrouped = regrouped

    from_tables = [TableRef(name=outputs.view_name)]
    if outputs.backjoins is not None and outputs.backjoins.joined:
        result.backjoined_tables = outputs.backjoins.tables()
        from_tables.extend(TableRef(name=t) for t in result.backjoined_tables)
        compensations.extend(outputs.backjoins.join_predicates())
    result.substitute = SelectStatement(
        select_items=tuple(select_items),
        from_tables=tuple(from_tables),
        where=conjunction(compensations),
        group_by=tuple(group_by),
        distinct=query.statement.distinct,
    )


# ---------------------------------------------------------------------------
# Step helpers
# ---------------------------------------------------------------------------


def _eliminate_extras(
    query: SpjgDescription,
    view: SpjgDescription,
    extras: frozenset[str],
    edges: tuple[FkEdge, ...],
) -> tuple[FkEdge, ...]:
    elimination = eliminate_tables(view.tables, list(edges), removable=extras)
    if not elimination.eliminated_all(extras):
        leftover = extras & elimination.remaining
        raise _Reject(
            RejectReason.EXTRA_TABLES,
            f"cannot eliminate {sorted(leftover)} via cardinality-preserving joins",
        )
    for edge in elimination.used_edges:
        if edge.nullable:
            _verify_null_rejection(query, edge)
    return elimination.used_edges


def _verify_null_rejection(query: SpjgDescription, edge: FkEdge) -> None:
    """The Section 3.2 extension: a nullable FK column is acceptable when the
    query discards NULLs in it anyway (a range or IS NOT NULL predicate)."""
    table = query.catalog.table(edge.source)
    for child_key, _parent_key in edge.column_pairs:
        if not table.is_nullable(child_key[1]):
            continue
        if child_key not in query.eqclasses:
            raise _Reject(
                RejectReason.NULLABLE_FK,
                f"nullable FK column {child_key} not referenced by the query",
            )
        representative = query.eqclasses.find(child_key)
        if representative in query.ranges:
            continue  # any range predicate rejects NULLs
        if _has_null_rejecting_residual(query, child_key):
            continue
        raise _Reject(
            RejectReason.NULLABLE_FK,
            f"no null-rejecting query predicate on {child_key}",
        )


def _has_null_rejecting_residual(query: SpjgDescription, key: ColumnKey) -> bool:
    for form in query.residual_forms:
        expr = form.expression
        if isinstance(expr, IsNull) and expr.negated:
            operand = expr.operand
            if isinstance(operand, ColumnRef) and query.eqclasses.same_class(
                operand.key, key
            ):
                return True
        if isinstance(expr, BinaryOp) and expr.is_comparison():
            for ref in expr.column_refs():
                if query.eqclasses.same_class(ref.key, key):
                    return True
    return False


def _equality_partitions(
    view: SpjgDescription, augmented: EquivalenceClasses
) -> list[list[frozenset[ColumnKey]]]:
    """Group view equivalence classes by the query class they map into.

    Each returned partition lists the view classes falling into one query
    class; partitions of size >= 2 need len-1 compensating column-equality
    predicates to merge them (Section 3.1.2, equijoin subsumption).
    """
    by_query_root: dict[ColumnKey, dict[ColumnKey, frozenset[ColumnKey]]] = {}
    for view_class in view.eqclasses.classes():
        member = next(iter(view_class))
        if member not in augmented:
            continue
        query_root = augmented.find(member)
        view_root = view.eqclasses.find(member)
        by_query_root.setdefault(query_root, {})[view_root] = view_class
    return [
        sorted(partitions.values(), key=lambda cls: sorted(cls))
        for partitions in by_query_root.values()
        if len(partitions) > 1
    ]


def _map_equality_partition(
    partition: list[frozenset[ColumnKey]],
    outputs: _ViewOutputs,
    view: SpjgDescription,
) -> list[Expression]:
    """Build the compensating equality chain for one query class.

    The paper's rule: these references may be rerouted within their *view*
    equivalence class only -- which is exactly "pick any member of the view
    class that is exposed as an output column".
    """
    references: list[ColumnRef] = []
    for view_class in partition:
        exposed = next(
            (
                ColumnRef(outputs.view_name, outputs.simple[member])
                for member in sorted(view_class)
                if member in outputs.simple
            ),
            None,
        )
        if exposed is None and outputs.backjoins is not None:
            for member in sorted(view_class):
                exposed = outputs.backjoins.resolve(member)
                if exposed is not None:
                    break
        if exposed is None:
            raise _Reject(
                RejectReason.PREDICATE_MAPPING,
                f"no output column in view class {sorted(view_class)} for "
                "compensating equality",
            )
        references.append(exposed)
    return [
        BinaryOp("=", references[i], references[i + 1])
        for i in range(len(references) - 1)
    ]


def _range_items(
    range_predicates: tuple[RangePredicate, ...],
    or_ranges: tuple[OrRangePredicate, ...],
) -> tuple[tuple[ColumnKey, IntervalSet], ...]:
    """Each range-bearing conjunct as a ``(column, interval set)`` pair.

    The equivalence-class grouping depends on the (query-augmented)
    classes of one match, but the per-conjunct interval sets do not --
    precomputing them at registration leaves only the group-and-intersect
    step per invocation.
    """
    items = [
        (predicate.column, IntervalSet.of([predicate.interval()]))
        for predicate in range_predicates
    ]
    items.extend(
        (or_range.column, or_range.interval_set) for or_range in or_ranges
    )
    return tuple(items)


def _interval_sets_from_items(
    items: tuple[tuple[ColumnKey, IntervalSet], ...],
    eqclasses: EquivalenceClasses,
) -> dict[ColumnKey, IntervalSet]:
    """Group per-conjunct interval sets by class and intersect."""
    sets: dict[ColumnKey, IntervalSet] = {}
    for column, interval_set in items:
        representative = eqclasses.find(column)
        current = sets.get(representative, UNBOUNDED_SET)
        sets[representative] = current.intersect(interval_set)
    return sets


def _interval_sets(
    range_predicates: tuple[RangePredicate, ...],
    or_ranges: tuple[OrRangePredicate, ...],
    eqclasses: EquivalenceClasses,
) -> dict[ColumnKey, IntervalSet]:
    """Per-class interval sets: plain bounds intersected with disjunctions."""
    return _interval_sets_from_items(
        _range_items(range_predicates, or_ranges), eqclasses
    )


def _range_compensations(
    query: SpjgDescription,
    view: SpjgDescription,
    augmented: EquivalenceClasses,
    view_range_items: tuple[tuple[ColumnKey, IntervalSet], ...],
) -> tuple[list[tuple[ColumnKey, str, object]], list["Expression"]]:
    """Compensating range predicates, assuming containment already holds.

    Classes where neither side has a disjunctive range use the paper's
    bound-difference rule. Classes involving disjunctions are compensated
    by re-applying *all* of the query's range conjuncts on that class --
    sound (it reduces the view to exactly the query's range constraints)
    and simple, at the cost of occasionally re-checking a bound the view
    already enforces.
    """
    query_plain = derive_ranges(query.classified.range_predicates, augmented)
    view_plain = derive_ranges(view.classified.range_predicates, augmented)
    or_representatives: set[ColumnKey] = {
        augmented.find(orr.column) for orr in query.or_ranges
    } | {
        augmented.find(orr.column)
        for orr in view.or_ranges
        if orr.column in augmented
    }
    plain_compensations: list[tuple[ColumnKey, str, object]] = []
    for representative, query_interval in query_plain.items():
        if representative in or_representatives:
            continue
        view_interval = view_plain.get(representative, UNBOUNDED)
        for op, value in compensating_range_conjuncts(view_interval, query_interval):
            plain_compensations.append((representative, op, value))
    or_compensations: list[Expression] = []
    if or_representatives:
        query_sets = _interval_sets(
            query.classified.range_predicates, query.or_ranges, augmented
        )
        view_sets = _interval_sets_from_items(view_range_items, augmented)
        for representative in sorted(or_representatives):
            query_set = query_sets.get(representative)
            if query_set is None:
                continue  # only the view is constrained; nothing to narrow
            if view_sets.get(representative) == query_set:
                continue
            for predicate in query.classified.range_predicates:
                if augmented.find(predicate.column) == representative:
                    or_compensations.append(
                        BinaryOp(
                            predicate.op,
                            ColumnRef(*predicate.column),
                            Literal(predicate.value),
                        )
                    )
            for or_range in query.or_ranges:
                if augmented.find(or_range.column) == representative:
                    or_compensations.append(or_range.expression)
    return plain_compensations, or_compensations


def _check_constraint_predicates(
    view: SpjgDescription, options: MatchOptions
) -> tuple[
    tuple[RangePredicate, ...],
    tuple[OrRangePredicate, ...],
    tuple[ShallowForm, ...],
]:
    """Check constraints of all view tables, classified for the antecedent.

    Check constraints hold on every row of a table, so they can be added to
    the query's where-clause without changing its result -- strengthening
    the antecedent of the implication tests (Section 3.1.2).
    """
    if not options.use_check_constraints:
        return (), (), ()
    ranges: list[RangePredicate] = []
    or_ranges: list[OrRangePredicate] = []
    residuals: list[ShallowForm] = []
    for table in sorted(view.tables):
        for check in view.catalog.table(table).check_constraints:
            classified = classify_predicate(check.predicate)
            ranges.extend(classified.range_predicates)
            for conjunct in classified.residuals:
                recognised = (
                    as_or_range(conjunct) if options.support_or_ranges else None
                )
                if recognised is not None:
                    or_ranges.append(recognised)
                else:
                    residuals.append(ShallowForm.of(conjunct))
            # Column equalities inside check constraints are ignored: they
            # are vanishingly rare and would complicate class augmentation.
    return tuple(ranges), tuple(or_ranges), tuple(residuals)


def _residual_subsumption(
    query: SpjgDescription,
    view: SpjgDescription,
    augmented: EquivalenceClasses,
    check_residuals: tuple[ShallowForm, ...],
) -> tuple[ShallowForm, ...]:
    """Residual test; returns the query residuals needing compensation.

    Check-constraint residuals participate as antecedent conjuncts (a view
    residual may match one) but never need compensation themselves.
    """
    antecedent = tuple(query.residual_forms) + check_residuals
    matched_real: set[int] = set()
    for view_form in view.residual_forms:
        found = False
        for i, query_form in enumerate(antecedent):
            if view_form.matches(query_form, augmented):
                found = True
                if i < len(query.residual_forms):
                    matched_real.add(i)
        if not found:
            raise _Reject(
                RejectReason.RESIDUAL,
                f"view residual {view_form.template} not implied by the query",
            )
    return tuple(
        form
        for i, form in enumerate(query.residual_forms)
        if i not in matched_real
    )


# ---------------------------------------------------------------------------
# Expression mapping (Sections 3.1.3 / 3.1.4)
# ---------------------------------------------------------------------------


def _map_expression(
    expression: Expression,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
    allow_top_match: bool = True,
) -> Expression | None:
    """Rewrite an expression over base tables into one over view outputs.

    Constants pass through; a column reference reroutes within its
    equivalence class to an exposed output column; a whole expression that
    matches a view output expression becomes a reference to that column
    (always tried for output expressions, and for arbitrary subexpressions
    only under the ``map_complex_expressions`` extension). Returns None
    when the expression cannot be computed from the view's output.
    """
    if isinstance(expression, Literal):
        return expression
    if isinstance(expression, ColumnRef):
        return outputs.column_for(expression.key, eqclasses)
    if allow_top_match or options.map_complex_expressions:
        matched = outputs.expression_output_for(ShallowForm.of(expression), eqclasses)
        if matched is not None:
            return matched
    children = expression.children()
    mapped_children: list[Expression] = []
    for child in children:
        mapped = _map_expression(
            child,
            eqclasses,
            outputs,
            options,
            allow_top_match=options.map_complex_expressions,
        )
        if mapped is None:
            return None
        mapped_children.append(mapped)
    return expression.with_children(mapped_children)


def _map_spj_outputs(
    query: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> list[SelectItem]:
    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_expression(info.expression, eqclasses, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"output {info.form.template} not computable from view",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items


def _map_aggregation_over_spj_view(
    query: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> tuple[list[SelectItem], tuple[Expression, ...]]:
    """An aggregation query over an SPJ view: re-aggregate the view's rows.

    The view's rows are (after compensation) exactly the query's SPJ rows
    with the right duplication factor, so every aggregate is recomputed
    with its argument rerouted to view outputs.
    """
    group_by: list[Expression] = []
    for expr in query.statement.group_by:
        mapped = _map_expression(expr, eqclasses, outputs, options)
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"grouping expression {expr} not computable from view",
            )
        group_by.append(mapped)
    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_aggregate_aware(
            info.expression, eqclasses, outputs, options, _recompute_aggregate
        )
        if mapped is None:
            raise _Reject(
                RejectReason.OUTPUT_MAPPING,
                f"output {info.form.template} not computable from view",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items, tuple(group_by)


def _recompute_aggregate(
    call: FuncCall,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> Expression | None:
    if call.star:
        return call
    mapped = _map_expression(call.args[0], eqclasses, outputs, options)
    if mapped is None:
        return None
    return FuncCall(call.name, (mapped,))


def _map_aggregation_over_agg_view(
    query: SpjgDescription,
    view: SpjgDescription,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
) -> tuple[list[SelectItem], tuple[Expression, ...], bool]:
    """An aggregation query over an aggregation view (Section 3.3).

    The query's grouping list must be a subset of the view's (each query
    grouping expression matches a view grouping expression under the query
    equivalence classes). A strict subset needs a compensating group-by;
    aggregates roll up: count(*) becomes SUM(count_big), SUM(E) becomes
    SUM of the view's SUM column.
    """
    matched_view_groups: set[int] = set()
    for query_form in query.group_forms:
        found = False
        for i, view_form in enumerate(view.group_forms):
            if view_form.matches(query_form, eqclasses):
                matched_view_groups.add(i)
                found = True
        if not found:
            raise _Reject(
                RejectReason.GROUPING,
                f"query grouping expression {query_form.template} not in view "
                "grouping list",
            )
    regroup = len(matched_view_groups) < len(view.group_forms)

    group_by: list[Expression] = []
    if regroup:
        for expr in query.statement.group_by:
            mapped = _map_expression(expr, eqclasses, outputs, options)
            if mapped is None:
                raise _Reject(
                    RejectReason.OUTPUT_MAPPING,
                    f"grouping expression {expr} not computable from view",
                )
            group_by.append(mapped)

    # A regrouped *global* aggregation (empty query group-by) must produce
    # its one output row even when compensation removes every view row;
    # SUM over that empty input is NULL, so the rolled-up count needs a
    # COALESCE back to 0 (plain SQL: COUNT over empty input is 0).
    guard_empty = regroup and not query.statement.group_by

    def rollup(
        call: FuncCall,
        eqc: EquivalenceClasses,
        out: _ViewOutputs,
        opts: MatchOptions,
    ) -> Expression | None:
        return _rollup_aggregate(call, eqc, out, regroup, guard_empty)

    items: list[SelectItem] = []
    for info in query.outputs:
        mapped = _map_aggregate_aware(
            info.expression, eqclasses, outputs, options, rollup
        )
        if mapped is None:
            raise _Reject(
                RejectReason.AGGREGATE,
                f"output {info.form.template} not derivable from view aggregates",
            )
        items.append(SelectItem(mapped, alias=info.item.alias))
    return items, tuple(group_by), regroup


def _rollup_aggregate(
    call: FuncCall,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    regroup: bool,
    guard_empty: bool = False,
) -> Expression | None:
    """Derive one query aggregate from an aggregation view's outputs.

    ``guard_empty`` marks a regrouped global aggregation, where the
    compensated view rows may be empty: the rolled-up row count then
    becomes ``coalesce(sum(cnt), 0)`` so the substitute reports 0 rows
    (not NULL) exactly as ``count(*)`` over an empty input does, while
    SUM correctly stays NULL.
    """
    if call.name in ("count", "count_big") and call.star:
        if outputs.count_big_column is None:
            return None
        counter = ColumnRef(outputs.view_name, outputs.count_big_column)
        if not regroup:
            return counter
        summed: Expression = FuncCall("sum", (counter,))
        if guard_empty:
            summed = FuncCall("coalesce", (summed, Literal(0)))
        return summed
    if call.name == "sum":
        reference = outputs.sum_output_for(call.args[0], eqclasses)
        if reference is None:
            return None
        return FuncCall("sum", (reference,)) if regroup else reference
    if call.name == "avg":
        total = _rollup_aggregate(
            FuncCall("sum", call.args), eqclasses, outputs, regroup
        )
        counter = _rollup_aggregate(
            FuncCall("count_big", star=True), eqclasses, outputs, regroup, guard_empty
        )
        if total is None or counter is None:
            return None
        return BinaryOp("/", total, counter)
    # count(E) over an aggregation view cannot be derived: the view lost the
    # per-row NULL information.
    return None


def _map_aggregate_aware(
    expression: Expression,
    eqclasses: EquivalenceClasses,
    outputs: _ViewOutputs,
    options: MatchOptions,
    aggregate_handler,
) -> Expression | None:
    """Map an output expression, dispatching aggregate calls to a handler."""
    if isinstance(expression, FuncCall) and expression.is_aggregate():
        return aggregate_handler(expression, eqclasses, outputs, options)
    if not expression.contains_aggregate():
        return _map_expression(expression, eqclasses, outputs, options)
    mapped_children: list[Expression] = []
    for child in expression.children():
        mapped = _map_aggregate_aware(
            child, eqclasses, outputs, options, aggregate_handler
        )
        if mapped is None:
            return None
        mapped_children.append(mapped)
    return expression.with_children(mapped_children)
