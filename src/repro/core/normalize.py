"""Predicate normalization: NNF, CNF, and the PE / PR / PU classification.

Section 3 of the paper assumes selection predicates are in conjunctive
normal form and splits the conjuncts into three groups:

* **PE** -- column-equality predicates ``Ti.Cp = Tj.Cq`` (the equijoin part),
* **PR** -- range predicates ``Ti.Cp op constant`` with op in ``= < <= > >=``,
* **PU** -- everything else (the residual part).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..sql.expressions import (
    And,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    LikePredicate,
    Literal,
    Not,
    Or,
    conjunction,
    conjuncts_of,
    disjunction,
)
from .equivalence import ColumnKey
from .ranges import RangePredicate, as_range_predicate

_NEGATED_COMPARISON = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

# Safety valve for CNF expansion: distributing OR over AND is exponential in
# the worst case; predicates in the supported workload are tiny, so hitting
# this limit indicates misuse rather than a real query.
MAX_CNF_CONJUNCTS = 512


def push_negations(expression: Expression) -> Expression:
    """Negation normal form: NOT appears only on atoms it cannot absorb."""
    if isinstance(expression, Not):
        return _negate(expression.operand)
    if isinstance(expression, And):
        return And(tuple(push_negations(part) for part in expression.conjuncts))
    if isinstance(expression, Or):
        return Or(tuple(push_negations(part) for part in expression.disjuncts))
    return expression


def _negate(expression: Expression) -> Expression:
    if isinstance(expression, Not):
        return push_negations(expression.operand)
    if isinstance(expression, And):
        return Or(tuple(_negate(part) for part in expression.conjuncts))
    if isinstance(expression, Or):
        return And(tuple(_negate(part) for part in expression.disjuncts))
    if isinstance(expression, BinaryOp) and expression.is_comparison():
        return BinaryOp(_NEGATED_COMPARISON[expression.op], expression.left, expression.right)
    if isinstance(expression, IsNull):
        return IsNull(expression.operand, negated=not expression.negated)
    if isinstance(expression, LikePredicate):
        return LikePredicate(expression.operand, expression.pattern, negated=not expression.negated)
    if isinstance(expression, InList):
        return InList(expression.operand, expression.items, negated=not expression.negated)
    return Not(expression)


def to_cnf(predicate: Expression | None) -> tuple[Expression, ...]:
    """Convert a predicate to CNF and return its conjuncts.

    NOT is pushed to the atoms first, then OR is distributed over AND. The
    flat ``And``/``Or`` constructors keep the result in the canonical
    two-level shape: a conjunction of disjunctions of atoms.
    """
    if predicate is None:
        return ()
    normalized = push_negations(predicate)
    conjuncts = _cnf_conjuncts(normalized)
    if len(conjuncts) > MAX_CNF_CONJUNCTS:
        raise ValueError(
            f"CNF expansion produced {len(conjuncts)} conjuncts "
            f"(limit {MAX_CNF_CONJUNCTS})"
        )
    # De-duplicate identical conjuncts while preserving order.
    seen: set[Expression] = set()
    unique: list[Expression] = []
    for conjunct in conjuncts:
        if conjunct not in seen:
            seen.add(conjunct)
            unique.append(conjunct)
    return tuple(unique)


def _cnf_conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, And):
        result: list[Expression] = []
        for part in expression.conjuncts:
            result.extend(_cnf_conjuncts(part))
        return result
    if isinstance(expression, Or):
        # CNF of each disjunct, then the cross product of their conjuncts.
        branch_conjuncts = [_cnf_conjuncts(part) for part in expression.disjuncts]
        size = 1
        for branch in branch_conjuncts:
            size *= len(branch)
            if size > MAX_CNF_CONJUNCTS:
                raise ValueError("CNF expansion limit exceeded")
        clauses: list[Expression] = []
        for combo in product(*branch_conjuncts):
            clause = disjunction(list(combo))
            assert clause is not None
            clauses.append(clause)
        return clauses
    return [expression]


def as_column_equality(conjunct: Expression) -> tuple[ColumnKey, ColumnKey] | None:
    """Recognise a PE conjunct ``Ti.Cp = Tj.Cq`` (tables need not differ)."""
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return conjunct.left.key, conjunct.right.key
    return None


@dataclass(frozen=True)
class ClassifiedPredicate:
    """The PE / PR / PU decomposition of a CNF predicate."""

    equalities: tuple[tuple[ColumnKey, ColumnKey], ...]
    range_predicates: tuple[RangePredicate, ...]
    residuals: tuple[Expression, ...]

    @property
    def conjunct_count(self) -> int:
        return (
            len(self.equalities) + len(self.range_predicates) + len(self.residuals)
        )

    def canonical(self) -> "ClassifiedPredicate":
        """A canonically ordered, de-duplicated copy of this classification.

        Conjunction is commutative and column equality is symmetric, so two
        semantically identical WHERE clauses can classify into differently
        ordered tuples (``a = b AND c >= 5`` vs ``c >= 5 AND b = a``). This
        normal form -- each equality pair ordered, then every group sorted
        under a stable textual key and exact duplicates dropped -- is what
        fingerprint-keyed caches hash, so conjunct order never splits a
        cache entry. Matching itself keeps the original order; the
        canonical form is only for identity.
        """
        equalities = tuple(
            sorted({tuple(sorted(pair)) for pair in self.equalities})
        )
        range_predicates = tuple(
            sorted(
                set(self.range_predicates),
                key=lambda rp: (rp.column, rp.op, constant_sort_key(rp.value)),
            )
        )
        residuals = tuple(
            sorted(set(self.residuals), key=_residual_sort_key)
        )
        return ClassifiedPredicate(
            equalities=equalities,  # type: ignore[arg-type]
            range_predicates=range_predicates,
            residuals=residuals,
        )

    def equivalence_groups(self) -> tuple[tuple[ColumnKey, ...], ...]:
        """The column-equivalence classes induced by the PE conjuncts.

        Union-find over the equality pairs, each class sorted and the class
        list sorted. ``a = b AND b = c`` and ``a = c AND c = b`` induce the
        same classes even though no pairwise reordering makes their PE
        tuples equal -- fingerprints built on the groups treat them as the
        same query.
        """
        parent: dict[ColumnKey, ColumnKey] = {}

        def find(key: ColumnKey) -> ColumnKey:
            parent.setdefault(key, key)
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        for left, right in self.equalities:
            root_left, root_right = find(left), find(right)
            if root_left != root_right:
                parent[max(root_left, root_right)] = min(root_left, root_right)
        groups: dict[ColumnKey, list[ColumnKey]] = {}
        for key in parent:
            groups.setdefault(find(key), []).append(key)
        return tuple(
            tuple(sorted(members)) for _, members in sorted(groups.items())
        )


def constant_sort_key(value: object) -> tuple[str, str]:
    """A total, type-stable ordering key for predicate constants.

    Numeric constants compare by value (``5`` and ``5.0`` collapse), other
    types by their repr; the leading tag keeps mixed-type collections
    sortable without ``TypeError``.
    """
    if isinstance(value, bool):
        return ("bool", repr(value))
    if isinstance(value, (int, float)):
        number = float(value)
        if number.is_integer() and abs(number) < 1e15:
            return ("num", repr(int(number)))
        return ("num", repr(number))
    return (type(value).__name__, repr(value))


def _residual_sort_key(conjunct: Expression) -> str:
    from ..sql.printer import to_sql

    return to_sql(conjunct)


def classify_predicate(predicate: Expression | None) -> ClassifiedPredicate:
    """Split a predicate (any form; converted to CNF here) into PE/PR/PU."""
    equalities: list[tuple[ColumnKey, ColumnKey]] = []
    range_predicates: list[RangePredicate] = []
    residuals: list[Expression] = []
    for conjunct in to_cnf(predicate):
        equality = as_column_equality(conjunct)
        if equality is not None:
            equalities.append(equality)
            continue
        range_predicate = as_range_predicate(conjunct)
        if range_predicate is not None:
            range_predicates.append(range_predicate)
            continue
        residuals.append(_canonicalize_residual(conjunct))
    return ClassifiedPredicate(
        equalities=tuple(equalities),
        range_predicates=tuple(range_predicates),
        residuals=tuple(residuals),
    )


def _canonicalize_residual(conjunct: Expression) -> Expression:
    """Light canonicalization so trivially mirrored residuals compare equal.

    A comparison with a literal on the left is mirrored (``5 < A+B`` becomes
    ``A+B > 5``); this is the one commutativity rewrite the paper's shallow
    matcher motivates with the ``(A > B)`` vs ``(B < A)`` example.
    """
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.is_comparison()
        and isinstance(conjunct.left, Literal)
        and not isinstance(conjunct.right, Literal)
    ):
        return conjunct.mirrored()
    return conjunct


def classified_to_predicate(classified: ClassifiedPredicate) -> Expression | None:
    """Rebuild a predicate expression from a classification (for testing)."""
    parts: list[Expression] = []
    for (ta, ca), (tb, cb) in classified.equalities:
        parts.append(BinaryOp("=", ColumnRef(ta, ca), ColumnRef(tb, cb)))
    for rp in classified.range_predicates:
        parts.append(BinaryOp(rp.op, ColumnRef(*rp.column), Literal(rp.value)))
    parts.extend(classified.residuals)
    return conjunction(parts)


__all__ = [
    "ClassifiedPredicate",
    "MAX_CNF_CONJUNCTS",
    "as_column_equality",
    "classified_to_predicate",
    "constant_sort_key",
    "classify_predicate",
    "conjuncts_of",
    "push_negations",
    "to_cnf",
]
