"""Matching options: paper-prototype defaults plus documented extensions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatchOptions:
    """Switches for the optional refinements the paper describes.

    The defaults reproduce the behaviour of the paper's prototype; each
    flag enables one extension the paper discusses but did not implement.

    ``use_check_constraints``
        Fold declared check constraints into the implication antecedent
        (Section 3.1.2, "Check constraints can be readily incorporated").

    ``allow_null_rejecting_fk``
        Accept a nullable foreign-key column in a cardinality-preserving
        join when the query carries a null-rejecting predicate on that
        column (end of Section 3.2).

    ``map_complex_expressions``
        When mapping a compensating predicate, accept a view output column
        whose defining expression matches a *sub*-requirement even when the
        raw source columns are not exposed (Section 3.1.3 notes the
        prototype "ignores this possibility").

    ``allow_backjoins``
        When a (non-aggregation) view provides all required rows but lacks
        some required columns, join the view back to the base table that
        owns them on one of its unique keys (Section 7: "base table
        backjoins cover the case when a view contains all tables and rows
        needed but some columns are missing"). Substitutes may then
        reference the view plus base tables.

    ``support_or_ranges``
        Treat disjunctions of range predicates on one column -- including
        IN lists -- as interval sets in the range subsumption test
        (Section 3.1.2: "This range coverage algorithm can be extended to
        support disjunctions (OR)... Our prototype does not support
        disjunctions").

    ``hub_refinement``
        Keep a table in the hub when a trivial-class column of it carries a
        range or residual predicate (Section 4.2.2's improvement). On by
        default -- it is part of the paper's design -- but automatically
        disabled when ``use_check_constraints`` is set, because a check
        constraint can satisfy a view predicate the refinement assumes must
        come from the query.

    ``use_fast_probe``
        Compile query probes through the fused single-pass pipeline
        (memoized class maps, reused shallow forms, cached check-constraint
        keys). Off selects ``QueryProbe.of_reference``, the pre-fusion
        pipeline kept for benchmarking; both produce identical probes.
    """

    use_check_constraints: bool = False
    allow_null_rejecting_fk: bool = False
    map_complex_expressions: bool = False
    support_or_ranges: bool = False
    allow_backjoins: bool = False
    hub_refinement: bool = True
    use_fast_probe: bool = True

    @property
    def effective_hub_refinement(self) -> bool:
        return self.hub_refinement and not self.use_check_constraints


DEFAULT_OPTIONS = MatchOptions()
