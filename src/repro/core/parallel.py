"""Fork-based parallel map over copy-on-write shared state.

The matching fan-out wants workers that share the parent's read-only
snapshot (filter trees, descriptions, interned bit assignments) without
serializing it. ``fork(2)`` gives exactly that: children inherit the whole
address space copy-on-write, so the only data crossing a process boundary
is each worker's *result*, pickled over a pipe. Threads cannot help here --
matching is pure Python and GIL-bound -- and spawn-based pools would pay a
full snapshot pickle per worker.

Children never touch shared mutable service state: they compute, write one
length-prefixed pickle frame, and ``os._exit``. The parent reads every
pipe before reaping, so a worker blocked on a full pipe buffer always
drains. A worker that dies without producing a frame (or that reports an
exception) fails the whole map with :class:`WorkerError` -- partial results
are never silently returned.

``fork_available()`` gates every caller: on platforms without ``fork``
(or when explicitly disabled) callers fall back to sequential execution,
which is also the required behaviour below their view-count thresholds.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "WorkerError",
    "default_worker_count",
    "effective_cpu_count",
    "fork_available",
    "forked_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

_HEADER = struct.Struct(">BQ")
_OK = 1
_FAILED = 0


class WorkerError(RuntimeError):
    """A forked worker raised or died before reporting a result."""


def fork_available() -> bool:
    """True when ``os.fork`` exists (POSIX; never on Windows)."""
    return hasattr(os, "fork")


def effective_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine's logical cores, which lies
    on affinity-restricted boxes (containers pinned to a cpuset, CI
    runners under ``taskset``): a 64-core host limited to one core
    would fork 64 workers into a single-core straitjacket -- and the
    benchmark environment capture would record ``cpu_count: 1`` hosts
    as fully parallel.  ``sched_getaffinity`` reports the restricted
    set where the platform has it (Linux); elsewhere fall back to the
    logical count.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_worker_count() -> int:
    """Worker count matching the machine's *usable* cores (affinity-aware)."""
    return effective_cpu_count()


def _child_main(
    write_fd: int, func: Callable[[_T], _R], items: Sequence[_T], indices: Sequence[int]
) -> None:
    """Worker body: compute assigned items, write one frame, exit."""
    try:
        try:
            payload = pickle.dumps(
                [(index, func(items[index])) for index in indices],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            status = _OK
        except BaseException as exc:  # report, never propagate out of the fork
            payload = pickle.dumps(
                f"{type(exc).__name__}: {exc}", protocol=pickle.HIGHEST_PROTOCOL
            )
            status = _FAILED
        with os.fdopen(write_fd, "wb") as stream:
            stream.write(_HEADER.pack(status, len(payload)))
            stream.write(payload)
    finally:
        # _exit skips atexit/finalizers: the child must not run the
        # parent's cleanup (tracers, metric flushes) a second time.
        os._exit(0)


def forked_map(
    func: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int,
) -> list[_R]:
    """``[func(item) for item in items]`` fanned out across forked workers.

    Items are assigned round-robin so adjacent (likely similar-cost) items
    spread across workers; results come back in input order regardless.
    Falls back to the sequential comprehension when one worker suffices or
    ``fork`` is unavailable, so callers can invoke it unconditionally.
    """
    sequence = list(items)
    if not sequence:
        return []
    workers = max(1, min(workers, len(sequence)))
    if workers == 1 or not fork_available():
        return [func(item) for item in sequence]

    children: list[tuple[int, int]] = []
    for worker in range(workers):
        indices = range(worker, len(sequence), workers)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            _child_main(write_fd, func, sequence, indices)
        os.close(write_fd)
        children.append((pid, read_fd))

    results: list[_R | None] = [None] * len(sequence)
    failure: str | None = None
    for pid, read_fd in children:
        frame: bytes | None = None
        status = _FAILED
        with os.fdopen(read_fd, "rb") as stream:
            header = stream.read(_HEADER.size)
            if len(header) == _HEADER.size:
                status, length = _HEADER.unpack(header)
                frame = stream.read(length)
                if len(frame) != length:
                    frame = None
        os.waitpid(pid, 0)
        if frame is None:
            failure = failure or f"worker {pid} died without reporting a result"
            continue
        decoded = pickle.loads(frame)
        if status != _OK:
            failure = failure or f"worker {pid} failed: {decoded}"
            continue
        for index, value in decoded:
            results[index] = value
    if failure is not None:
        raise WorkerError(failure)
    return results  # type: ignore[return-value]
