"""Fork-based parallelism over copy-on-write shared state.

Two execution shapes share one frame protocol here:

* :func:`forked_map` -- the original fork-per-batch fan-out: children are
  forked for one batch, each computes its slice, writes one result frame,
  and exits. The parent pays a fork per batch.
* :func:`spawn_worker` / :class:`WorkerHandle` -- a **persistent**
  request/response loop for the serving tier's worker pool
  (:mod:`repro.service.pool`): a child is forked once, inherits the
  parent's snapshot copy-on-write, and then serves many requests over a
  pair of pipes until it is told to shut down. The fork (and the page
  faults of first touching the snapshot) are paid once per worker
  lifetime instead of once per batch.

``fork(2)`` is the sharing mechanism in both shapes: children inherit the
whole address space copy-on-write, so the only data crossing a process
boundary is each request's *result*, pickled over a pipe. Threads cannot
help here -- matching is pure Python and GIL-bound -- and spawn-based
pools would pay a full snapshot pickle per worker.

Frame protocol
--------------
Every message is one length-prefixed pickle frame: a ``>BQ`` header
(status byte, payload length) followed by the payload. Status values:

* ``_OK`` / ``_FAILED`` -- a result frame (``_FAILED`` payloads carry the
  stringified worker exception);
* ``_REQUEST`` -- a parent-to-worker request carrying ``(request_id,
  payload)``;
* ``_SHUTDOWN`` -- the graceful-drain sentinel: a worker that reads it
  finishes nothing further and exits cleanly.

The parent treats a short read *or an undecodable payload* as worker
death: a truncated or corrupt frame must fail that one worker, never
abort the drain of its siblings (a previous version let ``pickle.loads``
raise out of the drain loop, abandoning the remaining children un-drained
and un-reaped).

Children never touch shared mutable service state: they compute, write
frames, and ``os._exit``. A worker that dies without producing a frame
(or that reports an exception) fails the whole map with
:class:`WorkerError` -- partial results are never silently returned.

``fork_available()`` gates every caller: on platforms without ``fork``
(or when explicitly disabled) callers fall back to sequential execution,
which is also the required behaviour below their view-count thresholds.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
from typing import Any, BinaryIO, Callable, Iterable, Sequence, TypeVar

__all__ = [
    "WorkerError",
    "WorkerHandle",
    "default_worker_count",
    "effective_cpu_count",
    "fork_available",
    "forked_map",
    "spawn_worker",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

_HEADER = struct.Struct(">BQ")
_OK = 1
_FAILED = 0
_REQUEST = 2
_SHUTDOWN = 3


class WorkerError(RuntimeError):
    """A forked worker raised or died before reporting a result."""


def fork_available() -> bool:
    """True when ``os.fork`` exists (POSIX; never on Windows)."""
    return hasattr(os, "fork")


def effective_cpu_count() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine's logical cores, which lies
    on affinity-restricted boxes (containers pinned to a cpuset, CI
    runners under ``taskset``): a 64-core host limited to one core
    would fork 64 workers into a single-core straitjacket -- and the
    benchmark environment capture would record ``cpu_count: 1`` hosts
    as fully parallel.  ``sched_getaffinity`` reports the restricted
    set where the platform has it (Linux); elsewhere fall back to the
    logical count.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_worker_count() -> int:
    """Worker count matching the machine's *usable* cores (affinity-aware)."""
    return effective_cpu_count()


# ---------------------------------------------------------------------------
# Frame helpers (shared by the batch fan-out and the persistent loop)


def _write_frame(stream: BinaryIO, status: int, payload: bytes) -> None:
    stream.write(_HEADER.pack(status, len(payload)))
    stream.write(payload)
    stream.flush()


def _read_frame(stream: BinaryIO) -> tuple[int, bytes] | None:
    """One ``(status, payload)`` frame, or ``None`` on EOF / short read."""
    header = stream.read(_HEADER.size)
    if len(header) != _HEADER.size:
        return None
    status, length = _HEADER.unpack(header)
    payload = stream.read(length)
    if len(payload) != length:
        return None
    return status, payload


def _decode(payload: bytes) -> Any:
    """``pickle.loads`` isolated so corruption handling is testable."""
    return pickle.loads(payload)


def _reap(pid: int) -> None:
    try:
        os.waitpid(pid, 0)
    except ChildProcessError:  # already reaped (or double-reap race)
        pass


def _kill_and_reap(pid: int) -> None:
    """Force-terminate and reap one child (partial fan-out cleanup)."""
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    _reap(pid)


def _close_quietly(fd: int) -> None:
    try:
        os.close(fd)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Fork-per-batch map


def _child_main(
    write_fd: int, func: Callable[[_T], _R], items: Sequence[_T], indices: Sequence[int]
) -> None:
    """Worker body: compute assigned items, write one frame, exit."""
    try:
        try:
            payload = pickle.dumps(
                [(index, func(items[index])) for index in indices],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            status = _OK
        except BaseException as exc:  # report, never propagate out of the fork
            payload = pickle.dumps(
                f"{type(exc).__name__}: {exc}", protocol=pickle.HIGHEST_PROTOCOL
            )
            status = _FAILED
        with os.fdopen(write_fd, "wb") as stream:
            stream.write(_HEADER.pack(status, len(payload)))
            stream.write(payload)
    finally:
        # _exit skips atexit/finalizers: the child must not run the
        # parent's cleanup (tracers, metric flushes) a second time.
        os._exit(0)


def forked_map(
    func: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int,
) -> list[_R]:
    """``[func(item) for item in items]`` fanned out across forked workers.

    Items are assigned round-robin so adjacent (likely similar-cost) items
    spread across workers; results come back in input order regardless.
    Falls back to the sequential comprehension when one worker suffices or
    ``fork`` is unavailable, so callers can invoke it unconditionally.

    A spawn failure mid-fan-out (``os.pipe`` or ``os.fork`` raising, e.g.
    ``EAGAIN`` under load) cleans up the partial fan-out -- every
    already-opened read fd is closed and every already-forked child is
    killed and reaped -- before the error propagates, so a burst of
    failed batches cannot leak fds or accumulate zombies.
    """
    sequence = list(items)
    if not sequence:
        return []
    workers = max(1, min(workers, len(sequence)))
    if workers == 1 or not fork_available():
        return [func(item) for item in sequence]

    children: list[tuple[int, int]] = []
    try:
        for worker in range(workers):
            indices = range(worker, len(sequence), workers)
            read_fd, write_fd = os.pipe()
            try:
                pid = os.fork()
            except BaseException:
                _close_quietly(read_fd)
                _close_quietly(write_fd)
                raise
            if pid == 0:
                os.close(read_fd)
                _child_main(write_fd, func, sequence, indices)
            os.close(write_fd)
            children.append((pid, read_fd))
    except BaseException:
        for pid, read_fd in children:
            _close_quietly(read_fd)
            _kill_and_reap(pid)
        raise

    results: list[_R | None] = [None] * len(sequence)
    failure: str | None = None
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as stream:
            frame = _read_frame(stream)
        _reap(pid)
        if frame is None:
            failure = failure or f"worker {pid} died without reporting a result"
            continue
        status, payload = frame
        try:
            decoded = _decode(payload)
        except Exception as exc:
            # A corrupt frame is that worker's failure; the siblings'
            # pipes must still be drained and their processes reaped.
            failure = (
                failure
                or f"worker {pid} returned an undecodable frame: {exc}"
            )
            continue
        if status != _OK:
            failure = failure or f"worker {pid} failed: {decoded}"
            continue
        for index, value in decoded:
            results[index] = value
    if failure is not None:
        raise WorkerError(failure)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Persistent request/response workers


def _worker_loop(
    handler: Callable[[Any], Any], read_fd: int, write_fd: int
) -> None:
    """Child body of a persistent worker: serve frames until shutdown.

    A handler exception fails *that request* (a ``_FAILED`` frame carries
    the stringified error) and the loop continues -- one poisonous
    request must not take the worker down with it. An unpicklable result
    is likewise reported as that request's failure.
    """
    try:
        with os.fdopen(read_fd, "rb") as inbox, os.fdopen(
            write_fd, "wb"
        ) as outbox:
            while True:
                frame = _read_frame(inbox)
                if frame is None:
                    break  # parent closed the pipe (or died)
                status, payload = frame
                if status == _SHUTDOWN:
                    break
                if status != _REQUEST:  # unknown frame: protocol error
                    break
                request_id, value = _decode(payload)
                try:
                    result = handler(value)
                    body = pickle.dumps(
                        (request_id, result),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    reply = _OK
                except BaseException as exc:
                    body = pickle.dumps(
                        (request_id, f"{type(exc).__name__}: {exc}"),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    reply = _FAILED
                _write_frame(outbox, reply, body)
    finally:
        # Same rationale as _child_main: never run parent finalizers.
        os._exit(0)


class WorkerHandle:
    """Parent-side handle of one persistent forked worker.

    The parent writes ``_REQUEST`` frames with :meth:`send` and reads
    responses with :meth:`recv`; the pool keeps exactly one request in
    flight per worker, so sends and receives never interleave. The
    handle is not itself thread-safe -- the pool serializes access
    (dispatcher sends, one reader thread receives).
    """

    __slots__ = (
        "pid",
        "generation",
        "retired",
        "inflight",
        "_send",
        "_recv",
        "_send_closed",
        "_reaped",
    )

    def __init__(self, pid: int, send: BinaryIO, recv: BinaryIO, generation: int = 0):
        self.pid = pid
        #: Pool bookkeeping: which spawn generation (epoch) this worker
        #: belongs to; the pool retires whole generations on epoch swap.
        self.generation = generation
        self.retired = False
        #: The request currently being served, or ``None`` (pool-managed).
        self.inflight: Any = None
        self._send = send
        self._recv = recv
        self._send_closed = False
        self._reaped = False

    def send(self, request_id: int, payload: Any) -> None:
        """Ship one request frame to the worker (raises on a dead pipe)."""
        body = pickle.dumps(
            (request_id, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        _write_frame(self._send, _REQUEST, body)

    def recv(self) -> tuple[int, bool, Any] | None:
        """Block for one response: ``(request_id, ok, value)``.

        ``None`` means the worker died (EOF / short read) or returned a
        frame the parent could not decode -- either way the worker is
        unusable and the caller should reap and replace it.
        """
        frame = _read_frame(self._recv)
        if frame is None:
            return None
        status, payload = frame
        try:
            request_id, value = _decode(payload)
        except Exception:
            return None
        return request_id, status == _OK, value

    def shutdown(self) -> None:
        """Send the graceful-drain sentinel (idempotent, never raises)."""
        if self._send_closed:
            return
        self._send_closed = True
        try:
            _write_frame(self._send, _SHUTDOWN, b"")
            self._send.close()
        except (BrokenPipeError, OSError, ValueError):
            pass

    def kill(self) -> None:
        """Force-terminate (crash-path cleanup; graceful path is shutdown)."""
        try:
            os.kill(self.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    def reap(self) -> None:
        """Close parent-side streams and wait for the child (idempotent)."""
        if self._reaped:
            return
        self._reaped = True
        self.shutdown()
        try:
            self._recv.close()
        except OSError:
            pass
        _reap(self.pid)

    def alive(self) -> bool:
        """Best-effort liveness probe (non-blocking)."""
        if self._reaped:
            return False
        try:
            pid, _ = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            return False
        return pid == 0


def spawn_worker(
    handler: Callable[[Any], Any], generation: int = 0
) -> WorkerHandle:
    """Fork one persistent worker running ``handler`` per request.

    The child inherits the parent's address space copy-on-write at the
    moment of the call -- whatever snapshot ``handler`` closes over is
    pinned from the child's point of view, which is exactly the pool's
    epoch-pinning semantics. The child touches no parent locks: it reads
    request frames, calls ``handler``, and writes response frames until
    it sees a shutdown sentinel or EOF.
    """
    if not fork_available():  # pragma: no cover - POSIX-only code base
        raise RuntimeError("persistent workers require os.fork")
    request_read, request_write = os.pipe()
    response_read, response_write = os.pipe()
    try:
        pid = os.fork()
    except BaseException:
        for fd in (request_read, request_write, response_read, response_write):
            _close_quietly(fd)
        raise
    if pid == 0:
        os.close(request_write)
        os.close(response_read)
        _worker_loop(handler, request_read, response_write)
        os._exit(0)  # pragma: no cover - _worker_loop never returns
    os.close(request_read)
    os.close(response_write)
    return WorkerHandle(
        pid,
        os.fdopen(request_write, "wb"),
        os.fdopen(response_read, "rb"),
        generation=generation,
    )
