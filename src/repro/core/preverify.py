"""Vectorized candidate pre-verification (columnar near-miss rejection).

The filter tree makes *irrelevant* views cheap to discard, but every
surviving candidate still pays a full per-candidate ``match_view`` walk --
and the funnel shows most of those walks end in RANGE or EQUIJOIN
rejection. This module extends the packed-lattice idea one level deeper:
at registration time each view's per-conjunct range intervals and
equijoin-class pair signature are compiled into columnar tables alongside
the lattice's :class:`~repro.core.interning.PackedBitsetTable`, and at
query time one vectorized sweep screens *all* surviving candidates at
once, rejecting provably-hopeless ones with the same
:class:`~repro.core.matching.RejectReason` (and identical detail string)
that ``match_view`` would produce.

Soundness contract -- **no false rejects**:

* The equijoin screen is *exact* for screened rows. With equal table sets
  the analyzer seeds every column of every referenced table, so
  ``view.eqclasses.refines(query.eqclasses)`` fails iff some same-class
  view column pair spans two query classes -- i.e. iff the view's pair
  bitmask intersects the complement of the query's pair bitmask.
* The range screen is *conservative* (per-conjunct). Each single-interval
  view range conjunct ``I`` is stored as one 5-lane slot
  ``(column id, lo, lo_rank, hi, hi_rank)``; the query side is the hull of
  its per-class interval set. ``I`` is convex, and the real per-class view
  set is the intersection of its conjuncts (a subset of ``I``), so
  ``hull(Q) not within I`` implies the real containment test fails too.
  Anything the slot encoding cannot express (multi-interval disjunctions,
  non-numeric bounds, check-constraint antecedents) degrades to
  "always passes" on the affected side, never to a reject.

Bound encoding matches ``ranges._lower_covers`` / ``_upper_covers``
exactly: a lower bound is ``(value, 0 if inclusive else 1)`` with
``(-inf, 0)`` for unbounded, and the view covers the query at the lower
end iff ``vlo < qlo or (vlo == qlo and vlo_rank <= qlo_rank)``; an upper
bound is ``(value, 1 if inclusive else 0)`` with ``(+inf, 1)`` for
unbounded and the mirrored comparison. Query-side bounds that cannot be
encoded poison their side to always-pass.

Both tables follow the ``PackedBitsetTable`` discipline: numpy and
pure-python backends produce identical results from an identical
little-endian byte image, snapshots share buffers copy-on-write, and
``packed_bytes``/``adopt_buffer`` make them shared-memory friendly so the
serving pool's forked workers sweep one physical copy.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from .equivalence import ColumnKey
# Deliberately reuse the interning module's backend selection so the
# pre-verifier always sweeps on the same kernel as the packed lattice
# (REPRO_PACKED_BACKEND=pure forces both to the pure path together).
from .interning import _ACTIVE_NUMPY, PackedBitsetTable
from .matching import (
    EQUIJOIN_REJECT_DETAIL,
    MatchResult,
    RejectReason,
    STAGE_PREVERIFY,
    _query_range_sets,
    range_reject_detail,
)

__all__ = [
    "CandidatePreVerifier",
    "PackedRangeTable",
    "PreVerifierSchema",
    "QuerySignature",
]

_NEG_INF = float("-inf")
_POS_INF = float("inf")

#: Lanes per range slot: (column id, lo, lo_rank, hi, hi_rank).
SLOT_LANES = 5

#: Rows are padded to the table's slot width with a slot that covers any
#: query bounds (unbounded on both sides); the column id is immaterial
#: because the comparison passes regardless of the gathered values.
_PAD_SLOT = (0.0, _NEG_INF, 0.0, _POS_INF, 1.0)

#: Slot for an empty view-side interval set: it fails containment against
#: every encodable (non-poisoned) query side -- exactly what an empty
#: per-class view set does against a non-empty query set -- and passes
#: only against poisoned sides, where the screen falls back to the full
#: match anyway.
_EMPTY_SLOT = (0.0, _POS_INF, 0.0, _NEG_INF, 1.0)

# Exact integers beyond 2**53 do not round-trip through float64; treat
# them (and NaNs, and anything non-numeric) as unencodable.
_FLOAT_EXACT = 2 ** 53

#: Below this many screened rows the numpy sweep's fixed overhead
#: (index-array construction, gather, reduction) exceeds a direct tuple
#: walk, so :meth:`PackedRangeTable.covers` answers tiny batches on the
#: pure path even under the numpy backend. Both paths read the same
#: canonical rows, so the verdicts are identical by construction.
_SMALL_BATCH = 24


def _encode_value(value: object) -> float | None:
    """``value`` as an exactly-comparable float64, or None if impossible."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, int):
        if -_FLOAT_EXACT <= value <= _FLOAT_EXACT:
            return float(value)
        return None
    if isinstance(value, float):
        return value if value == value else None
    return None


class PackedRangeTable:
    """Fixed-width float64 slot rows storing view range conjuncts.

    Row ``i`` holds the encodable range conjuncts of one registered view,
    ``SLOT_LANES`` float64 lanes per conjunct, padded to the table-wide
    maximum slot count with always-covering pad slots. The canonical
    packed form is the little-endian float64 byte image of the padded
    rows, identical across backends; the numpy backend wraps it zero-copy
    in a ``(rows, width * SLOT_LANES)`` matrix and answers
    :meth:`covers` for a batch of rows with one vectorized comparison,
    while the pure backend walks the (unpadded) canonical tuples.
    """

    __slots__ = (
        "_use_numpy",
        "_rows",
        "_slot_width",
        "_shared_rows",
        "_dirty",
        "_data",
        "_matrix",
        "generation",
        "__weakref__",
    )

    def __init__(self, backend: str | None = None) -> None:
        if backend is None:
            self._use_numpy = _ACTIVE_NUMPY is not None
        elif backend == "numpy":
            if _ACTIVE_NUMPY is None:
                raise RuntimeError("numpy backend requested but numpy is absent")
            self._use_numpy = True
        elif backend == "pure":
            self._use_numpy = False
        else:
            raise ValueError(f"unknown packed backend {backend!r}")
        #: Canonical per-row flat value tuples (unpadded, len % SLOT_LANES == 0).
        self._rows: list[tuple[float, ...]] = []
        self._slot_width = 0
        self._shared_rows = False
        self._dirty = True
        self._data: bytes | memoryview = b""
        self._matrix = None
        self.generation = 0

    # -- shape ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def backend(self) -> str:
        return "packed-numpy" if self._use_numpy else "packed-pure"

    @property
    def slot_width(self) -> int:
        """Slots per packed row (the widest row registered so far)."""
        return self._slot_width

    @property
    def nbytes(self) -> int:
        return len(self._rows) * self._slot_width * SLOT_LANES * 8

    def packed_bytes(self) -> bytes:
        """The packed little-endian float64 image (backend-independent)."""
        self._ensure_packed()
        data = self._data
        return data if isinstance(data, bytes) else bytes(data)

    # -- mutation (registration side; callers serialize) ----------------------

    def _own_rows(self) -> None:
        if self._shared_rows:
            self._rows = list(self._rows)
            self._shared_rows = False

    def append(self, slots: Sequence[tuple[float, float, float, float, float]]) -> int:
        """Add one row of range slots; returns its row index."""
        self._own_rows()
        flat: list[float] = []
        for slot in slots:
            flat.extend(slot)
        self._rows.append(tuple(flat))
        if len(slots) > self._slot_width:
            self._slot_width = len(slots)
        self._dirty = True
        self.generation += 1
        return len(self._rows) - 1

    def pop(self, row: int) -> int | None:
        """Swap-remove ``row``; returns the old index of the moved row."""
        self._own_rows()
        rows = self._rows
        last = rows.pop()
        self._dirty = True
        self.generation += 1
        if row == len(rows):
            return None
        rows[row] = last
        return len(rows)

    # -- packing --------------------------------------------------------------

    def _ensure_packed(self) -> None:
        if not self._dirty:
            return
        width = self._slot_width
        lanes = width * SLOT_LANES
        packer = struct.Struct(f"<{lanes}d") if lanes else None
        pieces: list[bytes] = []
        for values in self._rows:
            pad = width - len(values) // SLOT_LANES
            if pad:
                values = values + _PAD_SLOT * pad
            if packer is not None:
                pieces.append(packer.pack(*values))
        data = b"".join(pieces)
        self._data = data
        if self._use_numpy and self._rows:
            self._matrix = _ACTIVE_NUMPY.frombuffer(data, dtype="<f8").reshape(
                len(self._rows), lanes
            )
        else:
            self._matrix = None
        self._dirty = False

    # -- sweeping (query side, read-only) -------------------------------------

    def covers(self, rows: Sequence[int], signature: "QuerySignature") -> list[bool]:
        """Per-row truth of "every slot's interval covers the query hull".

        ``rows`` index this table; the signature supplies the per-column
        query hull bounds. A row with no slots trivially covers.
        """
        if not rows:
            return []
        if self._use_numpy and len(rows) >= _SMALL_BATCH:
            self._ensure_packed()
            if self._slot_width == 0:
                return [True] * len(rows)
            np = _ACTIVE_NUMPY
            sub = self._matrix[np.asarray(rows, dtype=np.intp)]
            cols = sub[:, 0::SLOT_LANES].astype(np.intp)
            vlo = sub[:, 1::SLOT_LANES]
            vlork = sub[:, 2::SLOT_LANES]
            vhi = sub[:, 3::SLOT_LANES]
            vhirk = sub[:, 4::SLOT_LANES]
            qlo, qlork, qhi, qhirk = signature.arrays(np)
            glo = qlo[cols]
            ghi = qhi[cols]
            lower_ok = (vlo < glo) | ((vlo == glo) & (vlork <= qlork[cols]))
            upper_ok = (vhi > ghi) | ((vhi == ghi) & (vhirk >= qhirk[cols]))
            return (lower_ok & upper_ok).all(axis=1).tolist()
        table = self._rows
        qlo = signature.qlo
        qlork = signature.qlork
        qhi = signature.qhi
        qhirk = signature.qhirk
        out: list[bool] = []
        for row in rows:
            values = table[row]
            ok = True
            for i in range(0, len(values), SLOT_LANES):
                column = int(values[i])
                lo = values[i + 1]
                hi = values[i + 3]
                glo = qlo[column]
                ghi = qhi[column]
                if not (
                    (lo < glo or (lo == glo and values[i + 2] <= qlork[column]))
                    and (hi > ghi or (hi == ghi and values[i + 4] >= qhirk[column]))
                ):
                    ok = False
                    break
            out.append(ok)
        return out

    # -- copy-on-write snapshots ----------------------------------------------

    def snapshot(self) -> "PackedRangeTable":
        """A table sharing this one's rows and packed buffers (COW)."""
        clone = PackedRangeTable.__new__(PackedRangeTable)
        clone._use_numpy = self._use_numpy
        self._shared_rows = True
        clone._rows = self._rows
        clone._shared_rows = True
        clone._slot_width = self._slot_width
        clone._dirty = self._dirty
        clone._data = self._data
        clone._matrix = self._matrix
        clone.generation = self.generation
        return clone

    def shares_buffer_with(self, other: "PackedRangeTable") -> bool:
        return (
            not self._dirty
            and not other._dirty
            and self._data is other._data
        )

    def adopt_buffer(self, buffer) -> None:
        """Re-point the packed image at an externally owned buffer.

        Same contract as :meth:`PackedBitsetTable.adopt_buffer`: the
        buffer must hold exactly this table's packed bytes; later
        mutations rebuild a private image, un-sharing automatically.
        """
        self._ensure_packed()
        view = memoryview(buffer).cast("B")
        data = self._data
        if len(view) != len(data):
            raise ValueError(
                f"buffer holds {len(view)} bytes, table packs {len(data)}"
            )
        if view != data:
            raise ValueError("buffer content differs from the packed image")
        self._data = view
        if self._use_numpy and self._rows:
            self._matrix = _ACTIVE_NUMPY.frombuffer(view, dtype="<f8").reshape(
                len(self._rows), self._slot_width * SLOT_LANES
            )


class QuerySignature:
    """One query's pre-verifier encoding against a schema version.

    Holds the query's equijoin pair bitmask and per-column-id hull bounds;
    numpy array forms are built lazily and cached (the same signature is
    reused across every shard of a sharded tree and across candidates).
    """

    __slots__ = (
        "pair_version",
        "column_version",
        "pair_mask",
        "qlo",
        "qlork",
        "qhi",
        "qhirk",
        "_arrays",
    )

    def __init__(
        self,
        pair_version: int,
        column_version: int,
        pair_mask: int,
        qlo: list[float],
        qlork: list[float],
        qhi: list[float],
        qhirk: list[float],
    ) -> None:
        self.pair_version = pair_version
        self.column_version = column_version
        self.pair_mask = pair_mask
        self.qlo = qlo
        self.qlork = qlork
        self.qhi = qhi
        self.qhirk = qhirk
        self._arrays = None

    def arrays(self, np) -> tuple:
        arrays = self._arrays
        if arrays is None:
            arrays = tuple(
                np.asarray(values, dtype=np.float64)
                for values in (self.qlo, self.qlork, self.qhi, self.qhirk)
            )
            self._arrays = arrays
        return arrays


class PreVerifierSchema:
    """Shared atom registry for pre-verifier encodings.

    Like the lattice :class:`~repro.core.interning.KeyInterner`, one
    schema is shared by every shard of a filter tree and survives the
    serving layer's epoch rebuilds, so bit/column-id assignments (and the
    packed rows encoded against them) stay valid across snapshot churn.
    Interning writes run on the registration path only (serialized by the
    callers' writer lock); the query side reads known assignments without
    mutating.
    """

    __slots__ = ("_pair_bits", "_column_ids")

    def __init__(self) -> None:
        # Equijoin pairs: sorted (a, b) column-key pairs of nontrivial
        # equivalence classes, each assigned one bit position.
        self._pair_bits: dict[tuple[ColumnKey, ColumnKey], int] = {}
        # Range columns: each column key carrying a range conjunct in some
        # registered view, assigned a dense id (the gather index of the
        # query-side bound arrays).
        self._column_ids: dict[ColumnKey, int] = {}

    @property
    def pair_count(self) -> int:
        return len(self._pair_bits)

    @property
    def column_count(self) -> int:
        return len(self._column_ids)

    # -- interning (registration side) ----------------------------------------

    def pair_mask(self, pairs: Iterable[tuple[ColumnKey, ColumnKey]]) -> int:
        bits = self._pair_bits
        encoded = 0
        for pair in pairs:
            bit = bits.get(pair)
            if bit is None:
                bit = 1 << len(bits)
                bits[pair] = bit
            encoded |= bit
        return encoded

    def column_id(self, key: ColumnKey) -> int:
        ids = self._column_ids
        ident = ids.get(key)
        if ident is None:
            ident = len(ids)
            ids[key] = ident
        return ident

    # -- query-side signature (read-only) -------------------------------------

    def signature_for(self, query) -> QuerySignature:
        """The query's signature, cached on the description until the
        schema grows (new pairs/columns interned by later registrations)."""
        cached = query.__dict__.get("_preverify_sig")
        if (
            cached is not None
            and cached[0] is self
            and cached[1].pair_version == len(self._pair_bits)
            and cached[1].column_version == len(self._column_ids)
        ):
            return cached[1]
        signature = self._build_signature(query)
        query.__dict__["_preverify_sig"] = (self, signature)
        return signature

    def _build_signature(self, query) -> QuerySignature:
        eqclasses = query.eqclasses
        bits = self._pair_bits
        pair_mask = 0
        for cls in eqclasses.nontrivial_classes():
            members = sorted(cls)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    bit = bits.get((members[i], members[j]))
                    if bit is not None:
                        pair_mask |= bit
        sets = _query_range_sets(query)
        count = max(1, len(self._column_ids))
        # Default is the per-side poison (always passes the covers test):
        # columns outside the query's tables are never gathered by a
        # screened row, empty query sets make the real test trivially
        # true, and unencodable bounds must not cause rejects.
        qlo = [_POS_INF] * count
        qlork = [1.0] * count
        qhi = [_NEG_INF] * count
        qhirk = [0.0] * count
        for key, ident in self._column_ids.items():
            if key not in eqclasses:
                continue
            interval_set = sets.get(eqclasses.find(key))
            if interval_set is None:
                # Unconstrained query class: the view must cover the
                # unbounded set, encoded as unbounded hull bounds.
                qlo[ident] = _NEG_INF
                qlork[ident] = 0.0
                qhi[ident] = _POS_INF
                qhirk[ident] = 1.0
                continue
            intervals = interval_set.intervals
            if not intervals:
                continue  # empty query set: containment is trivially true
            lower = intervals[0].lower
            upper = intervals[-1].upper
            if lower is None:
                qlo[ident] = _NEG_INF
                qlork[ident] = 0.0
            else:
                value = _encode_value(lower.value)
                if value is not None:
                    qlo[ident] = value
                    qlork[ident] = 0.0 if lower.inclusive else 1.0
            if upper is None:
                qhi[ident] = _POS_INF
                qhirk[ident] = 1.0
            else:
                value = _encode_value(upper.value)
                if value is not None:
                    qhi[ident] = value
                    qhirk[ident] = 1.0 if upper.inclusive else 0.0
        return QuerySignature(
            len(self._pair_bits),
            len(self._column_ids),
            pair_mask,
            qlo,
            qlork,
            qhi,
            qhirk,
        )


class CandidatePreVerifier:
    """Per-tree columnar screen over registered views.

    Owns one :class:`PackedBitsetTable` of equijoin pair masks and one
    :class:`PackedRangeTable` of range slots, row-aligned with each other
    and indexed by view name. ``screen`` maps surviving filter-tree
    candidates onto rows and answers, per candidate, either ``None``
    (proceed to ``match_view``) or a fully-formed rejecting
    :class:`MatchResult` whose reason and detail are exactly what
    ``match_view`` would have produced.
    """

    __slots__ = (
        "schema",
        "eq_table",
        "range_table",
        "_row_of",
        "_names",
        "_eligible",
        "_range_ok",
    )

    def __init__(self, schema: PreVerifierSchema | None = None) -> None:
        self.schema = schema if schema is not None else PreVerifierSchema()
        self.eq_table = PackedBitsetTable()
        self.range_table = PackedRangeTable()
        self._row_of: dict[str, int] = {}
        self._names: list[str] = []
        #: Row may be screened at all (has a registration-time context and
        #: is not DISTINCT, so the real pipeline's pre-equijoin guards are
        #: decided by per-query facts the screen checks itself).
        self._eligible: list[bool] = []
        #: Row may be range-screened: check-constraint antecedents would
        #: weaken/strengthen the query side per view, which the shared
        #: query signature cannot express.
        self._range_ok: list[bool] = []

    # -- registration side -----------------------------------------------------

    def add(self, name: str, description, context) -> None:
        pairs: list[tuple[ColumnKey, ColumnKey]] = []
        for cls in description.eqclasses.nontrivial_classes():
            members = sorted(cls)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pairs.append((members[i], members[j]))
        mask = self.schema.pair_mask(pairs)
        eq_table = self.eq_table
        # Align this table's width with the shared schema so packed rows
        # can hold every assigned bit (positions are global).
        while eq_table.width_bits < self.schema.pair_count:
            eq_table.alloc_bit()
        row = eq_table.append(mask)
        eligible = context is not None and not description.statement.distinct
        range_ok = eligible and not (
            context.check_ranges or context.check_or_ranges
        )
        slots: list[tuple[float, float, float, float, float]] = []
        if range_ok:
            for column, interval_set in context.range_items:
                intervals = interval_set.intervals
                if len(intervals) == 1:
                    slots.append(self._encode_slot(column, intervals[0]))
                elif not intervals:
                    slots.append(_EMPTY_SLOT)
                # Multi-interval conjuncts (OR-ranges) are not convex;
                # skipping the slot keeps the per-conjunct screen sound.
        range_row = self.range_table.append(slots)
        assert range_row == row
        self._row_of[name] = row
        self._names.append(name)
        self._eligible.append(eligible)
        self._range_ok.append(range_ok)

    def _encode_slot(
        self, column: ColumnKey, interval
    ) -> tuple[float, float, float, float, float]:
        # Unencodable view bounds degrade to unbounded (pass-biased).
        lo, lork = _NEG_INF, 0.0
        if interval.lower is not None:
            value = _encode_value(interval.lower.value)
            if value is not None:
                lo = value
                lork = 0.0 if interval.lower.inclusive else 1.0
        hi, hirk = _POS_INF, 1.0
        if interval.upper is not None:
            value = _encode_value(interval.upper.value)
            if value is not None:
                hi = value
                hirk = 1.0 if interval.upper.inclusive else 0.0
        return (float(self.schema.column_id(column)), lo, lork, hi, hirk)

    def remove(self, name: str) -> None:
        row = self._row_of.pop(name, None)
        if row is None:
            return
        self.eq_table.pop(row)
        self.range_table.pop(row)
        last_name = self._names.pop()
        last_eligible = self._eligible.pop()
        last_range_ok = self._range_ok.pop()
        if row != len(self._names):
            self._names[row] = last_name
            self._eligible[row] = last_eligible
            self._range_ok[row] = last_range_ok
            self._row_of[last_name] = row

    def snapshot(self) -> "CandidatePreVerifier":
        """A clone sharing the schema and the packed buffers (COW)."""
        clone = CandidatePreVerifier.__new__(CandidatePreVerifier)
        clone.schema = self.schema
        clone.eq_table = self.eq_table.snapshot()
        clone.range_table = self.range_table.snapshot()
        clone._row_of = dict(self._row_of)
        clone._names = list(self._names)
        clone._eligible = list(self._eligible)
        clone._range_ok = list(self._range_ok)
        return clone

    def packed_tables(self) -> tuple:
        return (self.eq_table, self.range_table)

    # -- query side (read-only) ------------------------------------------------

    def screen(self, query, candidates: Sequence) -> list:
        """Per-candidate verdicts: ``None`` or a rejecting ``MatchResult``.

        ``candidates`` are the filter tree's surviving
        :class:`~repro.core.filtertree.RegisteredView` objects. Only
        candidates whose table set equals the query's (no extra-table
        elimination) and whose kind passes the pre-equijoin guards are
        screened; everything else proceeds to the full match untouched.
        """
        verdicts: list = [None] * len(candidates)
        if not candidates:
            return verdicts
        signature = self.schema.signature_for(query)
        row_of = self._row_of
        eligible = self._eligible
        query_tables = query.tables
        query_aggregate = query.is_aggregate
        rows: list[int] = []
        positions: list[int] = []
        for position, candidate in enumerate(candidates):
            description = candidate.description
            row = row_of.get(description.name)
            if row is None or not eligible[row]:
                continue
            if description.tables != query_tables:
                continue
            if description.is_aggregate and not query_aggregate:
                continue
            rows.append(row)
            positions.append(position)
        if not rows:
            return verdicts
        width = self.eq_table.width_bits
        foreign = ~signature.pair_mask & ((1 << width) - 1)
        if foreign:
            equijoin_hits = self.eq_table.rows_intersecting(rows, foreign)
        else:
            equijoin_hits = [False] * len(rows)
        range_ok = self._range_ok
        range_rows: list[int] = []
        range_positions: list[int] = []
        for i, position in enumerate(positions):
            if equijoin_hits[i]:
                verdicts[position] = MatchResult(
                    view=candidates[position].description,
                    reject_reason=RejectReason.EQUIJOIN,
                    reject_detail=EQUIJOIN_REJECT_DETAIL,
                    stage=STAGE_PREVERIFY,
                )
            elif range_ok[rows[i]]:
                range_rows.append(rows[i])
                range_positions.append(position)
        if range_rows:
            covered = self.range_table.covers(range_rows, signature)
            for position, passed in zip(range_positions, covered):
                if passed:
                    continue
                context = candidates[position].match_context
                if context is None:
                    continue
                detail = range_reject_detail(query, context)
                if detail is None:
                    continue  # inconsistent screen: defer to the full match
                verdicts[position] = MatchResult(
                    view=candidates[position].description,
                    reject_reason=RejectReason.RANGE,
                    reject_detail=detail,
                    stage=STAGE_PREVERIFY,
                )
        return verdicts
