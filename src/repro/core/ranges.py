"""Interval algebra for the range subsumption test (Section 3.1.2).

Each equivalence class of a query or view gets one interval, derived by
intersecting all range predicates (``col op constant``) whose column falls
in the class. The range subsumption test then checks that every view
interval contains the corresponding query interval, and the differences in
bounds become compensating predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sql.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
)
from .equivalence import ColumnKey, EquivalenceClasses


@dataclass(frozen=True)
class Bound:
    """One endpoint: a constant value and whether the endpoint is included."""

    value: object
    inclusive: bool

    def __str__(self) -> str:
        return f"{self.value}{'=' if self.inclusive else ''}"


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded, possibly empty) interval over an ordered domain.

    ``lower is None`` / ``upper is None`` mean unbounded on that side. The
    interval is *empty* when the bounds contradict; emptiness is preserved
    rather than normalized away so compensating predicates can still be
    generated from the raw bounds.
    """

    lower: Bound | None = None
    upper: Bound | None = None

    @property
    def is_unbounded(self) -> bool:
        return self.lower is None and self.upper is None

    @property
    def is_point(self) -> bool:
        """True for a single-value interval such as the one ``A = c`` yields."""
        return (
            self.lower is not None
            and self.upper is not None
            and self.lower.inclusive
            and self.upper.inclusive
            and self.lower.value == self.upper.value
        )

    @property
    def is_empty(self) -> bool:
        if self.lower is None or self.upper is None:
            return False
        lo, hi = self.lower, self.upper
        try:
            if lo.value > hi.value:  # type: ignore[operator]
                return True
            if lo.value == hi.value:
                return not (lo.inclusive and hi.inclusive)
        except TypeError:
            # Incomparable constants (mixed types) -- treat as non-empty;
            # the subsumption test below degrades to exact-bound matching.
            return False
        return False

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(
            lower=_tighter_lower(self.lower, other.lower),
            upper=_tighter_upper(self.upper, other.upper),
        )

    def contains(self, other: "Interval") -> bool:
        """True when every value in ``other`` lies in ``self``.

        An empty ``other`` is contained in anything (the query selects no
        rows, so any view supplies them all).
        """
        if other.is_empty:
            return True
        return _lower_covers(self.lower, other.lower) and _upper_covers(
            self.upper, other.upper
        )

    def contains_value(self, value: object) -> bool:
        """Membership test for a constant (used by null-rejection analysis)."""
        if value is None:
            return False
        if self.lower is not None:
            try:
                if value < self.lower.value:  # type: ignore[operator]
                    return False
                if value == self.lower.value and not self.lower.inclusive:
                    return False
            except TypeError:
                return False
        if self.upper is not None:
            try:
                if value > self.upper.value:  # type: ignore[operator]
                    return False
                if value == self.upper.value and not self.upper.inclusive:
                    return False
            except TypeError:
                return False
        return True

    def __str__(self) -> str:
        left = "(-inf" if self.lower is None else (
            f"[{self.lower.value}" if self.lower.inclusive else f"({self.lower.value}"
        )
        right = "+inf)" if self.upper is None else (
            f"{self.upper.value}]" if self.upper.inclusive else f"{self.upper.value})"
        )
        return f"{left}, {right}"


UNBOUNDED = Interval()


def _tighter_lower(a: Bound | None, b: Bound | None) -> Bound | None:
    if a is None:
        return b
    if b is None:
        return a
    try:
        if a.value > b.value:  # type: ignore[operator]
            return a
        if b.value > a.value:  # type: ignore[operator]
            return b
    except TypeError:
        return a  # incomparable: keep first (conservative)
    return a if not a.inclusive else b


def _tighter_upper(a: Bound | None, b: Bound | None) -> Bound | None:
    if a is None:
        return b
    if b is None:
        return a
    try:
        if a.value < b.value:  # type: ignore[operator]
            return a
        if b.value < a.value:  # type: ignore[operator]
            return b
    except TypeError:
        return a
    return a if not a.inclusive else b


def _lower_covers(outer: Bound | None, inner: Bound | None) -> bool:
    """True when the outer lower bound admits everything the inner one does."""
    if outer is None:
        return True
    if inner is None:
        return False
    try:
        if outer.value < inner.value:  # type: ignore[operator]
            return True
        if outer.value > inner.value:  # type: ignore[operator]
            return False
    except TypeError:
        return outer == inner
    return outer.inclusive or not inner.inclusive


def _upper_covers(outer: Bound | None, inner: Bound | None) -> bool:
    if outer is None:
        return True
    if inner is None:
        return False
    try:
        if outer.value > inner.value:  # type: ignore[operator]
            return True
        if outer.value < inner.value:  # type: ignore[operator]
            return False
    except TypeError:
        return outer == inner
    return outer.inclusive or not inner.inclusive


# ---------------------------------------------------------------------------
# Range-predicate recognition and interval derivation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangePredicate:
    """A recognised atomic range conjunct: ``column op constant``."""

    column: ColumnKey
    op: str  # one of = < <= > >=
    value: object

    def interval(self) -> Interval:
        if self.op == "=":
            bound = Bound(self.value, inclusive=True)
            return Interval(lower=bound, upper=bound)
        if self.op in ("<", "<="):
            return Interval(upper=Bound(self.value, self.op == "<="))
        if self.op in (">", ">="):
            return Interval(lower=Bound(self.value, self.op == ">="))
        raise ValueError(f"not a range operator: {self.op}")


def as_range_predicate(conjunct: Expression) -> RangePredicate | None:
    """Recognise ``col op const`` / ``const op col`` (op in ``= < <= > >=``).

    Returns None when the conjunct is not a range predicate; ``<>`` is
    deliberately excluded (it is a residual predicate in the paper's
    classification).
    """
    if not isinstance(conjunct, BinaryOp) or conjunct.op not in ("=", "<", "<=", ">", ">="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        if right.value is None:
            return None  # comparisons with NULL select nothing; keep residual
        return RangePredicate(left.key, conjunct.op, right.value)
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        if left.value is None:
            return None
        mirrored = conjunct.mirrored()
        assert isinstance(mirrored.left, ColumnRef) and isinstance(mirrored.right, Literal)
        return RangePredicate(mirrored.left.key, mirrored.op, mirrored.right.value)
    return None


def derive_ranges(
    predicates: Iterable[RangePredicate], eqclasses: EquivalenceClasses
) -> dict[ColumnKey, Interval]:
    """Intersect range predicates per equivalence class.

    The result maps each class *representative* (``eqclasses.find``) to the
    intersection of the intervals of all range predicates on columns of that
    class. Classes without range predicates are absent (conceptually
    unbounded).
    """
    ranges: dict[ColumnKey, Interval] = {}
    for predicate in predicates:
        representative = eqclasses.find(predicate.column)
        current = ranges.get(representative, UNBOUNDED)
        ranges[representative] = current.intersect(predicate.interval())
    return ranges


def compensating_range_conjuncts(
    view_interval: Interval, query_interval: Interval
) -> list[tuple[str, object]]:
    """The ``(op, constant)`` pairs that reduce the view range to the query's.

    Assumes containment already holds. A point query interval compensates
    with a single equality; otherwise each differing bound contributes one
    predicate. Bounds the view already enforces are skipped.
    """
    if query_interval.is_point:
        assert query_interval.lower is not None
        if view_interval.is_point:
            return []  # identical points (containment guaranteed the match)
        return [("=", query_interval.lower.value)]
    compensations: list[tuple[str, object]] = []
    if query_interval.lower is not None and query_interval.lower != view_interval.lower:
        op = ">=" if query_interval.lower.inclusive else ">"
        compensations.append((op, query_interval.lower.value))
    if query_interval.upper is not None and query_interval.upper != view_interval.upper:
        op = "<=" if query_interval.upper.inclusive else "<"
        compensations.append((op, query_interval.upper.value))
    return compensations
