"""The shallow residual-predicate matcher (Section 3.1.2, residual test).

An expression is represented by a text template with column references
omitted plus the ordered list of those references. Two expressions match
when the templates are string-equal and each pair of corresponding column
references lies in the same (query) equivalence class.

The same representation doubles for output-expression and grouping-
expression matching (Sections 3.1.4 and 3.3) and supplies the textual keys
of the filter tree's residual/output/grouping-expression levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.expressions import BinaryOp, ColumnRef, Expression, Literal
from ..sql.printer import shallow_template
from .equivalence import EquivalenceClasses

#: Binary operators whose operands may be reordered without changing the
#: predicate's meaning. ``=`` and ``<>`` are symmetric comparisons; ``<``
#: and friends are handled upstream by mirroring, not here.
_COMMUTATIVE_OPS = frozenset({"+", "*", "=", "<>"})


def _operand_key(operand: Expression) -> tuple[int, str, tuple]:
    """Deterministic sort key for one commutative operand.

    Literals order last so ``a <> 5`` keeps its column-first orientation
    (matching the literal-right canonicalization of ``normalize``); ties
    between equal templates break on the referenced column keys.
    """
    template, refs = shallow_template(operand)
    return (
        1 if isinstance(operand, Literal) else 0,
        template,
        tuple(ref.key for ref in refs),
    )


def canonical_operand_order(expression: Expression) -> Expression:
    """Reorder commutative operands (``+ * = <>``) deterministically.

    ``a = b`` and ``b = a`` — and commutative arithmetic like ``a + b``
    vs. ``b + a`` — must produce identical shallow templates, or
    residual/output matching rejects views that differ only in operand
    order. The rewrite is bottom-up and purely syntactic; it never
    changes evaluation semantics.
    """

    def reorder(node: Expression) -> Expression:
        if (
            isinstance(node, BinaryOp)
            and node.op in _COMMUTATIVE_OPS
            and _operand_key(node.right) < _operand_key(node.left)
        ):
            return BinaryOp(node.op, node.right, node.left)
        return node

    return expression.transform(reorder)


@dataclass(frozen=True)
class ShallowForm:
    """An expression's shallow-match representation."""

    template: str
    refs: tuple[ColumnRef, ...]
    expression: Expression

    @classmethod
    def of(cls, expression: Expression) -> "ShallowForm":
        template, refs = shallow_template(canonical_operand_order(expression))
        return cls(template=template, refs=refs, expression=expression)

    def matches(self, other: "ShallowForm", eqclasses: EquivalenceClasses) -> bool:
        """Shallow equivalence under the given equivalence classes."""
        if self.template != other.template:
            return False
        if len(self.refs) != len(other.refs):
            return False
        for mine, theirs in zip(self.refs, other.refs):
            if mine.key == theirs.key:
                continue
            if mine.key not in eqclasses or theirs.key not in eqclasses:
                return False
            if not eqclasses.same_class(mine.key, theirs.key):
                return False
        return True


def match_residuals(
    view_residuals: tuple[ShallowForm, ...],
    query_residuals: tuple[ShallowForm, ...],
    eqclasses: EquivalenceClasses,
) -> tuple[bool, tuple[ShallowForm, ...]]:
    """Run the residual subsumption test.

    Returns ``(passed, missing)``: ``passed`` is False when some view
    residual matches no query residual (the view filters rows the query
    needs); ``missing`` lists the query residuals that matched no view
    residual and must therefore be enforced on top of the view.
    """
    matched_query: set[int] = set()
    for view_form in view_residuals:
        found = False
        for i, query_form in enumerate(query_residuals):
            if view_form.matches(query_form, eqclasses):
                matched_query.add(i)
                found = True
        if not found:
            return False, ()
    missing = tuple(
        form for i, form in enumerate(query_residuals) if i not in matched_query
    )
    return True, missing
