"""Sharded filter trees: partitioning the view catalog for parallel matching.

A :class:`ShardedFilterTree` splits the registered views across several
independent :class:`~repro.core.filtertree.FilterTree` instances that share
one :class:`~repro.core.interning.KeyInterner` (one probe binding serves
every shard). Shard assignment hashes the view *name* (CRC-32, stable
across processes and runs), so a view lands on the same shard in every
epoch and rebuilding after a registration change only re-indexes the one
affected shard -- the serving layer's epoch snapshots share the untouched
shard trees structurally.

Candidate semantics are identical to a single tree: the per-shard
candidate lists are merged in global registration order, so matching
visits views in the same order regardless of shard count or worker count
-- the property the parallel-equivalence tests pin down. A search records
one tracing span per non-empty shard (``filter.shard``), which is how the
per-shard work distribution becomes observable.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Sequence
from zlib import crc32

from ..obs.telemetry import telemetry_hub
from ..obs.trace import current_tracer
from .filtertree import FilterTree, QueryProbe, RegisteredView
from .interning import KeyInterner
from .options import DEFAULT_OPTIONS, MatchOptions
from .preverify import PreVerifierSchema

if TYPE_CHECKING:
    from .describe import SpjgDescription

__all__ = ["DEFAULT_SHARD_COUNT", "ShardedFilterTree", "shard_index"]

DEFAULT_SHARD_COUNT = 4


def shard_index(name: str, shard_count: int) -> int:
    """Stable shard assignment by view name (CRC-32, process-independent)."""
    return crc32(name.encode("utf-8")) % shard_count


class ShardedFilterTree:
    """Several filter trees behind the single-tree interface.

    Duck-type compatible with :class:`FilterTree` for every operation the
    matcher and the serving layer use (register / unregister / candidates /
    views / attribution); ``shard_candidates`` additionally exposes the
    per-shard slices the parallel matcher fans out over.
    """

    def __init__(
        self,
        options: MatchOptions = DEFAULT_OPTIONS,
        shard_count: int = DEFAULT_SHARD_COUNT,
        interner: KeyInterner | None = None,
        use_interning: bool = True,
        preverify_schema: PreVerifierSchema | None = None,
        use_preverifier: bool = True,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if interner is None and use_interning:
            interner = KeyInterner()
        if preverify_schema is None and use_preverifier:
            # One schema across every shard: pair-bit and column-id
            # assignments are global, so one query signature serves all
            # shard screens (mirrors the shared interner).
            preverify_schema = PreVerifierSchema()
        self.options = options
        self.interner = interner
        self.preverify_schema = preverify_schema
        # Sink for per-shard filter timings on traced searches; the
        # owning matcher points it at its hub, ``None`` = process global.
        self.telemetry = None
        self.shards: tuple[FilterTree, ...] = tuple(
            FilterTree(
                options,
                interner=interner,
                use_interning=use_interning,
                preverify_schema=preverify_schema,
                use_preverifier=use_preverifier,
            )
            for _ in range(shard_count)
        )
        # Global registration order: candidate merging and ``views()`` use
        # it so shard layout never changes observable ordering.
        self._seq: dict[str, int] = {}
        self._next_seq = 0

    @classmethod
    def from_shards(
        cls,
        shards: Sequence[FilterTree],
        options: MatchOptions,
        interner: KeyInterner | None,
        seq: dict[str, int],
        next_seq: int,
        preverify_schema: PreVerifierSchema | None = None,
    ) -> "ShardedFilterTree":
        """Assemble a tree around existing shard trees (copy-on-write).

        The serving layer's epoch rebuild replaces only the shard a
        registration change touched and passes the remaining shard trees
        through unchanged; they are shared structurally with the previous
        epoch's snapshot, which is safe because published shards are never
        mutated again.
        """
        tree = cls.__new__(cls)
        tree.options = options
        tree.interner = interner
        tree.preverify_schema = preverify_schema
        tree.telemetry = None
        tree.shards = tuple(shards)
        tree._seq = seq
        tree._next_seq = next_seq
        return tree

    # -- registration ---------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_for(self, name: str) -> int:
        """Stable shard assignment by view name (CRC-32)."""
        return shard_index(name, len(self.shards))

    def __len__(self) -> int:
        return len(self._seq)

    def register(self, description: "SpjgDescription") -> RegisteredView:
        if description.name is None:
            raise ValueError("only named views can be registered")
        view = self.shards[self.shard_for(description.name)].register(description)
        self._seq[view.name] = self._next_seq
        self._next_seq += 1
        return view

    def register_prebuilt(self, view: RegisteredView) -> RegisteredView:
        name = view.description.name
        if name is None:
            raise ValueError("only named views can be registered")
        self.shards[self.shard_for(name)].register_prebuilt(view)
        self._seq[name] = self._next_seq
        self._next_seq += 1
        return view

    def unregister(self, name: str) -> None:
        if name not in self._seq:
            raise KeyError(f"view {name} not registered")
        self.shards[self.shard_for(name)].unregister(name)
        del self._seq[name]

    def views(self) -> tuple[RegisteredView, ...]:
        """All registered views, in global registration order."""
        ordered = sorted(self._seq.items(), key=lambda item: item[1])
        return tuple(
            self.shards[self.shard_for(name)].view(name) for name, _ in ordered
        )

    # -- searching ------------------------------------------------------------

    def shard_candidates(
        self, query: "SpjgDescription", shard_indices: Iterable[int]
    ) -> list[tuple[int, RegisteredView]]:
        """``(registration_seq, view)`` candidates of the given shards.

        The building block of both the merged sequential search and the
        parallel fan-out (each worker passes its assigned shard indices).
        Pairs are unsorted; callers order by sequence number.
        """
        probe = QueryProbe.cached_of(query, self.options)
        bound = (
            probe.bind(self.interner) if self.interner is not None else None
        )
        tracer = current_tracer()
        seq = self._seq
        pairs: list[tuple[int, RegisteredView]] = []
        for index in shard_indices:
            shard = self.shards[index]
            if not len(shard):
                continue
            started = time.perf_counter() if tracer.active else 0.0
            found: list[RegisteredView] = []
            shard.collect_candidates(probe, bound, found, query.is_aggregate)
            if tracer.active:
                elapsed = time.perf_counter() - started
                tracer.record_span(
                    "filter.shard",
                    elapsed,
                    shard=index,
                    views=len(shard),
                    candidates=len(found),
                )
                # Reuse the traced timing for the shard-skew sketch:
                # untraced searches pay nothing extra here.
                hub = (
                    self.telemetry
                    if self.telemetry is not None
                    else telemetry_hub()
                )
                hub.record("filter_shard_seconds", elapsed)
                hub.increment("filter_shard_probes")
            pairs.extend((seq[view.name], view) for view in found)
        return pairs

    def candidates(self, query: "SpjgDescription") -> list[RegisteredView]:
        """Views passing all filter conditions, in registration order."""
        pairs = self.shard_candidates(query, range(len(self.shards)))
        pairs.sort(key=lambda pair: pair[0])
        found = [view for _, view in pairs]
        tracer = current_tracer()
        if tracer.active:
            tracer.on_filter_tree(self, query, found)
        return found

    def preverify_screen(self, query: "SpjgDescription", candidates) -> list | None:
        """Merged per-candidate pre-verification verdicts across shards.

        Groups the candidate positions by owning shard, screens each
        shard's slice against its columnar tables (one shared
        :class:`~repro.core.preverify.QuerySignature` serves every shard),
        and reassembles verdicts position-aligned with ``candidates``.
        Returns ``None`` when no shard carries a pre-verifier.
        """
        verdicts: list = [None] * len(candidates)
        if not candidates:
            return verdicts
        by_shard: dict[int, list[int]] = {}
        for position, candidate in enumerate(candidates):
            by_shard.setdefault(
                self.shard_for(candidate.description.name), []
            ).append(position)
        screened = False
        for index, positions in by_shard.items():
            shard_verdicts = self.shards[index].preverify_screen(
                query, [candidates[p] for p in positions]
            )
            if shard_verdicts is None:
                continue
            screened = True
            for position, verdict in zip(positions, shard_verdicts):
                verdicts[position] = verdict
        return verdicts if screened else None

    def packed_tables(self):
        """Every shard's packed row tables, in shard order (may be empty)."""
        return tuple(
            table
            for shard in self.shards
            for table in shard.packed_tables()
        )

    # -- diagnostics ----------------------------------------------------------

    def lattice_node_count(self) -> int:
        return sum(shard.lattice_node_count() for shard in self.shards)

    def level_attribution(
        self, query: "SpjgDescription"
    ) -> list[tuple[str, int, int, tuple[str, ...]]]:
        """Merged per-level narrowing attribution across all shards."""
        per_shard = [
            shard.level_attribution(query)
            for shard in self.shards
            if len(shard)
        ]
        if not per_shard:
            return []
        merged: list[tuple[str, int, int, tuple[str, ...]]] = []
        for rows in zip(*per_shard):
            name = rows[0][0]
            entering = sum(row[1] for row in rows)
            survivors = sum(row[2] for row in rows)
            pruned = tuple(
                sorted(name for row in rows for name in row[3])
            )
            merged.append((name, entering, survivors, pruned))
        return merged

    def filter_statistics(self, query: "SpjgDescription") -> list[tuple[str, int]]:
        attribution = self.level_attribution(query)
        registered = attribution[0][1] if attribution else len(self)
        statistics: list[tuple[str, int]] = [("registered", registered)]
        statistics.extend(
            (name, survivors) for name, _, survivors, _ in attribution
        )
        return statistics
