"""Union substitutes: answering a query from several views (Section 7).

"Union substitutes cover the case when all rows needed are not available
from a single view but can be collected from several views. Overlapping
views together with SQL's bag semantics complicate the issue." -- the
paper leaves this as future work.

This module implements a restricted, provably sound form:

* the candidate views must match the query under the ordinary tests
  *except* for range subsumption on exactly one equivalence class (the
  "split class"): each view may cover only part of the query's range,
* each piece is compensated with the intersection of the query range and
  that view's range,
* the pieces' ranges must be **pairwise disjoint** (so bag semantics are
  preserved without de-duplication -- the complication the paper warns
  about never arises) and must **cover** the query's range.

The result is a :class:`UnionSubstitute` -- a list of single-view SELECTs
whose UNION ALL equals the query. Supported for non-aggregation queries;
pieces of an aggregation query would need a final re-aggregation across
pieces, which only works when the split class is part of the group-by --
also handled, since then every group lives in exactly one piece.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.expressions import BinaryOp, ColumnRef, Literal, conjunction
from ..sql.statements import SelectStatement
from .describe import SpjgDescription
from .equivalence import ColumnKey
from .matching import MatchResult, match_view
from .options import DEFAULT_OPTIONS, MatchOptions
from .ranges import Bound, Interval, UNBOUNDED, derive_ranges


@dataclass
class UnionSubstitute:
    """A set of per-view SELECTs whose UNION ALL computes the query."""

    pieces: tuple[SelectStatement, ...]
    view_names: tuple[str, ...]
    split_class: frozenset[ColumnKey]

    def execute(self, database):
        """Evaluate all pieces and concatenate (UNION ALL semantics)."""
        from ..engine.executor import QueryResult, execute

        rows: list[tuple] = []
        columns: tuple[str, ...] = ()
        for piece in self.pieces:
            result = execute(piece, database)
            columns = result.columns
            rows.extend(result.rows)
        return QueryResult(columns=columns, rows=rows)


@dataclass
class _PartialMatch:
    """A view that matches fully once its range on the split class is cut."""

    view: SpjgDescription
    view_interval: Interval
    result: MatchResult


def find_union_substitutes(
    query: SpjgDescription,
    views: list[SpjgDescription],
    options: MatchOptions = DEFAULT_OPTIONS,
    max_pieces: int = 4,
) -> list[UnionSubstitute]:
    """Find union substitutes for ``query`` over the given views.

    Only queries whose predicate constrains at least one class are
    considered (an unconstrained query could still be split by unbounded
    complements, but such views are rare and greedy assembly would be
    unbounded). Aggregation queries require the split class to appear in
    the group-by list.
    """
    if query.statement.distinct:
        # Each piece de-duplicates only within itself; if the output list
        # omits the split column, identical rows can appear in several
        # pieces and UNION ALL would keep them. Reject outright.
        return []
    substitutes: list[UnionSubstitute] = []
    for representative in query.ranges:
        split_class = query.eqclasses.class_of(representative)
        if query.is_aggregate and not _class_in_group_by(query, split_class):
            continue
        partials = _partial_matches(query, views, representative, options)
        if len(partials) < 2:
            continue
        assembled = _assemble(query, representative, partials, max_pieces)
        if assembled is not None:
            substitutes.append(assembled)
    return substitutes


def _class_in_group_by(
    query: SpjgDescription, split_class: frozenset[ColumnKey]
) -> bool:
    for expr in query.statement.group_by:
        if isinstance(expr, ColumnRef) and expr.key in split_class:
            return True
    return False


def _partial_matches(
    query: SpjgDescription,
    views: list[SpjgDescription],
    representative: ColumnKey,
    options: MatchOptions,
) -> list[_PartialMatch]:
    """Views that match when the query is narrowed to their range.

    The narrowing is expressed by *tightening the query range* to the
    intersection with the view's range and re-running the ordinary match;
    a view accepted this way provides exactly the piece of the query whose
    split-class values fall inside the view's interval.
    """
    query_interval = query.ranges[representative]
    partials: list[_PartialMatch] = []
    for view in views:
        if view.is_aggregate and not query.is_aggregate:
            continue
        view_ranges = _view_ranges_under_query_classes(query, view)
        view_interval = view_ranges.get(representative, UNBOUNDED)
        piece_interval = query_interval.intersect(view_interval)
        if piece_interval.is_empty:
            continue
        narrowed = _narrow_query(query, representative, piece_interval)
        if narrowed is None:
            continue
        result = match_view(narrowed, view, options)
        if result.matched:
            partials.append(
                _PartialMatch(
                    view=view, view_interval=piece_interval, result=result
                )
            )
    return partials


def _view_ranges_under_query_classes(
    query: SpjgDescription, view: SpjgDescription
) -> dict[ColumnKey, Interval]:
    predicates = [
        p for p in view.classified.range_predicates if p.column in query.eqclasses
    ]
    return derive_ranges(predicates, query.eqclasses)


def _narrow_query(
    query: SpjgDescription,
    representative: ColumnKey,
    piece_interval: Interval,
) -> SpjgDescription | None:
    """The query restricted to ``piece_interval`` on the split class."""
    column = ColumnRef(*representative)
    extra = []
    if piece_interval.lower is not None:
        op = ">=" if piece_interval.lower.inclusive else ">"
        extra.append(BinaryOp(op, column, Literal(piece_interval.lower.value)))
    if piece_interval.upper is not None:
        op = "<=" if piece_interval.upper.inclusive else "<"
        extra.append(BinaryOp(op, column, Literal(piece_interval.upper.value)))
    if not extra:
        return None
    conjuncts = [query.statement.where] if query.statement.where else []
    narrowed_where = conjunction(conjuncts + extra)
    narrowed = query.statement.with_where(narrowed_where)
    return SpjgDescription(
        narrowed, query.catalog, name=None, options=query.options
    )


def _assemble(
    query: SpjgDescription,
    representative: ColumnKey,
    partials: list[_PartialMatch],
    max_pieces: int,
) -> UnionSubstitute | None:
    """Greedy left-to-right assembly of disjoint pieces covering the range.

    Walks the query interval from its lower end, at each step picking the
    piece that starts at (or before) the uncovered point and reaches
    furthest; pieces are then re-cut at the stitch points so they are
    pairwise disjoint.
    """
    query_interval = query.ranges[representative]
    cursor: Bound | None = query_interval.lower  # lower edge of uncovered part
    chosen: list[tuple[Interval, _PartialMatch]] = []
    remaining = list(partials)
    while len(chosen) < max_pieces:
        candidates = [
            p for p in remaining if _covers_lower_edge(p.view_interval, cursor)
        ]
        if not candidates:
            return None
        best = max(candidates, key=lambda p: _upper_sort_key(p.view_interval))
        piece_interval = Interval(lower=cursor, upper=best.view_interval.upper)
        chosen.append((piece_interval, best))
        remaining.remove(best)
        if _upper_covers_query(best.view_interval, query_interval):
            if len(chosen) < 2:
                # A single view covers the whole range: that is ordinary
                # single-view matching's job, not a union substitute.
                return None
            return _build(query, representative, chosen)
        assert best.view_interval.upper is not None
        cursor = Bound(
            best.view_interval.upper.value,
            inclusive=not best.view_interval.upper.inclusive,
        )
    return None


def _covers_lower_edge(interval: Interval, cursor: Bound | None) -> bool:
    if interval.lower is None:
        return True
    if cursor is None:
        return False
    if interval.lower.value < cursor.value:  # type: ignore[operator]
        return True
    if interval.lower.value > cursor.value:  # type: ignore[operator]
        return False
    return interval.lower.inclusive or not cursor.inclusive


def _upper_sort_key(interval: Interval):
    if interval.upper is None:
        return (1, 0, 0)
    return (0, interval.upper.value, interval.upper.inclusive)


def _upper_covers_query(interval: Interval, query_interval: Interval) -> bool:
    if interval.upper is None:
        return True
    if query_interval.upper is None:
        return False
    if interval.upper.value > query_interval.upper.value:  # type: ignore[operator]
        return True
    if interval.upper.value < query_interval.upper.value:  # type: ignore[operator]
        return False
    return interval.upper.inclusive or not query_interval.upper.inclusive


def _build(
    query: SpjgDescription,
    representative: ColumnKey,
    chosen: list[tuple[Interval, _PartialMatch]],
) -> UnionSubstitute | None:
    """Re-match each piece against its view with the stitched interval."""
    pieces: list[SelectStatement] = []
    names: list[str] = []
    for piece_interval, partial in chosen:
        narrowed = _narrow_query(query, representative, piece_interval)
        if narrowed is None:
            return None
        result = match_view(narrowed, partial.view, query.options)
        if not result.matched or result.substitute is None:
            return None
        pieces.append(result.substitute)
        assert partial.view.name is not None
        names.append(partial.view.name)
    return UnionSubstitute(
        pieces=tuple(pieces),
        view_names=tuple(names),
        split_class=query.eqclasses.class_of(representative),
    )
