"""Seeded TPC-H-shaped data generation."""

from .tpch_gen import DATE_MAX, DATE_MIN, TpchScale, generate_tpch

__all__ = ["DATE_MAX", "DATE_MIN", "TpchScale", "generate_tpch"]
