"""A seeded TPC-H-shaped data generator.

Generates the eight TPC-H tables at an arbitrary scale with referential
integrity (every FK value exists in its parent), plausible value domains,
and deterministic output for a given seed. Dates are integer day numbers
(days since 1970-01-01, spanning 1992..1998 like dbgen).

The paper notes that the TPC-H scale factor does not affect optimization
time; the generated data exists so that tests can *execute* substitutes and
compare them against the original query (the correctness property the paper
takes as given), and so the cost model has real row counts to work from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..catalog.tpch import TPCH_BASE_CARDINALITIES
from ..engine.database import Database
from . import words

DATE_MIN = 8035   # 1992-01-01 as a day number
DATE_MAX = 10591  # 1998-12-31


@dataclass(frozen=True)
class TpchScale:
    """Row counts per table for one generation run."""

    region: int
    nation: int
    supplier: int
    customer: int
    part: int
    partsupp_per_part: int
    orders: int
    lineitem_max_per_order: int

    @classmethod
    def of(cls, scale: float) -> "TpchScale":
        def rows(table: str, minimum: int = 1) -> int:
            return max(minimum, round(TPCH_BASE_CARDINALITIES[table] * scale))

        return cls(
            region=len(words.REGIONS),
            nation=len(words.NATIONS),
            supplier=rows("supplier"),
            customer=rows("customer"),
            part=rows("part"),
            partsupp_per_part=4,
            orders=rows("orders"),
            lineitem_max_per_order=7,
        )


def generate_tpch(scale: float = 0.001, seed: int = 0) -> Database:
    """Generate a TPC-H database at the given scale into a fresh Database."""
    rng = random.Random(seed)
    sizes = TpchScale.of(scale)
    database = Database()
    _generate_region(database)
    _generate_nation(database)
    _generate_supplier(database, rng, sizes)
    _generate_customer(database, rng, sizes)
    _generate_part(database, rng, sizes)
    _generate_partsupp(database, rng, sizes)
    _generate_orders(database, rng, sizes)
    _generate_lineitem(database, rng, sizes)
    return database


def _comment(rng: random.Random) -> str:
    count = rng.randint(2, 5)
    return " ".join(rng.choice(words.COMMENT_WORDS) for _ in range(count))


def _generate_region(database: Database) -> None:
    rows = [
        (i, name, f"region {name.lower()}")
        for i, name in enumerate(words.REGIONS)
    ]
    database.store("region", ("r_regionkey", "r_name", "r_comment"), rows)


def _generate_nation(database: Database) -> None:
    rows = [
        (i, name, region, f"nation {name.lower()}")
        for i, (name, region) in enumerate(words.NATIONS)
    ]
    database.store(
        "nation", ("n_nationkey", "n_name", "n_regionkey", "n_comment"), rows
    )


def _generate_supplier(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    for key in range(1, sizes.supplier + 1):
        rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                f"addr-{rng.randint(1, 999)} lane",
                rng.randrange(sizes.nation),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng),
            )
        )
    database.store(
        "supplier",
        (
            "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
            "s_acctbal", "s_comment",
        ),
        rows,
    )


def _generate_customer(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    for key in range(1, sizes.customer + 1):
        rows.append(
            (
                key,
                f"Customer#{key:09d}",
                f"addr-{rng.randint(1, 999)} way",
                rng.randrange(sizes.nation),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(words.SEGMENTS),
                _comment(rng),
            )
        )
    database.store(
        "customer",
        (
            "c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
            "c_acctbal", "c_mktsegment", "c_comment",
        ),
        rows,
    )


def _generate_part(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    for key in range(1, sizes.part + 1):
        name = " ".join(rng.sample(words.P_NAME_WORDS, 5))
        part_type = " ".join(
            (
                rng.choice(words.P_TYPE_SYLLABLE_1),
                rng.choice(words.P_TYPE_SYLLABLE_2),
                rng.choice(words.P_TYPE_SYLLABLE_3),
            )
        )
        rows.append(
            (
                key,
                name,
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                part_type,
                rng.randint(1, 50),
                rng.choice(words.P_CONTAINERS),
                round(900 + (key / 10) % 200 + 100 * (key % 5), 2),
                _comment(rng),
            )
        )
    database.store(
        "part",
        (
            "p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
            "p_container", "p_retailprice", "p_comment",
        ),
        rows,
    )


def _generate_partsupp(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    for part_key in range(1, sizes.part + 1):
        supplier_count = min(sizes.partsupp_per_part, sizes.supplier)
        for supplier_key in rng.sample(range(1, sizes.supplier + 1), supplier_count):
            rows.append(
                (
                    part_key,
                    supplier_key,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                    _comment(rng),
                )
            )
    database.store(
        "partsupp",
        ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"),
        rows,
    )


def _generate_orders(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    for key in range(1, sizes.orders + 1):
        rows.append(
            (
                key,
                rng.randint(1, sizes.customer),
                rng.choice(("O", "F", "P")),
                round(rng.uniform(850.0, 500000.0), 2),
                rng.randint(DATE_MIN, DATE_MAX - 122),
                rng.choice(words.PRIORITIES),
                f"Clerk#{rng.randint(1, 1000):09d}",
                0,
                _comment(rng),
            )
        )
    database.store(
        "orders",
        (
            "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
            "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
            "o_comment",
        ),
        rows,
    )


def _generate_lineitem(database: Database, rng: random.Random, sizes: TpchScale) -> None:
    rows = []
    orders = database.relation("orders")
    date_position = orders.column_position("o_orderdate")
    key_position = orders.column_position("o_orderkey")
    # The composite FK lineitem -> partsupp requires (partkey, suppkey)
    # pairs that actually exist, so draw them from the partsupp table.
    partsupp = database.relation("partsupp")
    part_position = partsupp.column_position("ps_partkey")
    supp_position = partsupp.column_position("ps_suppkey")
    suppliers_of_part: dict[int, list[int]] = {}
    for ps_row in partsupp.rows:
        suppliers_of_part.setdefault(ps_row[part_position], []).append(
            ps_row[supp_position]
        )
    for order_row in orders.rows:
        order_key = order_row[key_position]
        order_date = order_row[date_position]
        for line_number in range(1, rng.randint(1, sizes.lineitem_max_per_order) + 1):
            quantity = float(rng.randint(1, 50))
            extended_price = round(quantity * rng.uniform(900.0, 2100.0), 2)
            ship_date = order_date + rng.randint(1, 121)
            part_key = rng.randint(1, sizes.part)
            supplier_key = rng.choice(suppliers_of_part[part_key])
            rows.append(
                (
                    order_key,
                    part_key,
                    supplier_key,
                    line_number,
                    quantity,
                    extended_price,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(("R", "A", "N")),
                    rng.choice(("O", "F")),
                    ship_date,
                    ship_date + rng.randint(-30, 30),
                    ship_date + rng.randint(1, 30),
                    rng.choice(words.SHIP_INSTRUCTIONS),
                    rng.choice(words.SHIP_MODES),
                    _comment(rng),
                )
            )
    database.store(
        "lineitem",
        (
            "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
            "l_quantity", "l_extendedprice", "l_discount", "l_tax",
            "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
            "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment",
        ),
        rows,
    )
