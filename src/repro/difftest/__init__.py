"""Differential correctness testing of view-matching rewrites.

The matcher's output is a claim of query equivalence (Sections 3.1-3.3
of the paper); this package checks the claim by *executing* every
rewrite against real data and bag-comparing the rows. Entry points:

* :func:`run_difftest` / :class:`DifftestConfig` -- the randomized
  harness (``python -m repro difftest``);
* :class:`Shrinker` -- minimizes a diverging (query, view, data) triple;
* :func:`write_divergence_artifacts` -- repro script + obs trace +
  corpus case for each caught divergence;
* :func:`load_corpus` / :func:`run_corpus_case` -- the committed
  regression corpus under ``tests/difftest/corpus/``;
* :func:`run_cdc_difftest` / :class:`CdcDifftestConfig` -- the CDC
  interleaving harness (``python -m repro difftest --cdc`` and
  ``python -m repro cdc-soak``): base-table mutations stream through the
  change log while views are served at a staleness bound, checking
  deferred maintenance against full recompute at every checkpoint.
"""

from .cdc import (
    CdcDifftestConfig,
    CdcDifftestReport,
    CdcDivergence,
    run_cdc_difftest,
)
from .compare import ResultDiff, compare_results, normalize_row, result_multiset
from .corpus import (
    CorpusCase,
    CorpusOutcome,
    load_corpus,
    load_corpus_case,
    run_corpus_case,
)
from .harness import Divergence, DifftestConfig, DifftestReport, run_difftest
from .report import (
    capture_trace,
    corpus_entry,
    repro_script,
    write_divergence_artifacts,
)
from .shrink import ShrunkCase, Shrinker

__all__ = [
    "CdcDifftestConfig",
    "CdcDifftestReport",
    "CdcDivergence",
    "CorpusCase",
    "CorpusOutcome",
    "DifftestConfig",
    "DifftestReport",
    "Divergence",
    "ResultDiff",
    "Shrinker",
    "ShrunkCase",
    "capture_trace",
    "compare_results",
    "corpus_entry",
    "load_corpus",
    "load_corpus_case",
    "normalize_row",
    "repro_script",
    "result_multiset",
    "run_cdc_difftest",
    "run_corpus_case",
    "run_difftest",
    "write_divergence_artifacts",
]
