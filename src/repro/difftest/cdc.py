"""Differential testing of the CDC path: deltas interleaved with rewrites.

The synchronous difftest (:mod:`repro.difftest.harness`) checks that a
rewrite returns the same rows as the original query. This module checks
the *deferred-maintenance* claim layered on top: with base-table writes
flowing through the :class:`~repro.cdc.CdcPipeline` and views patched
asynchronously in batches, every stored view must remain exactly what a
full recompute over the applier's base-table state (its shadow, at the
scan watermark) would produce, and a query rewritten to read views must
return the same rows as the original query evaluated at that watermark
-- a torn read is any divergence between the two.

The loop interleaves ``insert`` / ``delete`` / ``delete_where`` with
partial applier scans and per-view partial merges (so views lag by
*different* amounts, the realistic failure surface), plus register /
unregister churn of a scratch view mid-stream. At fixed checkpoints it:

1. asserts LSN monotonicity (every record's LSN is exactly its
   predecessor's plus one);
2. records the worst per-view lag seen (the ``cdc-soak`` gate);
3. catches every view up to the scan watermark and bag-compares its
   stored rows against recomputing its query over the shadow;
4. executes each probe query both ways -- original over the shadow,
   rewritten substitute over a composite database (shadow base tables +
   live stored views) -- and bag-compares.

After the final step the pipeline drains completely and the loop
additionally asserts that the shadow base tables are bag-equal to the
live base tables (writer and applier agree on history) and that every
view freshness watermark equals the log head.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..catalog.tpch import tpch_catalog
from ..cdc import CdcPipeline
from ..core.matcher import ViewMatcher
from ..datagen.tpch_gen import generate_tpch
from ..engine.database import Database, Relation
from ..engine.executor import QueryResult, execute
from .compare import compare_results

#: One probe view per entry: (name prefix, view SQL template, query SQL
#: template). Templates are parameterized by the per-run RNG so distinct
#: seeds exercise distinct predicates; every view is both incrementally
#: maintainable (count_big, non-nullable sums) and inside the matcher's
#: indexable class, so each probe query has a view-backed rewrite.
_PROBES = (
    (
        "cdc_orders_rollup",
        "select o_custkey as ck, sum(o_totalprice) as revenue, "
        "count_big(*) as cnt from orders where o_custkey <= {bound} "
        "group by o_custkey",
        "select o_custkey, sum(o_totalprice) from orders "
        "where o_custkey <= {probe} group by o_custkey",
    ),
    (
        "cdc_lineitem_rollup",
        "select l_orderkey as ok, sum(l_quantity) as qty, "
        "count_big(*) as cnt from lineitem group by l_orderkey",
        "select l_orderkey, sum(l_quantity) from lineitem "
        "group by l_orderkey",
    ),
    (
        "cdc_join_spj",
        "select o_orderkey as ok, o_custkey as ck, l_quantity as q "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "and l_quantity > {bound}",
        "select o_orderkey, l_quantity from orders, lineitem "
        "where o_orderkey = l_orderkey and l_quantity > {probe}",
    ),
    (
        "cdc_orders_spj",
        "select o_orderkey as ok, o_custkey as ck, o_totalprice as tp "
        "from orders where o_totalprice > {bound}",
        "select o_orderkey, o_totalprice from orders "
        "where o_totalprice > {probe}",
    ),
)


@dataclass(frozen=True)
class CdcDifftestConfig:
    """Knobs for one CDC difftest / soak run."""

    seed: int = 0
    steps: int = 200
    checkpoint_every: int = 25
    scale: float = 0.002
    data_seed: int = 11
    max_scan_batch: int = 4   # partial scans draw 1..max_scan_batch records
    float_digits: int = 9
    # Soak gate: worst per-view lag (in log records) observed at any
    # checkpoint must stay within this bound. None disables the gate
    # (plain difftest mode). With full catch-ups every
    # ``checkpoint_every`` steps and at most one log record per step,
    # lag can only reach the distance since the last checkpoint, so
    # 2 * checkpoint_every is a generous-but-meaningful ceiling.
    lag_bound_records: int | None = None


@dataclass
class CdcDivergence:
    """One broken invariant, with enough detail to reproduce."""

    step: int
    kind: str  # "lsn-order", "view-recompute", "rewrite", "base-parity", "lag"
    view: str
    detail: str

    def summary(self) -> str:
        return f"step {self.step} [{self.kind}] {self.view}: {self.detail}"


@dataclass
class CdcDifftestReport:
    """Everything one CDC difftest run measured."""

    config: CdcDifftestConfig
    steps_run: int = 0
    records_logged: int = 0
    rows_written: int = 0
    checkpoints: int = 0
    view_checks: int = 0
    rewrites_checked: int = 0
    max_lag_records: int = 0
    final_head_lsn: int = 0
    divergences: list[CdcDivergence] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held at every checkpoint."""
        return not self.divergences

    def summary(self) -> str:
        lines = [
            f"cdc difftest: {self.steps_run} steps, "
            f"{self.records_logged} log records "
            f"({self.rows_written} rows), head lsn {self.final_head_lsn}",
            f"checkpoints: {self.checkpoints} "
            f"({self.view_checks} view recomputes, "
            f"{self.rewrites_checked} rewrites executed, "
            f"max lag {self.max_lag_records} records)",
            f"divergences: {len(self.divergences)}",
            f"elapsed: {self.elapsed_seconds:.1f}s",
        ]
        for divergence in self.divergences[:8]:
            lines.append("  " + divergence.summary())
        return "\n".join(lines)


class _CompositeDatabase:
    """Shadow base tables overlaid with live stored-view relations.

    What a bounded-staleness reader actually sees: view contents from
    the live database (as fresh as the applier has made them) joined
    with base state at the applier's watermark. Executing a rewritten
    query here against the original on the shadow is the torn-read
    check.
    """

    def __init__(self, shadow: Database, live: Database, view_names):
        self._shadow = shadow
        self._live = live
        self._views = frozenset(view_names)

    def relation(self, name: str) -> Relation:
        if name in self._views:
            return self._live.relation(name)
        return self._shadow.relation(name)

    def has(self, name: str) -> bool:
        return name in self._views or self._shadow.has(name)


def _stored_result(database: Database, name: str) -> QueryResult:
    relation = database.relation(name)
    return QueryResult(
        columns=tuple(relation.columns), rows=list(relation.rows)
    )


def run_cdc_difftest(
    config: CdcDifftestConfig, catalog: Catalog | None = None
) -> CdcDifftestReport:
    """Run the interleaved CDC difftest loop; see the module docstring."""
    started = time.perf_counter()
    rng = random.Random(config.seed)
    catalog = catalog or tpch_catalog()
    live = generate_tpch(scale=config.scale, seed=config.data_seed)
    pipeline = CdcPipeline(catalog, live)
    report = CdcDifftestReport(config=config)

    # Parameterize and register the probe views (pipeline for
    # maintenance, matcher for rewrites) plus their probe queries.
    custkeys = sorted({row[1] for row in live.relation("orders").rows})
    prices = sorted(row[3] for row in live.relation("orders").rows)
    quantities = sorted(row[4] for row in live.relation("lineitem").rows)
    bounds = {
        "cdc_orders_rollup": custkeys[
            rng.randrange(len(custkeys) // 2, len(custkeys))
        ],
        "cdc_lineitem_rollup": None,
        "cdc_join_spj": quantities[rng.randrange(len(quantities) // 2)],
        "cdc_orders_spj": prices[rng.randrange(len(prices) // 2)],
    }
    matcher = ViewMatcher(catalog)
    probes: list[tuple[str, str]] = []  # (view name, probe SQL)
    for name, view_template, query_template in _PROBES:
        bound = bounds[name]
        view_sql = view_template.format(bound=bound)
        statement = catalog.bind_sql(view_sql)
        pipeline.register_view(name, statement)
        matcher.register_view(name, statement)
        if name == "cdc_orders_rollup":
            eligible = [k for k in custkeys if k <= bound]
            probe = query_template.format(
                probe=eligible[rng.randrange(len(eligible))]
            )
        elif name == "cdc_join_spj":
            tighter = [q for q in quantities if q > bound]
            probe = query_template.format(
                probe=tighter[rng.randrange(len(tighter))] if tighter else bound
            )
        elif name == "cdc_orders_spj":
            tighter = [p for p in prices if p > bounds[name]]
            probe = query_template.format(
                probe=tighter[rng.randrange(len(tighter))] if tighter else bound
            )
        else:
            probe = query_template
        probes.append((name, probe))

    churn_statement = catalog.bind_sql(
        "select o_clerk as clerk, sum(o_totalprice) as total, "
        "count_big(*) as cnt from orders group by o_clerk"
    )
    churn_registered = False

    def synth_insert(table: str) -> list[tuple[object, ...]]:
        rows = live.relation(table).rows
        count = rng.randint(1, 3)
        return [tuple(rows[rng.randrange(len(rows))]) for _ in range(count)]

    def checkpoint(step: int) -> None:
        report.checkpoints += 1
        # (1) LSN monotonicity over the retained window.
        expected = pipeline.log.base_lsn + 1
        for record in pipeline.log.records_after(pipeline.log.base_lsn):
            if record.lsn != expected:
                report.divergences.append(
                    CdcDivergence(
                        step,
                        "lsn-order",
                        "<log>",
                        f"lsn {record.lsn} where {expected} expected",
                    )
                )
            expected = record.lsn + 1
        # (2) worst per-view lag before the forced catch-up.
        for freshness in pipeline.freshness.all_freshness():
            report.max_lag_records = max(
                report.max_lag_records, freshness.lag_records
            )
        # (3) catch every view up to the scan watermark, then compare
        # stored contents against a recompute over the shadow.
        pipeline.scan(limit=None)
        pipeline.merge()
        shadow = pipeline.applier.shadow_database
        maintained = {v.name: v for v in pipeline.applier.views()}
        for name, view in maintained.items():
            report.view_checks += 1
            recomputed = execute(view.statement, shadow)
            diff = compare_results(
                recomputed,
                _stored_result(live, name),
                float_digits=config.float_digits,
            )
            if not diff.equal:
                report.divergences.append(
                    CdcDivergence(
                        step, "view-recompute", name, diff.summary()
                    )
                )
        # (4) rewrites: original on the shadow vs. substitute on the
        # composite (shadow bases + live stored views).
        composite = _CompositeDatabase(shadow, live, maintained)
        for name, probe_sql in probes:
            statement = catalog.bind_sql(probe_sql)
            matches = [
                result
                for result in matcher.substitutes(statement)
                if result.view.name == name
            ]
            if not matches:
                continue
            report.rewrites_checked += 1
            original = execute(statement, shadow)
            rewritten = execute(
                matches[0].substitute, composite  # type: ignore[arg-type]
            )
            diff = compare_results(
                original, rewritten, float_digits=config.float_digits
            )
            if not diff.equal:
                report.divergences.append(
                    CdcDivergence(step, "rewrite", name, diff.summary())
                )

    for step in range(1, config.steps + 1):
        report.steps_run = step
        roll = rng.random()
        if roll < 0.40:
            table = rng.choice(("orders", "lineitem"))
            rows = synth_insert(table)
            record = pipeline.insert(table, rows)
            if record is not None:
                report.records_logged += 1
                report.rows_written += len(record.rows)
        elif roll < 0.58:
            table = rng.choice(("orders", "lineitem"))
            stored = live.relation(table).rows
            victim = tuple(stored[rng.randrange(len(stored))])
            record = pipeline.delete(table, [victim])
            if record is not None:
                report.records_logged += 1
                report.rows_written += len(record.rows)
        elif roll < 0.68:
            stored = live.relation("orders").rows
            key = stored[rng.randrange(len(stored))][0]
            before = pipeline.head_lsn
            removed = pipeline.delete_where(
                "orders", lambda row: row[0] == key
            )
            if pipeline.head_lsn > before:
                report.records_logged += 1
                report.rows_written += removed
        elif roll < 0.83:
            pipeline.scan(rng.randint(1, config.max_scan_batch))
        elif roll < 0.93:
            names = [v.name for v in pipeline.applier.views()]
            if names:
                pipeline.merge(rng.choice(names), max_deltas=rng.randint(1, 3))
        else:
            if churn_registered:
                pipeline.unregister_view("cdc_churn")
            else:
                pipeline.register_view("cdc_churn", churn_statement)
            churn_registered = not churn_registered
        if step % config.checkpoint_every == 0:
            checkpoint(step)

    # Final: drain everything and check writer/applier parity.
    pipeline.drain()
    checkpoint(config.steps)
    shadow = pipeline.applier.shadow_database
    for table in sorted(shadow.names()):
        live_rel = _stored_result(live, table)
        shadow_rel = _stored_result(shadow, table)
        diff = compare_results(
            shadow_rel, live_rel, float_digits=config.float_digits
        )
        if not diff.equal:
            report.divergences.append(
                CdcDivergence(
                    config.steps, "base-parity", table, diff.summary()
                )
            )
    for freshness in pipeline.freshness.all_freshness():
        if not freshness.is_fresh:
            report.divergences.append(
                CdcDivergence(
                    config.steps,
                    "lag",
                    freshness.view,
                    f"still lagging {freshness.lag_records} records "
                    "after a full drain",
                )
            )
    if (
        config.lag_bound_records is not None
        and report.max_lag_records > config.lag_bound_records
    ):
        report.divergences.append(
            CdcDivergence(
                config.steps,
                "lag",
                "<applier>",
                f"worst checkpoint lag {report.max_lag_records} exceeds "
                f"bound {config.lag_bound_records}",
            )
        )
    report.final_head_lsn = pipeline.head_lsn
    report.elapsed_seconds = time.perf_counter() - started
    return report


__all__ = [
    "CdcDifftestConfig",
    "CdcDifftestReport",
    "CdcDivergence",
    "run_cdc_difftest",
]
