"""NULL-aware bag comparison of executor results.

The harness compares the original query's rows against the substitute's
as multisets: SQL results are bags, row order is meaningless, and NULL
(Python ``None``) is an ordinary value that must compare equal to
itself. Floats are normalized to a fixed number of significant digits
first, because a rollup over a pre-aggregated view legitimately
accumulates floating-point sums in a different order than the direct
plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.executor import QueryResult

#: Rendered in diff samples so a NULL is visibly distinct from "None"
#: string data.
NULL_MARKER = "NULL"


def normalize_row(
    row: tuple[object, ...], float_digits: int | None = None
) -> tuple[object, ...]:
    """One row with floats rounded to ``float_digits`` significant digits."""
    if float_digits is None:
        return row
    return tuple(
        float(f"{value:.{float_digits}g}") if isinstance(value, float) else value
        for value in row
    )


def result_multiset(
    result: QueryResult, float_digits: int | None = None
) -> dict[tuple[object, ...], int]:
    """Normalized rows with multiplicities."""
    counts: dict[tuple[object, ...], int] = {}
    for row in result.rows:
        key = normalize_row(row, float_digits)
        counts[key] = counts.get(key, 0) + 1
    return counts


def render_row(row: tuple[object, ...]) -> str:
    """A row rendered for diff output, NULLs made explicit."""
    return (
        "("
        + ", ".join(
            NULL_MARKER if value is None else repr(value) for value in row
        )
        + ")"
    )


@dataclass
class ResultDiff:
    """The outcome of comparing original vs. substitute execution."""

    equal: bool
    original_rows: int
    rewritten_rows: int
    only_original: list[tuple[object, ...]] = field(default_factory=list)
    only_rewritten: list[tuple[object, ...]] = field(default_factory=list)

    def summary(self, limit: int = 4) -> str:
        if self.equal:
            return "results are bag-equal"
        lines = [
            f"original {self.original_rows} rows, "
            f"substitute {self.rewritten_rows} rows"
        ]
        for label, rows in (
            ("only in original", self.only_original),
            ("only in substitute", self.only_rewritten),
        ):
            for row in rows[:limit]:
                lines.append(f"  {label}: {render_row(row)}")
            if len(rows) > limit:
                lines.append(f"  {label}: ... {len(rows) - limit} more")
        return "\n".join(lines)


def compare_results(
    original: QueryResult,
    rewritten: QueryResult,
    float_digits: int | None = 9,
) -> ResultDiff:
    """Bag-compare two results, collecting the rows on each side only."""
    left = result_multiset(original, float_digits)
    right = result_multiset(rewritten, float_digits)
    if len(original.columns) == len(rewritten.columns) and left == right:
        return ResultDiff(
            equal=True,
            original_rows=original.row_count,
            rewritten_rows=rewritten.row_count,
        )
    only_original = []
    only_rewritten = []
    for row, count in left.items():
        missing = count - right.get(row, 0)
        only_original.extend([row] * max(missing, 0))
    for row, count in right.items():
        missing = count - left.get(row, 0)
        only_rewritten.extend([row] * max(missing, 0))
    return ResultDiff(
        equal=False,
        original_rows=original.row_count,
        rewritten_rows=rewritten.row_count,
        only_original=only_original,
        only_rewritten=only_rewritten,
    )
