"""The committed regression corpus: load and re-run shrunk cases.

Every divergence the harness has ever caught (and every hand-written
boundary case) lives as one JSON document under
``tests/difftest/corpus/``. A corpus case is self-contained -- SQL text
for the query and views, inline base-table rows -- and carries an
``expect_rewrite`` flag:

* ``true``  -- the matcher must produce at least one substitute, and
  every substitute must execute bag-equal to the original (pins
  soundness *and* completeness of a fixed bug);
* ``false`` -- the matcher must produce *no* substitute (pins a
  rejection, e.g. an open view bound at a closed query endpoint); if a
  regression makes it match anyway, the data still exposes whether the
  rewrite would also be wrong.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..catalog.catalog import Catalog
from ..catalog.tpch import tpch_catalog
from ..core.matcher import ViewMatcher
from ..engine.database import Database
from ..engine.executor import execute, materialize_view
from ..errors import ReproError
from ..sql.printer import statement_to_sql
from .compare import compare_results


@dataclass
class CorpusCase:
    """One self-contained regression case."""

    name: str
    description: str
    query: str
    views: dict[str, str]
    tables: dict[str, dict]
    expect_rewrite: bool = True
    float_digits: int = 9
    path: Path | None = None


@dataclass
class CorpusOutcome:
    """The result of re-running one corpus case."""

    case: CorpusCase
    substitutes: int = 0
    divergences: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.divergences:
            return False
        if self.case.expect_rewrite:
            return self.substitutes > 0
        return self.substitutes == 0

    def describe(self) -> str:
        if self.ok:
            kind = (
                f"{self.substitutes} substitute(s) verified"
                if self.case.expect_rewrite
                else "rejection confirmed"
            )
            return f"{self.case.name}: ok ({kind})"
        lines = [f"{self.case.name}: FAILED"]
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        if self.case.expect_rewrite and self.substitutes == 0:
            lines.append("  expected a rewrite but the matcher produced none")
        if not self.case.expect_rewrite and self.substitutes > 0:
            lines.append(
                f"  expected no rewrite but got {self.substitutes} substitute(s)"
            )
        lines.extend(f"  {line}" for line in self.divergences)
        return "\n".join(lines)


def load_corpus_case(path: str | Path) -> CorpusCase:
    """Parse one corpus JSON document."""
    path = Path(path)
    payload = json.loads(path.read_text())
    return CorpusCase(
        name=payload.get("name", path.stem),
        description=payload.get("description", ""),
        query=payload["query"],
        views=dict(payload["views"]),
        tables=dict(payload.get("tables", {})),
        expect_rewrite=bool(payload.get("expect_rewrite", True)),
        float_digits=int(payload.get("float_digits", 9)),
        path=path,
    )


def load_corpus(directory: str | Path) -> list[CorpusCase]:
    """All corpus cases in ``directory``, sorted by file name."""
    directory = Path(directory)
    return [
        load_corpus_case(path) for path in sorted(directory.glob("*.json"))
    ]


def run_corpus_case(
    case: CorpusCase, catalog: Catalog | None = None
) -> CorpusOutcome:
    """Re-run one corpus case end to end."""
    catalog = catalog or tpch_catalog()
    outcome = CorpusOutcome(case=case)
    database = Database()
    for name, spec in case.tables.items():
        database.store(
            name,
            tuple(spec["columns"]),
            [tuple(row) for row in spec["rows"]],
        )
    matcher = ViewMatcher(catalog)
    try:
        for name, sql in case.views.items():
            statement = catalog.bind_sql(sql)
            matcher.register_view(name, statement)
            materialize_view(name, statement, database)
        query = catalog.bind_sql(case.query)
        matches = matcher.substitutes(query)
    except (ReproError, ValueError) as exc:
        outcome.error = str(exc)
        return outcome
    outcome.substitutes = len(matches)
    if not matches:
        return outcome
    try:
        original = execute(query, database)
    except (ReproError, ValueError) as exc:
        outcome.error = f"original execution failed: {exc}"
        return outcome
    for match in matches:
        rendered = statement_to_sql(match.substitute)
        try:
            rewritten = execute(match.substitute, database)
        except (ReproError, ValueError) as exc:
            outcome.divergences.append(
                f"substitute failed to execute: {rendered}: {exc}"
            )
            continue
        diff = compare_results(original, rewritten, case.float_digits)
        if not diff.equal:
            outcome.divergences.append(
                f"diverges: {rendered}\n  " + diff.summary().replace("\n", "\n  ")
            )
    return outcome
