"""The randomized differential-correctness harness.

Every rewrite the matcher produces is a claim that two SQL statements
are equivalent; this module tests the claim the only way that settles
it -- by executing both against real data. Per case it:

1. generates a seeded random query plus correlated covering views
   (:class:`~repro.workload.covering.CoveringCaseGenerator`);
2. registers the views with a fresh :class:`ViewMatcher` and matches;
3. materializes every view the matcher used, executes the original and
   each substitute through the bag-semantics executor, and compares the
   results as NULL-aware multisets;
4. on divergence, shrinks the case to a minimal (query, view, data)
   triple (:mod:`repro.difftest.shrink`).

The base data is one small :func:`repro.datagen.generate_tpch` load
(~4k rows at the default scale); statistics are collected from the
actual rows so generated range predicates land inside real domains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..catalog.tpch import tpch_catalog
from ..core.matcher import ViewMatcher
from ..datagen.tpch_gen import generate_tpch
from ..engine.database import Database
from ..engine.executor import execute, materialize_view
from ..errors import ReproError
from ..sql.printer import statement_to_sql
from ..sql.statements import SelectStatement
from ..stats.statistics import DatabaseStats
from ..workload.covering import CoveringCaseGenerator, CoveringParameters
from .compare import ResultDiff, compare_results
from .shrink import ShrunkCase, Shrinker, TableData


@dataclass(frozen=True)
class DifftestConfig:
    """Knobs of one harness run (all deterministic given the seeds)."""

    seed: int = 0
    cases: int = 200
    views_per_case: int = 3
    scale: float = 0.0005
    data_seed: int = 11
    float_digits: int = 9
    shrink_budget: int = 400
    max_divergences: int = 5
    parameters: CoveringParameters | None = None
    # > 1 exercises the sharded parallel matching path: every case's
    # matcher is built with that many shards and matching fans out across
    # forked workers, so the rewrites being executed are exactly the ones
    # the parallel path produced. Falls back to sequential matching on
    # platforms without fork (results are identical either way -- that is
    # the property under test).
    parallel_workers: int = 1

    def case_seed(self, index: int) -> int:
        """The per-case RNG seed (stable under changes to ``cases``)."""
        return self.seed * 1_000_003 + index


@dataclass
class Divergence:
    """One rewrite whose execution contradicted the original query."""

    case_seed: int
    view_name: str
    query: SelectStatement
    view: SelectStatement
    substitute: SelectStatement
    diff: ResultDiff | None
    error: str | None = None
    shrunk: ShrunkCase | None = None

    def describe(self) -> str:
        lines = [
            f"case seed {self.case_seed}, view {self.view_name}:",
            f"  query:      {statement_to_sql(self.query)}",
            f"  view:       {statement_to_sql(self.view)}",
            f"  substitute: {statement_to_sql(self.substitute)}",
        ]
        if self.error is not None:
            lines.append(f"  substitute execution failed: {self.error}")
        elif self.diff is not None:
            lines.append("  " + self.diff.summary().replace("\n", "\n  "))
        if self.shrunk is not None and self.shrunk.substitute is not None:
            shrunk = self.shrunk
            lines.append(
                f"  shrunk to {shrunk.total_rows} rows over "
                f"{len(shrunk.tables)} tables "
                f"({shrunk.evaluations} oracle calls):"
            )
            lines.append(f"    query: {statement_to_sql(shrunk.query)}")
            lines.append(f"    view:  {statement_to_sql(shrunk.view)}")
        return "\n".join(lines)


@dataclass
class DifftestReport:
    """Aggregated outcome of a harness run."""

    config: DifftestConfig
    cases_run: int = 0
    cases_with_matches: int = 0
    views_registered: int = 0
    rewrites_executed: int = 0
    reject_tallies: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    match_errors: int = 0
    execution_errors: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.match_errors

    def summary(self) -> str:
        lines = [
            f"difftest: {self.cases_run} cases (seed {self.config.seed}), "
            f"{self.cases_with_matches} produced rewrites, "
            f"{self.rewrites_executed} substitutes executed, "
            f"{len(self.divergences)} divergences "
            f"[{self.elapsed_seconds:.1f}s]",
        ]
        if self.reject_tallies:
            tallies = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(
                    self.reject_tallies.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  rejects: {tallies}")
        if self.match_errors or self.execution_errors:
            lines.append(
                f"  errors: {self.match_errors} match, "
                f"{self.execution_errors} execution"
            )
        for divergence in self.divergences:
            lines.append(divergence.describe())
        return "\n".join(lines)


def _table_data(database: Database, tables: set[str]) -> TableData:
    """Copy the referenced base tables out of the shared database."""
    data: TableData = {}
    for name in sorted(tables):
        relation = database.relation(name)
        data[name] = (relation.columns, list(relation.rows))
    return data


def run_difftest(
    config: DifftestConfig,
    catalog: Catalog | None = None,
    progress=None,
) -> DifftestReport:
    """Run the harness; deterministic for a given config and catalog."""
    started = time.perf_counter()
    catalog = catalog or tpch_catalog()
    database = generate_tpch(scale=config.scale, seed=config.data_seed)
    stats = DatabaseStats.collect(database, catalog)
    generator = CoveringCaseGenerator(catalog, stats, config.parameters)
    report = DifftestReport(config=config)
    for index in range(config.cases):
        if len(report.divergences) >= config.max_divergences:
            break
        case_seed = config.case_seed(index)
        case = generator.case(case_seed, views=config.views_per_case)
        if config.parallel_workers > 1:
            matcher = ViewMatcher(
                catalog, shard_count=config.parallel_workers
            )
        else:
            matcher = ViewMatcher(catalog)
        views: dict[str, SelectStatement] = {}
        for name, view in case.views.items():
            try:
                matcher.register_view(name, view)
                views[name] = view
            except (ReproError, ValueError):
                continue
        report.cases_run += 1
        report.views_registered += len(views)
        if not views:
            continue
        try:
            if config.parallel_workers > 1:
                results = matcher.match(
                    case.query, workers=config.parallel_workers
                )
            else:
                results = matcher.match(case.query)
        except (ReproError, ValueError):
            report.match_errors += 1
            continue
        for result in results:
            if result.reject_reason is not None:
                reason = result.reject_reason.name
                report.reject_tallies[reason] = (
                    report.reject_tallies.get(reason, 0) + 1
                )
        matches = [m for m in results if m.matched]
        if not matches:
            continue
        report.cases_with_matches += 1
        needed = {m.view.name for m in matches}
        try:
            for name in needed:
                materialize_view(name, views[name], database)
            try:
                original = execute(case.query, database)
            except (ReproError, ValueError):
                report.execution_errors += 1
                continue
            for match in matches:
                report.rewrites_executed += 1
                error: str | None = None
                diff: ResultDiff | None = None
                try:
                    rewritten = execute(match.substitute, database)
                except (ReproError, ValueError) as exc:
                    error = str(exc)
                else:
                    diff = compare_results(
                        original, rewritten, config.float_digits
                    )
                    if diff.equal:
                        continue
                divergence = Divergence(
                    case_seed=case_seed,
                    view_name=match.view.name,
                    query=case.query,
                    view=views[match.view.name],
                    substitute=match.substitute,
                    diff=diff,
                    error=error,
                )
                if config.shrink_budget > 0:
                    tables = _table_data(
                        database,
                        set(case.query.table_names())
                        | set(views[match.view.name].table_names()),
                    )
                    shrinker = Shrinker(
                        catalog,
                        float_digits=config.float_digits,
                        budget=config.shrink_budget,
                    )
                    divergence.shrunk = shrinker.shrink(
                        case.query,
                        match.view.name,
                        views[match.view.name],
                        tables,
                    )
                report.divergences.append(divergence)
                if len(report.divergences) >= config.max_divergences:
                    break
        finally:
            for name in needed:
                database.drop(name)
        if progress is not None:
            progress(report)
    report.elapsed_seconds = time.perf_counter() - started
    return report
