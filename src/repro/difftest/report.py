"""Divergence artifacts: self-contained repro scripts, traces, corpus.

Each caught divergence is written out three ways:

* ``repro_<seed>.py`` -- a standalone script (only ``repro`` on the
  path) that loads the shrunk rows, registers the view, re-runs the
  match and both executions, and exits non-zero while the divergence
  reproduces;
* ``trace_<seed>.json`` -- the :mod:`repro.obs` rewrite trace of the
  bad match, for the match-funnel view of *why* the view was accepted;
* ``case_<seed>.json`` -- the corpus format of
  :mod:`repro.difftest.corpus`, ready to commit under
  ``tests/difftest/corpus/`` as a permanent regression case.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..catalog.catalog import Catalog
from ..core.matcher import ViewMatcher
from ..errors import ReproError
from ..obs import RewriteTracer, tracing
from ..sql.printer import statement_to_sql
from .harness import Divergence
from .shrink import ShrunkCase, TableData

_SCRIPT_TEMPLATE = '''\
"""Auto-generated differential-test repro (case seed {seed}).

Run with the repro package importable, e.g. from the repository root:

    PYTHONPATH=src python {script_name}

Exits 0 once the rewrite and the original query agree again.
"""

import json
import sys

from repro import ViewMatcher, execute, materialize_view, statement_to_sql, tpch_catalog
from repro.difftest.compare import compare_results
from repro.engine import Database

QUERY = {query!r}

VIEWS = json.loads("""{views_json}""")

TABLES = json.loads("""{tables_json}""")

FLOAT_DIGITS = {float_digits}


def main() -> int:
    catalog = tpch_catalog()
    database = Database()
    for name, spec in TABLES.items():
        database.store(
            name, tuple(spec["columns"]), [tuple(row) for row in spec["rows"]]
        )
    matcher = ViewMatcher(catalog)
    for name, sql in VIEWS.items():
        statement = catalog.bind_sql(sql)
        matcher.register_view(name, statement)
        materialize_view(name, statement, database)
    query = catalog.bind_sql(QUERY)
    substitutes = matcher.substitutes(query)
    if not substitutes:
        print("no substitute produced; the matcher no longer rewrites this case")
        return 0
    original = execute(query, database)
    failures = 0
    for match in substitutes:
        print("substitute:", statement_to_sql(match.substitute))
        try:
            rewritten = execute(match.substitute, database)
        except Exception as exc:  # noqa: BLE001 - repro script reports anything
            print("  substitute execution failed:", exc)
            failures += 1
            continue
        diff = compare_results(original, rewritten, float_digits=FLOAT_DIGITS)
        print(" ", diff.summary().replace("\\n", "\\n  "))
        if not diff.equal:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
'''


def _tables_payload(tables: TableData) -> dict:
    return {
        name: {"columns": list(columns), "rows": [list(row) for row in rows]}
        for name, (columns, rows) in tables.items()
    }


def repro_script(shrunk: ShrunkCase, script_name: str, seed: int, float_digits: int) -> str:
    """Render the standalone repro script for one shrunk case."""
    views_json = json.dumps(
        {shrunk.view_name: statement_to_sql(shrunk.view)}, indent=2
    )
    tables_json = json.dumps(_tables_payload(shrunk.tables), indent=2)
    return _SCRIPT_TEMPLATE.format(
        seed=seed,
        script_name=script_name,
        query=statement_to_sql(shrunk.query),
        views_json=views_json,
        tables_json=tables_json,
        float_digits=float_digits,
    )


def corpus_entry(
    shrunk: ShrunkCase,
    name: str,
    description: str,
    float_digits: int,
    expect_rewrite: bool = True,
) -> dict:
    """The corpus-format JSON document for one shrunk case."""
    return {
        "name": name,
        "description": description,
        "query": statement_to_sql(shrunk.query),
        "views": {shrunk.view_name: statement_to_sql(shrunk.view)},
        "tables": _tables_payload(shrunk.tables),
        "expect_rewrite": expect_rewrite,
        "float_digits": float_digits,
    }


def capture_trace(
    catalog: Catalog, divergence: Divergence
) -> dict:
    """Re-run the bad match under a tracer; returns the trace export."""
    tracer = RewriteTracer(sql=statement_to_sql(divergence.query))
    error: str | None = None
    with tracing(tracer):
        try:
            matcher = ViewMatcher(catalog)
            matcher.register_view(divergence.view_name, divergence.view)
            with tracer.span("match"):
                matcher.match(divergence.query)
        except (ReproError, ValueError) as exc:
            error = str(exc)
    return tracer.finish(error=error).to_dict()


def write_divergence_artifacts(
    divergence: Divergence,
    directory: str | Path,
    catalog: Catalog,
    float_digits: int = 9,
) -> list[Path]:
    """Write repro script, trace, and corpus case; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    seed = divergence.case_seed
    written: list[Path] = []
    shrunk = divergence.shrunk
    if shrunk is not None and shrunk.substitute is not None:
        script_path = directory / f"repro_{seed}.py"
        script_path.write_text(
            repro_script(
                shrunk, script_path.name, seed, float_digits=float_digits
            )
        )
        written.append(script_path)
        case_path = directory / f"case_{seed}.json"
        case_path.write_text(
            json.dumps(
                corpus_entry(
                    shrunk,
                    name=f"divergence_{seed}",
                    description=(
                        "Shrunk from a difftest divergence (case seed "
                        f"{seed}, view {divergence.view_name})."
                    ),
                    float_digits=float_digits,
                ),
                indent=2,
            )
            + "\n"
        )
        written.append(case_path)
    trace_path = directory / f"trace_{seed}.json"
    trace_path.write_text(json.dumps(capture_trace(catalog, divergence), indent=2))
    written.append(trace_path)
    return written
