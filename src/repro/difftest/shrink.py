"""Shrinking a diverging case to a minimal (query, view, data) triple.

A raw divergence from the harness involves a multi-table query, a
machine-generated view, and a few thousand base rows -- far too much to
debug. The shrinker greedily minimizes all three while preserving the
divergence, re-running the full match-materialize-execute oracle after
every candidate reduction:

1. drop query WHERE conjuncts, then query output columns;
2. drop view WHERE conjuncts (view outputs stay: removing one usually
   just breaks the match, which the oracle rejects anyway);
3. delta-debug each base table's rows (ddmin) down to the handful that
   still exhibit the divergence;
4. one final conjunct pass, since smaller data often unlocks predicate
   removals that were load-bearing before.

Every oracle call counts against a caller-supplied budget, so shrinking
always terminates in bounded time even on pathological cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..core.matcher import ViewMatcher
from ..engine.database import Database
from ..engine.executor import execute, materialize_view
from ..errors import ReproError
from ..sql.expressions import conjunction, conjuncts_of
from ..sql.statements import SelectItem, SelectStatement
from .compare import ResultDiff, compare_results

#: name -> (columns, rows) of the base tables a shrunk case needs.
TableData = dict[str, tuple[tuple[str, ...], list[tuple[object, ...]]]]


@dataclass
class ShrunkCase:
    """The minimized triple plus the final divergence evidence."""

    query: SelectStatement
    view_name: str
    view: SelectStatement
    substitute: SelectStatement | None
    tables: TableData
    diff: ResultDiff | None
    error: str | None = None
    evaluations: int = 0
    budget_exhausted: bool = False

    @property
    def total_rows(self) -> int:
        return sum(len(rows) for _, rows in self.tables.values())


class _BudgetExhausted(Exception):
    pass


@dataclass
class Shrinker:
    """Budget-bounded greedy shrinker around the differential oracle."""

    catalog: Catalog
    float_digits: int = 9
    budget: int = 400
    evaluations: int = field(default=0, init=False)

    # -- oracle --------------------------------------------------------------

    def _oracle(
        self,
        query: SelectStatement,
        view_name: str,
        view: SelectStatement,
        tables: TableData,
    ) -> tuple[bool, SelectStatement | None, ResultDiff | None, str | None]:
        """(diverges, substitute, diff, error) for one candidate triple."""
        if self.evaluations >= self.budget:
            raise _BudgetExhausted()
        self.evaluations += 1
        matcher = ViewMatcher(self.catalog)
        try:
            matcher.register_view(view_name, view)
            matches = [m for m in matcher.match(query) if m.matched]
        except (ReproError, ValueError):
            return False, None, None, None
        if not matches:
            return False, None, None, None
        database = Database()
        for name, (columns, rows) in tables.items():
            database.store(name, columns, list(rows))
        try:
            materialize_view(view_name, view, database)
            original = execute(query, database)
        except (ReproError, ValueError):
            # The reduction broke the case itself, not the rewrite.
            return False, None, None, None
        for match in matches:
            try:
                rewritten = execute(match.substitute, database)
            except (ReproError, ValueError) as exc:
                # A substitute the engine cannot even execute is the
                # strongest possible divergence; preserve it.
                return True, match.substitute, None, str(exc)
            diff = compare_results(original, rewritten, self.float_digits)
            if not diff.equal:
                return True, match.substitute, diff, None
        return False, None, None, None

    # -- reductions ----------------------------------------------------------

    def _shrink_conjuncts(
        self,
        query: SelectStatement,
        view_name: str,
        view: SelectStatement,
        tables: TableData,
        target: str,
    ) -> tuple[SelectStatement, SelectStatement]:
        """Greedily drop WHERE conjuncts of the query or the view."""
        changed = True
        while changed:
            changed = False
            statement = query if target == "query" else view
            conjuncts = list(conjuncts_of(statement.where))
            for index in range(len(conjuncts)):
                trial_conjuncts = conjuncts[:index] + conjuncts[index + 1:]
                trial = SelectStatement(
                    select_items=statement.select_items,
                    from_tables=statement.from_tables,
                    where=conjunction(trial_conjuncts),
                    group_by=statement.group_by,
                )
                trial_query = trial if target == "query" else query
                trial_view = view if target == "query" else trial
                diverges, _, _, _ = self._oracle(
                    trial_query, view_name, trial_view, tables
                )
                if diverges:
                    query, view = trial_query, trial_view
                    changed = True
                    break
        return query, view

    def _shrink_outputs(
        self,
        query: SelectStatement,
        view_name: str,
        view: SelectStatement,
        tables: TableData,
    ) -> SelectStatement:
        """Greedily drop query output columns (keeping at least one)."""
        changed = True
        while changed and len(query.select_items) > 1:
            changed = False
            for index in range(len(query.select_items)):
                items = (
                    query.select_items[:index] + query.select_items[index + 1:]
                )
                trial = SelectStatement(
                    select_items=items,
                    from_tables=query.from_tables,
                    where=query.where,
                    group_by=query.group_by,
                )
                diverges, _, _, _ = self._oracle(trial, view_name, view, tables)
                if diverges:
                    query = trial
                    changed = True
                    break
        return query

    def _shrink_rows(
        self,
        query: SelectStatement,
        view_name: str,
        view: SelectStatement,
        tables: TableData,
    ) -> TableData:
        """ddmin each table's row list while the divergence persists."""
        for name in sorted(
            tables, key=lambda n: len(tables[n][1]), reverse=True
        ):
            columns, rows = tables[name]

            def still_diverges(candidate: list[tuple[object, ...]]) -> bool:
                trial = dict(tables)
                trial[name] = (columns, candidate)
                diverges, _, _, _ = self._oracle(query, view_name, view, trial)
                return diverges

            rows = self._ddmin(rows, still_diverges)
            tables = dict(tables)
            tables[name] = (columns, rows)
        return tables

    def _ddmin(self, rows, test):
        """Standard delta-debugging minimization of one row list."""
        granularity = 2
        while len(rows) >= 2:
            chunk = max(1, len(rows) // granularity)
            reduced = False
            start = 0
            while start < len(rows):
                candidate = rows[:start] + rows[start + chunk:]
                if candidate and test(candidate):
                    rows = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                else:
                    start += chunk
            if not reduced:
                if granularity >= len(rows):
                    break
                granularity = min(len(rows), granularity * 2)
        return rows

    # -- entry point ---------------------------------------------------------

    def shrink(
        self,
        query: SelectStatement,
        view_name: str,
        view: SelectStatement,
        tables: TableData,
    ) -> ShrunkCase:
        """Minimize the triple; returns the best case found within budget."""
        self.evaluations = 0
        exhausted = False
        try:
            query, view = self._shrink_conjuncts(
                query, view_name, view, tables, target="query"
            )
            query = self._shrink_outputs(query, view_name, view, tables)
            query, view = self._shrink_conjuncts(
                query, view_name, view, tables, target="view"
            )
            tables = self._shrink_rows(query, view_name, view, tables)
            query, view = self._shrink_conjuncts(
                query, view_name, view, tables, target="query"
            )
        except _BudgetExhausted:
            exhausted = True
        # Drop tables the final statements no longer reference.
        referenced = set(query.table_names()) | set(view.table_names())
        tables = {
            name: data for name, data in tables.items() if name in referenced
        }
        # Re-derive the final substitute and diff without budget pressure.
        self.budget = self.evaluations + 1
        try:
            diverges, substitute, diff, error = self._oracle(
                query, view_name, view, tables
            )
        except _BudgetExhausted:  # pragma: no cover - budget was just raised
            diverges, substitute, diff, error = False, None, None, None
        return ShrunkCase(
            query=query,
            view_name=view_name,
            view=view,
            substitute=substitute if diverges else None,
            tables=tables,
            diff=diff,
            error=error,
            evaluations=self.evaluations,
            budget_exhausted=exhausted,
        )
