"""In-memory bag-semantics execution engine."""

from .database import Database, Relation
from .ddl import run_sql
from .indexes import IndexRegistry, StoredIndex
from .evaluator import evaluate, predicate_holds
from .executor import QueryResult, execute, materialize_view

__all__ = [
    "Database",
    "IndexRegistry",
    "QueryResult",
    "StoredIndex",
    "Relation",
    "evaluate",
    "run_sql",
    "execute",
    "materialize_view",
    "predicate_holds",
]
