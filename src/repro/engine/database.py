"""In-memory database: base-table and materialized-view storage.

Relations are stored as lists of tuples with a per-relation column order;
the executor converts them to ``(relation, column) -> value`` row mappings
on demand. Both base tables and materialized views live here, so a
substitute expression that scans a view executes through exactly the same
path as a query over base tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import ExecutionError


_version_counter = 0


def _next_version() -> int:
    """Globally unique, monotonically increasing relation versions.

    Versions are unique across relation *instances* too, so replacing a
    relation under the same name can never alias a stale index build.
    """
    global _version_counter
    _version_counter += 1
    return _version_counter


@dataclass
class Relation:
    """Stored rows plus the column order they are stored in.

    ``version`` increments on every tracked mutation; stored indexes use it
    to detect staleness. Code that mutates ``rows`` directly must call
    :meth:`bump_version` afterwards.
    """

    name: str
    columns: tuple[str, ...]
    rows: list[tuple[object, ...]]
    version: int = 0

    def __post_init__(self) -> None:
        self._index = {column: i for i, column in enumerate(self.columns)}
        self.version = _next_version()

    def bump_version(self) -> None:
        self.version = _next_version()

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column_position(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise ExecutionError(f"{self.name} has no column {column}") from None

    def iter_dicts(self) -> Iterator[dict[tuple[str, str], object]]:
        """Rows as executor-friendly mappings keyed by (relation, column)."""
        keys = [(self.name, column) for column in self.columns]
        for row in self.rows:
            yield dict(zip(keys, row))

    def column_values(self, column: str) -> list[object]:
        position = self.column_position(column)
        return [row[position] for row in self.rows]


class Database:
    """A named collection of relations (base tables and materialized views)."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._indexes = None

    @property
    def indexes(self):
        """The database's index registry (created on first use)."""
        if self._indexes is None:
            from .indexes import IndexRegistry

            self._indexes = IndexRegistry(self)
        return self._indexes

    def create(self, name: str, columns: Sequence[str]) -> Relation:
        if name in self._relations:
            raise ExecutionError(f"relation {name} already exists")
        relation = Relation(name=name, columns=tuple(columns), rows=[])
        self._relations[name] = relation
        return relation

    def store(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> Relation:
        """Create (or replace) a relation with the given contents."""
        relation = Relation(
            name=name, columns=tuple(columns), rows=[tuple(row) for row in rows]
        )
        self._relations[name] = relation
        return relation

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise ExecutionError(f"no relation named {name}")
        del self._relations[name]

    def has(self, name: str) -> bool:
        return name in self._relations

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise ExecutionError(f"no relation named {name}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def row_count(self, name: str) -> int:
        return self.relation(name).row_count
