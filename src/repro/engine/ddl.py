"""DDL execution: apply CREATE VIEW / CREATE INDEX statements.

Ties the SQL frontend to the engine so the paper's Example 1 runs
verbatim: ``create view ... with schemabinding``, then ``create unique
clustered index`` (which materializes the view), then secondary indexes.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..errors import ExecutionError
from ..sql.binder import bind_statement
from ..sql.parser import parse
from ..sql.statements import (
    CreateIndexStatement,
    CreateViewStatement,
    SelectStatement,
)
from .database import Database
from .executor import QueryResult, execute, materialize_view


class _CatalogWithViews:
    """Schema provider resolving both base tables and materialized views.

    Lets ``run_sql`` execute ``SELECT ... FROM v1`` directly over a
    materialized view (SQL Server's NOEXPAND-style access).
    """

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def has_table(self, name: str) -> bool:
        return self._catalog.has_table(name) or self._catalog.has_view(name)

    def column_names(self, table: str):
        if self._catalog.has_table(table):
            return self._catalog.column_names(table)
        view = self._catalog.view(table)
        return [item.name for item in view.query.select_items]


def run_sql(text: str, catalog: Catalog, database: Database):
    """Execute one statement of any supported kind.

    * ``SELECT`` -- bound and executed, returns a :class:`QueryResult`;
    * ``CREATE VIEW`` -- registered in the catalog (definition only;
      SQL Server semantics: the view is materialized by its clustered
      index, not by CREATE VIEW), returns the view definition;
    * ``CREATE INDEX`` -- creates the stored index; a *clustered* index on
      a view whose data is not stored yet materializes the view first,
      exactly like SQL Server 2000. Returns the index.
    """
    statement = parse(text)
    if isinstance(statement, SelectStatement):
        return execute(bind_statement(statement, _CatalogWithViews(catalog)), database)
    if isinstance(statement, CreateViewStatement):
        return catalog.add_view(statement)
    assert isinstance(statement, CreateIndexStatement)
    relation = statement.relation
    if not database.has(relation):
        if catalog.has_view(relation):
            if not statement.clustered:
                raise ExecutionError(
                    f"view {relation} must be materialized by a clustered "
                    "index before secondary indexes can be created"
                )
            materialize_view(relation, catalog.view(relation).query, database)
        else:
            raise ExecutionError(f"no relation named {relation}")
    return database.indexes.create(
        statement.name,
        relation,
        statement.columns,
        unique=statement.unique,
    )
