"""Scalar expression evaluation with SQL three-valued logic.

Rows are mappings from ``(table, column)`` pairs to Python values; ``None``
represents SQL NULL. Predicate evaluation returns ``True``, ``False`` or
``None`` (unknown) following Kleene logic; the executor keeps a row only
when the WHERE predicate evaluates to ``True``.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Mapping

from ..errors import ExecutionError
from ..sql.expressions import (
    And,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    IsNull,
    LikePredicate,
    Literal,
    Not,
    Or,
    UnaryMinus,
)

Row = Mapping[tuple[str, str], object]


@lru_cache(maxsize=4096)
def _like_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL LIKE pattern (% and _) into an anchored regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def _compare(op: str, left: object, right: object) -> bool | None:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError as exc:
        raise ExecutionError(f"cannot compare {left!r} {op} {right!r}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arithmetic(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(f"arithmetic on non-numeric values: {left!r} {op} {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL Server would error; NULL keeps generated data safe
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def evaluate(expression: Expression, row: Row) -> object:
    """Evaluate a scalar expression over ``row``; NULL maps to ``None``.

    Aggregate function calls cannot be evaluated here; the executor handles
    them during grouping and this function raises if one slips through.
    """
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        try:
            return row[expression.key]
        except KeyError:
            raise ExecutionError(f"row has no column {expression}") from None
    if isinstance(expression, BinaryOp):
        left = evaluate(expression.left, row)
        right = evaluate(expression.right, row)
        if expression.is_comparison():
            return _compare(expression.op, left, right)
        return _arithmetic(expression.op, left, right)
    if isinstance(expression, UnaryMinus):
        value = evaluate(expression.operand, row)
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot negate {value!r}")
        return -value
    if isinstance(expression, And):
        saw_unknown = False
        for part in expression.conjuncts:
            value = evaluate(part, row)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True
    if isinstance(expression, Or):
        saw_unknown = False
        for part in expression.disjuncts:
            value = evaluate(part, row)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False
    if isinstance(expression, Not):
        value = evaluate(expression.operand, row)
        if value is None:
            return None
        return not value
    if isinstance(expression, IsNull):
        value = evaluate(expression.operand, row)
        result = value is None
        return not result if expression.negated else result
    if isinstance(expression, LikePredicate):
        value = evaluate(expression.operand, row)
        if value is None:
            return None
        if not isinstance(value, str):
            raise ExecutionError(f"LIKE applied to non-string {value!r}")
        matched = _like_regex(expression.pattern).fullmatch(value) is not None
        return not matched if expression.negated else matched
    if isinstance(expression, InList):
        value = evaluate(expression.operand, row)
        if value is None:
            return None
        saw_unknown = False
        for item in expression.items:
            candidate = evaluate(item, row)
            if candidate is None:
                saw_unknown = True
            elif candidate == value:
                return False if expression.negated else True
        if saw_unknown:
            return None
        return True if expression.negated else False
    if isinstance(expression, FuncCall):
        if expression.is_aggregate():
            raise ExecutionError(
                f"aggregate {expression.name} outside grouping context"
            )
        if expression.name == "coalesce":
            if not expression.args:
                raise ExecutionError("coalesce requires at least one argument")
            for argument in expression.args:
                value = evaluate(argument, row)
                if value is not None:
                    return value
            return None
        raise ExecutionError(f"unknown function {expression.name}")
    raise ExecutionError(f"cannot evaluate {type(expression).__name__}")


def predicate_holds(predicate: Expression | None, row: Row) -> bool:
    """True when the predicate evaluates to SQL TRUE (not FALSE or UNKNOWN)."""
    if predicate is None:
        return True
    return evaluate(predicate, row) is True
