"""Bag-semantics executor for bound SPJG statements.

The executor implements exactly the relational behaviour the paper's
correctness argument depends on:

* inner joins over the FROM tables with WHERE conjuncts applied as early as
  their referenced tables are available (equijoins become hash joins),
* bag semantics throughout -- duplicate rows are preserved with their
  multiplicity (requirement 4 of Section 3.1),
* SQL aggregation semantics: NULLs ignored by SUM/COUNT(expr), grouping
  treats NULL as an ordinary key, an aggregate query without GROUP BY over
  an empty input yields one row.

It is deliberately simple -- correctness oracle first, performance second --
but uses hash joins so that validating substitutes on generated TPC-H data
stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..sql.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
)
from ..sql.statements import SelectItem, SelectStatement
from .database import Database
from .evaluator import evaluate, predicate_holds

RowDict = dict[tuple[str, str], object]


@dataclass
class QueryResult:
    """Executor output: ordered column names and a bag (list) of row tuples."""

    columns: tuple[str, ...]
    rows: list[tuple[object, ...]]

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def as_multiset(
        self, float_digits: int | None = None
    ) -> dict[tuple[object, ...], int]:
        """Rows with multiplicities, for bag-equality comparison.

        ``float_digits`` rounds float values to that many significant
        digits first, so results whose floating-point sums were accumulated
        in different orders (e.g. a rollup over a pre-aggregate vs. a
        direct sum) still compare equal.
        """
        counts: dict[tuple[object, ...], int] = {}
        for row in self.rows:
            if float_digits is not None:
                row = tuple(
                    float(f"{value:.{float_digits}g}")
                    if isinstance(value, float)
                    else value
                    for value in row
                )
            counts[row] = counts.get(row, 0) + 1
        return counts

    def bag_equals(
        self, other: "QueryResult", float_digits: int | None = None
    ) -> bool:
        """Bag equality of the row contents (column *names* may differ)."""
        if len(self.columns) != len(other.columns):
            return False
        return self.as_multiset(float_digits) == other.as_multiset(float_digits)


def _referenced_tables(expression: Expression) -> frozenset[str]:
    return frozenset(ref.table for ref in expression.column_refs() if ref.table)


def _split_equijoin(conjunct: Expression) -> tuple[ColumnRef, ColumnRef] | None:
    """Return the two sides when the conjunct is ``col = col`` across tables."""
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return conjunct.left, conjunct.right
    return None


class _JoinState:
    """Incremental left-deep join with early predicate application."""

    def __init__(self, database: Database, conjuncts: list[Expression]):
        self.database = database
        self.pending = list(conjuncts)
        self.joined_tables: set[str] = set()
        self.rows: list[RowDict] = []

    def _take_applicable(self) -> list[Expression]:
        """Remove and return pending conjuncts fully covered by joined tables."""
        applicable: list[Expression] = []
        remaining: list[Expression] = []
        for conjunct in self.pending:
            if _referenced_tables(conjunct) <= self.joined_tables:
                applicable.append(conjunct)
            else:
                remaining.append(conjunct)
        self.pending = remaining
        return applicable

    def _scan(self, table: str) -> list[RowDict]:
        relation = self.database.relation(table)
        # Single-table filters on the scanned table apply immediately.
        local = [
            conjunct
            for conjunct in self.pending
            if _referenced_tables(conjunct) <= {table}
        ]
        self.pending = [c for c in self.pending if c not in local]
        indexed = self._index_scan(relation, local)
        if indexed is not None:
            rows = indexed
        else:
            rows = list(relation.iter_dicts())
        if local:
            rows = [
                row
                for row in rows
                if all(predicate_holds(c, row) for c in local)
            ]
        return rows

    def _index_scan(self, relation, local: list[Expression]):
        """Try to narrow the scan through a stored index.

        Uses the first index whose leading column carries an equality or
        range conjunct; the remaining local predicates are re-applied by
        the caller, so this is purely an access-path optimization.
        """
        registry = getattr(self.database, "_indexes", None)
        if registry is None:
            return None
        from ..core.ranges import as_range_predicate

        bounds: dict[str, list] = {}
        for conjunct in local:
            recognised = as_range_predicate(conjunct)
            if recognised is not None:
                bounds.setdefault(recognised.column[1], []).append(recognised)
        if not bounds:
            return None
        for index in registry.on_relation(relation.name):
            leading = index.columns[0]
            predicates = bounds.get(leading)
            if not predicates:
                continue
            equality = next((p for p in predicates if p.op == "="), None)
            if equality is not None:
                raw = index.lookup_equal(relation, (equality.value,))
            else:
                lower = upper = None
                for predicate in predicates:
                    if predicate.op in (">", ">="):
                        candidate = (predicate.value, predicate.op == ">=")
                        if lower is None or candidate[0] > lower[0]:
                            lower = candidate
                    elif predicate.op in ("<", "<="):
                        candidate = (predicate.value, predicate.op == "<=")
                        if upper is None or candidate[0] < upper[0]:
                            upper = candidate
                raw = index.lookup_range(relation, lower, upper)
            keys = [(relation.name, column) for column in relation.columns]
            return [dict(zip(keys, row)) for row in raw]
        return None

    def add_table(self, table: str) -> None:
        scanned = self._scan(table)
        if not self.joined_tables:
            self.joined_tables.add(table)
            self.rows = scanned
            return
        # Find equijoin conjuncts linking the new table to the current result.
        join_pairs: list[tuple[ColumnRef, ColumnRef]] = []
        used: list[Expression] = []
        for conjunct in self.pending:
            sides = _split_equijoin(conjunct)
            if sides is None:
                continue
            left, right = sides
            if left.table in self.joined_tables and right.table == table:
                join_pairs.append((left, right))
                used.append(conjunct)
            elif right.table in self.joined_tables and left.table == table:
                join_pairs.append((right, left))
                used.append(conjunct)
        self.pending = [c for c in self.pending if c not in used]
        self.joined_tables.add(table)
        if join_pairs:
            self.rows = self._hash_join(scanned, table, join_pairs)
        else:
            self.rows = self._cross_join(scanned)
        # Any now-covered residual conjuncts apply right away.
        for conjunct in self._take_applicable():
            self.rows = [row for row in self.rows if predicate_holds(conjunct, row)]

    def _hash_join(
        self,
        scanned: list[RowDict],
        table: str,
        join_pairs: list[tuple[ColumnRef, ColumnRef]],
    ) -> list[RowDict]:
        build_keys = [right.key for _, right in join_pairs]
        probe_keys = [left.key for left, _ in join_pairs]
        buckets: dict[tuple[object, ...], list[RowDict]] = {}
        for row in scanned:
            key = tuple(row[k] for k in build_keys)
            if any(v is None for v in key):
                continue  # NULL never satisfies an equijoin
            buckets.setdefault(key, []).append(row)
        joined: list[RowDict] = []
        for row in self.rows:
            key = tuple(row[k] for k in probe_keys)
            if any(v is None for v in key):
                continue
            for match in buckets.get(key, ()):
                merged = dict(row)
                merged.update(match)
                joined.append(merged)
        return joined

    def _cross_join(self, scanned: list[RowDict]) -> list[RowDict]:
        joined: list[RowDict] = []
        for row in self.rows:
            for other in scanned:
                merged = dict(row)
                merged.update(other)
                joined.append(merged)
        return joined


def _choose_join_order(
    tables: tuple[str, ...], conjuncts: list[Expression]
) -> list[str]:
    """Greedy connected order: prefer tables linked by an equijoin."""
    if len(tables) <= 2:
        return list(tables)
    edges: set[frozenset[str]] = set()
    for conjunct in conjuncts:
        sides = _split_equijoin(conjunct)
        if sides and sides[0].table != sides[1].table:
            edges.add(frozenset({sides[0].table or "", sides[1].table or ""}))
    order = [tables[0]]
    remaining = list(tables[1:])
    while remaining:
        placed = set(order)
        connected = next(
            (
                t
                for t in remaining
                if any(frozenset({t, p}) in edges for p in placed)
            ),
            None,
        )
        chosen = connected if connected is not None else remaining[0]
        order.append(chosen)
        remaining.remove(chosen)
    return order


class _AggregateAccumulator:
    """Running state for one aggregate call within one group."""

    def __init__(self, call: FuncCall):
        self.call = call
        self.count = 0
        self.total: float | int | None = None

    def update(self, row: RowDict) -> None:
        if self.call.star:
            self.count += 1
            return
        value = evaluate(self.call.args[0], row)
        if value is None:
            return
        self.count += 1
        if self.call.name in ("sum", "avg"):
            if not isinstance(value, (int, float)):
                raise ExecutionError(f"SUM/AVG over non-numeric value {value!r}")
            self.total = value if self.total is None else self.total + value

    def result(self) -> object:
        name = self.call.name
        if name in ("count", "count_big"):
            return self.count
        if name == "sum":
            return self.total
        if name == "avg":
            if self.count == 0 or self.total is None:
                return None
            return self.total / self.count
        raise ExecutionError(f"unsupported aggregate {name}")


def _evaluate_output(
    expression: Expression,
    aggregate_values: dict[FuncCall, object],
    representative: RowDict,
) -> object:
    """Evaluate an output expression of an aggregate query.

    Aggregate sub-calls are replaced by their computed per-group values;
    everything else (grouping expressions, constants, arithmetic over them)
    evaluates on a representative row of the group.
    """
    if isinstance(expression, FuncCall) and expression.is_aggregate():
        return aggregate_values[expression]
    if not expression.contains_aggregate():
        return evaluate(expression, representative)
    if isinstance(expression, BinaryOp):
        left = _evaluate_output(expression.left, aggregate_values, representative)
        right = _evaluate_output(expression.right, aggregate_values, representative)
        synthetic = BinaryOp(
            expression.op,
            _as_literal(left),
            _as_literal(right),
        )
        return evaluate(synthetic, {})
    if isinstance(expression, FuncCall):
        # A scalar function (e.g. coalesce) over aggregate sub-expressions:
        # evaluate each argument in this grouping context first.
        arguments = tuple(
            _as_literal(
                _evaluate_output(argument, aggregate_values, representative)
            )
            for argument in expression.args
        )
        return evaluate(FuncCall(expression.name, arguments), {})
    raise ExecutionError(
        f"cannot evaluate aggregate output expression {expression}"
    )


def _as_literal(value: object):
    from ..sql.expressions import Literal

    return Literal(value)


def execute(statement: SelectStatement, database: Database) -> QueryResult:
    """Execute a bound SPJG statement against ``database``."""
    from ..sql.expressions import conjuncts_of

    conjuncts = list(conjuncts_of(statement.where))
    order = _choose_join_order(statement.table_names(), conjuncts)
    state = _JoinState(database, conjuncts)
    for table in order:
        state.add_table(table)
    rows = state.rows
    # Conjuncts can only remain if they reference no tables at all
    # (constant predicates); apply them now.
    for conjunct in state.pending:
        if _referenced_tables(conjunct):
            raise ExecutionError(f"unapplied predicate {conjunct}")
        rows = [row for row in rows if predicate_holds(conjunct, row)]

    column_names = tuple(
        item.name if item.name is not None else f"col{i + 1}"
        for i, item in enumerate(statement.select_items)
    )

    if statement.is_aggregate:
        output_rows = aggregate_rows(rows, statement.select_items, statement.group_by)
    else:
        output_rows = project_rows(rows, statement.select_items)
    if statement.distinct:
        seen: set[tuple[object, ...]] = set()
        deduped: list[tuple[object, ...]] = []
        for row in output_rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        output_rows = deduped
    return QueryResult(columns=column_names, rows=output_rows)


def project_rows(
    rows: list[RowDict], select_items: tuple[SelectItem, ...] | list[SelectItem]
) -> list[tuple[object, ...]]:
    """Plain (non-grouping) projection of row mappings to output tuples."""
    return [
        tuple(evaluate(item.expression, row) for item in select_items)
        for row in rows
    ]


def aggregate_rows(
    rows: list[RowDict],
    select_items: tuple[SelectItem, ...] | list[SelectItem],
    group_by: tuple[Expression, ...] | list[Expression],
) -> list[tuple[object, ...]]:
    """SQL grouping and aggregation over row mappings.

    NULL is an ordinary grouping key; a global aggregation (empty
    ``group_by``) over an empty input yields one row.
    """
    aggregate_calls = _distinct_aggregates(select_items)
    groups: dict[tuple[object, ...], tuple[RowDict, list[_AggregateAccumulator]]] = {}
    ordered_keys: list[tuple[object, ...]] = []
    for row in rows:
        key = tuple(evaluate(expr, row) for expr in group_by)
        entry = groups.get(key)
        if entry is None:
            entry = (row, [_AggregateAccumulator(call) for call in aggregate_calls])
            groups[key] = entry
            ordered_keys.append(key)
        for accumulator in entry[1]:
            accumulator.update(row)
    if not group_by and not groups:
        # Global aggregation over an empty input: one row of "empty" values.
        empty = [_AggregateAccumulator(call) for call in aggregate_calls]
        values = {call: acc.result() for call, acc in zip(aggregate_calls, empty)}
        return [
            tuple(
                _evaluate_output(item.expression, values, {})
                for item in select_items
            )
        ]
    output: list[tuple[object, ...]] = []
    for key in ordered_keys:
        representative, accumulators = groups[key]
        values = {
            call: acc.result() for call, acc in zip(aggregate_calls, accumulators)
        }
        output.append(
            tuple(
                _evaluate_output(item.expression, values, representative)
                for item in select_items
            )
        )
    return output


def _distinct_aggregates(
    select_items: tuple[SelectItem, ...] | list[SelectItem],
) -> list[FuncCall]:
    calls: list[FuncCall] = []
    for item in select_items:
        for node in item.expression.walk():
            if isinstance(node, FuncCall) and node.is_aggregate() and node not in calls:
                calls.append(node)
    return calls


def materialize_view(
    name: str, query: SelectStatement, database: Database
) -> None:
    """Execute a view's query and store the result as relation ``name``.

    Output column names follow SQL Server's rule: every output expression of
    an indexed view must have a name (alias or plain column).
    """
    result = execute(query, database)
    for i, item in enumerate(query.select_items):
        if item.name is None:
            raise ExecutionError(
                f"view {name} output #{i + 1} has no name; use AS"
            )
    columns = tuple(item.name for item in query.select_items)  # type: ignore[misc]
    database.store(name, columns, result.rows)
