"""Stored indexes over relations: point and range lookups.

Materialized views in the paper's setting are *indexed views* -- a unique
clustered index materializes the view, and secondary indexes can be added
(Example 1). This module supplies the executable counterpart: an ordered
index over one or more columns of a stored relation, supporting equality
probes on a key prefix and range scans on the leading column.

Indexes track the owning relation's version and rebuild lazily when the
relation changed, so maintenance-driven updates never serve stale results.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import ExecutionError
from .database import Database, Relation


@dataclass
class StoredIndex:
    """A sorted multi-column index over one relation."""

    name: str
    relation_name: str
    columns: tuple[str, ...]
    unique: bool = False
    _keys: list[tuple] = field(default_factory=list, repr=False)
    _rows: list[tuple] = field(default_factory=list, repr=False)
    _built_version: int = -1

    def _ensure_fresh(self, relation: Relation) -> None:
        if self._built_version == relation.version:
            return
        positions = [relation.column_position(c) for c in self.columns]
        # NULL keys are excluded: neither equality nor range probes can
        # match them (SQL comparison semantics).
        entries = []
        for row in relation.rows:
            key = tuple(row[p] for p in positions)
            if any(v is None for v in key):
                continue
            entries.append((key, row))
        entries.sort(key=lambda e: e[0])
        if self.unique:
            for previous, current in zip(entries, entries[1:]):
                if previous[0] == current[0]:
                    raise ExecutionError(
                        f"unique index {self.name} violated by key {current[0]}"
                    )
        self._keys = [key for key, _ in entries]
        self._rows = [row for _, row in entries]
        self._built_version = relation.version

    def lookup_equal(
        self, relation: Relation, prefix: tuple
    ) -> list[tuple]:
        """Rows whose leading index columns equal ``prefix``."""
        self._ensure_fresh(relation)
        low = bisect.bisect_left(self._keys, prefix)
        high = bisect.bisect_right(self._keys, prefix + (_TOP,))
        return [
            self._rows[i]
            for i in range(low, min(high, len(self._keys)))
            if self._keys[i][: len(prefix)] == prefix
        ]

    def lookup_range(
        self,
        relation: Relation,
        lower: tuple[object, bool] | None,
        upper: tuple[object, bool] | None,
    ) -> list[tuple]:
        """Rows whose leading column lies in the given (value, inclusive) range."""
        self._ensure_fresh(relation)
        first_column = [key[0] for key in self._keys]
        if lower is None:
            low = 0
        else:
            value, inclusive = lower
            low = (
                bisect.bisect_left(first_column, value)
                if inclusive
                else bisect.bisect_right(first_column, value)
            )
        if upper is None:
            high = len(first_column)
        else:
            value, inclusive = upper
            high = (
                bisect.bisect_right(first_column, value)
                if inclusive
                else bisect.bisect_left(first_column, value)
            )
        return self._rows[low:high]


class _Top:
    """Sorts after every value (sentinel for prefix upper bounds)."""

    def __lt__(self, other) -> bool:  # pragma: no cover - ordering glue
        return False

    def __gt__(self, other) -> bool:
        return True


_TOP = _Top()


class IndexRegistry:
    """All stored indexes of one database."""

    def __init__(self, database: Database):
        self.database = database
        self._by_relation: dict[str, list[StoredIndex]] = {}
        self._by_name: dict[str, StoredIndex] = {}

    def create(
        self,
        name: str,
        relation_name: str,
        columns: tuple[str, ...] | list[str],
        unique: bool = False,
    ) -> StoredIndex:
        if name in self._by_name:
            raise ExecutionError(f"index {name} already exists")
        relation = self.database.relation(relation_name)  # validates existence
        for column in columns:
            relation.column_position(column)  # validates columns
        index = StoredIndex(
            name=name,
            relation_name=relation_name,
            columns=tuple(columns),
            unique=unique,
        )
        index._ensure_fresh(relation)  # validate uniqueness eagerly
        self._by_relation.setdefault(relation_name, []).append(index)
        self._by_name[name] = index
        return index

    def drop(self, name: str) -> None:
        index = self._by_name.pop(name, None)
        if index is None:
            raise ExecutionError(f"no index named {name}")
        self._by_relation[index.relation_name].remove(index)

    def on_relation(self, relation_name: str) -> tuple[StoredIndex, ...]:
        return tuple(self._by_relation.get(relation_name, ()))

    def get(self, name: str) -> StoredIndex:
        try:
            return self._by_name[name]
        except KeyError:
            raise ExecutionError(f"no index named {name}") from None
