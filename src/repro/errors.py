"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from catalog or execution
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available so callers can point at the source location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class BindError(ReproError):
    """Raised when names in a statement cannot be resolved against a catalog."""


class CatalogError(ReproError):
    """Raised for schema-definition problems (duplicate tables, bad FKs, ...)."""


class ExecutionError(ReproError):
    """Raised when the execution engine cannot evaluate a plan or expression."""


class UnsupportedSqlError(ReproError):
    """Raised for SQL constructs outside the SPJG class this library handles."""


class MatchError(ReproError):
    """Raised for internal inconsistencies during view matching.

    A failed match is *not* an error (the matcher simply produces no
    substitute); this exception signals misuse of the API, e.g. registering
    a view whose definition is not an indexable SPJG view.
    """


class DeadlineExceeded(ReproError):
    """Raised when an optimization overruns its caller's time budget.

    The serving layer propagates each request's remaining deadline into
    the optimizer, which checks it between view-matching invocations and
    plan-search subsets; overrunning mid-search raises this instead of
    letting a request that *started* just under its deadline run
    unboundedly. The server maps it to a ``timed_out`` result.
    """
