"""The Section 5 experiment harness and figure regeneration."""

from .figures import (
    figure2,
    figure3,
    figure4,
    funnel_statistics,
    render_all,
    render_figure2,
    render_figure3,
    render_figure4,
    section5_statistics,
)
from .harness import (
    ALL_CONFIGURATIONS,
    Configuration,
    ExperimentConfig,
    ExperimentHarness,
    ExperimentResult,
    MeasurementPoint,
)
from .hotpath import (
    HotpathConfig,
    HotpathMismatchError,
    check_against_baseline,
    check_pool_slo,
    check_speedup_gates,
    check_tracing_overhead,
    profile_hotpath,
    run_hotpath_benchmark,
)
from .reporting import render_table

__all__ = [
    "ALL_CONFIGURATIONS",
    "Configuration",
    "ExperimentConfig",
    "ExperimentHarness",
    "ExperimentResult",
    "HotpathConfig",
    "HotpathMismatchError",
    "MeasurementPoint",
    "check_against_baseline",
    "check_pool_slo",
    "check_speedup_gates",
    "check_tracing_overhead",
    "profile_hotpath",
    "run_hotpath_benchmark",
    "figure2",
    "figure3",
    "figure4",
    "funnel_statistics",
    "render_all",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_table",
    "section5_statistics",
]
