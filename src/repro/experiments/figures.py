"""Regeneration of the paper's figures and Section 5 statistics as tables.

Each function takes an :class:`ExperimentResult` and returns rows matching
the corresponding figure's series; ``render_*`` helpers produce the text
tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from .harness import ALL_CONFIGURATIONS, Configuration, ExperimentResult
from .reporting import render_table

_ALT_FILTER = Configuration(produce_substitutes=True, use_filter_tree=True)
_NOALT_FILTER = Configuration(produce_substitutes=False, use_filter_tree=True)
_ALT_NOFILTER = Configuration(produce_substitutes=True, use_filter_tree=False)
_NOALT_NOFILTER = Configuration(produce_substitutes=False, use_filter_tree=False)


@dataclass(frozen=True)
class Figure2Row:
    """Total optimization time (seconds) per configuration."""

    view_count: int
    alt_filter: float
    noalt_filter: float
    alt_nofilter: float
    noalt_nofilter: float


def figure2(result: ExperimentResult) -> list[Figure2Row]:
    """Figure 2: optimization time as a function of the number of views."""
    rows = []
    for view_count in result.config.view_counts:
        rows.append(
            Figure2Row(
                view_count=view_count,
                alt_filter=result.point(view_count, _ALT_FILTER).total_seconds,
                noalt_filter=result.point(view_count, _NOALT_FILTER).total_seconds,
                alt_nofilter=result.point(view_count, _ALT_NOFILTER).total_seconds,
                noalt_nofilter=result.point(
                    view_count, _NOALT_NOFILTER
                ).total_seconds,
            )
        )
    return rows


def render_figure2(result: ExperimentResult) -> str:
    """Text table for Figure 2."""
    rows = figure2(result)
    base = {
        "alt_filter": result.baseline_seconds(_ALT_FILTER),
        "alt_nofilter": result.baseline_seconds(_ALT_NOFILTER),
    }
    body = [
        [
            row.view_count,
            f"{row.alt_filter:.3f}",
            f"{row.noalt_filter:.3f}",
            f"{row.alt_nofilter:.3f}",
            f"{row.noalt_nofilter:.3f}",
            f"{(row.alt_filter / base['alt_filter'] - 1) * 100:+.0f}%",
            f"{(row.alt_nofilter / base['alt_nofilter'] - 1) * 100:+.0f}%",
        ]
        for row in rows
    ]
    return render_table(
        title="Figure 2: total optimization time (s) vs number of views",
        headers=[
            "views",
            "Alt&Filter",
            "NoAlt&Filter",
            "Alt&NoFilter",
            "NoAlt&NoFilter",
            "increase(F)",
            "increase(NoF)",
        ],
        rows=body,
    )


@dataclass(frozen=True)
class Figure3Row:
    """Optimization-time increase decomposition (seconds)."""

    view_count: int
    total_increase: float
    matching_time: float


def figure3(result: ExperimentResult) -> list[Figure3Row]:
    """Figure 3: total increase vs time spent in the view-matching rule.

    Both series use the Alt & Filter configuration, like the paper's: the
    increase is relative to optimizing with zero views, and the matching
    time is measured inside the rule (including filter-tree search and the
    per-candidate tests).
    """
    baseline = result.baseline_seconds(_ALT_FILTER)
    rows = []
    for view_count in result.config.view_counts:
        point = result.point(view_count, _ALT_FILTER)
        rows.append(
            Figure3Row(
                view_count=view_count,
                total_increase=max(0.0, point.total_seconds - baseline),
                matching_time=point.matching_seconds,
            )
        )
    return rows


def render_figure3(result: ExperimentResult) -> str:
    """Text table for Figure 3."""
    rows = figure3(result)
    body = [
        [
            row.view_count,
            f"{row.total_increase:.3f}",
            f"{row.matching_time:.3f}",
            f"{row.matching_time / row.total_increase:.0%}"
            if row.total_increase > 0
            else "-",
        ]
        for row in rows
    ]
    return render_table(
        title="Figure 3: optimization-time increase vs view-matching time (s)",
        headers=["views", "total increase", "view-matching time", "share"],
        rows=body,
    )


@dataclass(frozen=True)
class Figure4Row:
    view_count: int
    plans_using_views: int
    fraction: float


def figure4(result: ExperimentResult) -> list[Figure4Row]:
    """Figure 4: number of final plans using materialized views."""
    rows = []
    for view_count in result.config.view_counts:
        point = result.point(view_count, _ALT_FILTER)
        rows.append(
            Figure4Row(
                view_count=view_count,
                plans_using_views=point.plans_using_views,
                fraction=point.view_usage_fraction,
            )
        )
    return rows


def render_figure4(result: ExperimentResult) -> str:
    """Text table for Figure 4."""
    rows = figure4(result)
    body = [
        [row.view_count, row.plans_using_views, f"{row.fraction:.0%}"]
        for row in rows
    ]
    return render_table(
        title="Figure 4: final query plans using materialized views",
        headers=["views", "plans using views", "fraction of queries"],
        rows=body,
    )


def section5_statistics(result: ExperimentResult) -> str:
    """The filtering statistics quoted in the text of Section 5."""
    body = []
    for view_count in result.config.view_counts:
        if view_count == 0:
            continue
        point = result.point(view_count, _ALT_FILTER)
        body.append(
            [
                view_count,
                f"{point.candidate_fraction:.3%}",
                f"{point.candidate_success_rate:.0%}",
                f"{point.invocations_per_query:.1f}",
                f"{point.substitutes_per_invocation:.2f}",
                f"{point.substitutes_per_query:.2f}",
            ]
        )
    return render_table(
        title="Section 5 filtering statistics (Alt & Filter)",
        headers=[
            "views",
            "candidate fraction",
            "candidates matching",
            "invocations/query",
            "substitutes/invocation",
            "substitutes/query",
        ],
        rows=body,
    )


def funnel_statistics(result: ExperimentResult) -> str:
    """Aggregated match-funnel report for the largest Alt & Filter cell.

    Two tables: candidate narrowing per filter-tree level (total
    survivors entering each level, summed over the query batch) and the
    RejectReason histogram from the full matching tests -- the
    workload-level view of what ``explain-rewrite`` shows per query.
    """
    view_counts = [v for v in result.config.view_counts if v > 0]
    if not view_counts:
        return ""
    point = result.point(max(view_counts), _ALT_FILTER)
    parts = []
    if point.level_survivors:
        registered = point.level_survivors[0][1]
        body = [
            [
                name,
                survivors,
                f"{survivors / registered:.2%}" if registered else "-",
            ]
            for name, survivors in point.level_survivors
        ]
        parts.append(
            render_table(
                title=(
                    f"Candidate narrowing per filter-tree level "
                    f"({point.view_count} views, summed over "
                    f"{point.query_count} queries)"
                ),
                headers=["level", "survivors", "of registered"],
                rows=body,
            )
        )
    if point.rejects_by_reason:
        total = sum(point.rejects_by_reason.values())
        body = [
            [reason.lower(), count, f"{count / total:.0%}"]
            for reason, count in sorted(
                point.rejects_by_reason.items(), key=lambda kv: -kv[1]
            )
        ]
        parts.append(
            render_table(
                title=(
                    f"Full-matching reject reasons "
                    f"({point.view_count} views, Alt & Filter)"
                ),
                headers=["reason", "count", "share"],
                rows=body,
            )
        )
    return "\n\n".join(parts)


def render_all(result: ExperimentResult) -> str:
    """All figure tables and the Section 5 statistics, concatenated."""
    parts = [
        render_figure2(result),
        render_figure3(result),
        render_figure4(result),
        section5_statistics(result),
    ]
    funnel = funnel_statistics(result)
    if funnel:
        parts.append(funnel)
    return "\n\n".join(parts)


__all__ = [
    "ALL_CONFIGURATIONS",
    "Figure2Row",
    "Figure3Row",
    "Figure4Row",
    "figure2",
    "figure3",
    "figure4",
    "funnel_statistics",
    "render_all",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "section5_statistics",
]
