"""The Section 5 experiment harness.

Reruns the paper's measurement protocol: generate a pool of random views
and a batch of random queries over TPC-H, then, for increasing numbers of
registered views and for each optimizer configuration (substitutes on/off x
filter tree on/off), optimize every query and record:

* total / average optimization time (Figure 2),
* time spent inside the view-matching rule (Figure 3),
* number of final plans using materialized views (Figure 4),
* filtering statistics: candidate fraction, post-filter success rate,
  substitutes per invocation and per query (Section 5 text).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..catalog.catalog import Catalog
from ..catalog.tpch import tpch_catalog
from ..core.matcher import ViewMatcher
from ..core.options import DEFAULT_OPTIONS, MatchOptions
from ..optimizer.optimizer import Optimizer, OptimizerConfig
from ..stats.statistics import DatabaseStats
from ..stats.tpch_synthetic import synthetic_tpch_stats
from ..workload.generator import (
    GeneratedStatement,
    WorkloadGenerator,
    WorkloadParameters,
)


@dataclass(frozen=True)
class Configuration:
    """One line of Figure 2."""

    produce_substitutes: bool
    use_filter_tree: bool

    @property
    def label(self) -> str:
        alt = "Alt" if self.produce_substitutes else "No Alt"
        flt = "Filter" if self.use_filter_tree else "No Filter"
        return f"{alt} & {flt}"


ALL_CONFIGURATIONS: tuple[Configuration, ...] = (
    Configuration(produce_substitutes=True, use_filter_tree=True),
    Configuration(produce_substitutes=False, use_filter_tree=True),
    Configuration(produce_substitutes=True, use_filter_tree=False),
    Configuration(produce_substitutes=False, use_filter_tree=False),
)


@dataclass
class MeasurementPoint:
    """Measurements for one (view count, configuration) cell."""

    view_count: int
    configuration: Configuration
    query_count: int
    total_seconds: float
    matching_seconds: float
    plans_using_views: int
    invocations: int
    substitutes: int
    candidate_fraction: float
    candidate_success_rate: float
    # Aggregated match funnel for the cell: how often full matching
    # rejected a candidate for each RejectReason, and the per-level
    # filter-tree narrowing (total survivors entering each level, summed
    # over the query batch; first entry is the registered count).
    rejects_by_reason: dict[str, int] = field(default_factory=dict)
    level_survivors: tuple[tuple[str, int], ...] = ()

    @property
    def seconds_per_query(self) -> float:
        return self.total_seconds / max(self.query_count, 1)

    @property
    def invocations_per_query(self) -> float:
        return self.invocations / max(self.query_count, 1)

    @property
    def substitutes_per_query(self) -> float:
        return self.substitutes / max(self.query_count, 1)

    @property
    def substitutes_per_invocation(self) -> float:
        return self.substitutes / max(self.invocations, 1)

    @property
    def view_usage_fraction(self) -> float:
        return self.plans_using_views / max(self.query_count, 1)


@dataclass
class ExperimentConfig:
    """Knobs of one harness run; defaults give a fast-but-faithful sweep."""

    view_counts: tuple[int, ...] = (0, 100, 200, 400, 600, 800, 1000)
    query_count: int = 200
    seed: int = 42
    scale_factor: float = 0.5
    configurations: tuple[Configuration, ...] = ALL_CONFIGURATIONS
    workload: WorkloadParameters = field(default_factory=WorkloadParameters)
    match_options: MatchOptions = DEFAULT_OPTIONS


@dataclass
class ExperimentResult:
    """All measurement points of one sweep, plus the shared workload info."""

    config: ExperimentConfig
    points: list[MeasurementPoint]

    def series(self, configuration: Configuration) -> list[MeasurementPoint]:
        return sorted(
            (p for p in self.points if p.configuration == configuration),
            key=lambda p: p.view_count,
        )

    def point(
        self, view_count: int, configuration: Configuration
    ) -> MeasurementPoint:
        for p in self.points:
            if p.view_count == view_count and p.configuration == configuration:
                return p
        raise KeyError((view_count, configuration))

    def baseline_seconds(self, configuration: Configuration) -> float:
        """Optimization time with zero views for the given configuration."""
        return self.point(0, configuration).total_seconds


class ExperimentHarness:
    """Generates one workload and measures it under every configuration."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()
        self.catalog: Catalog = tpch_catalog()
        self.stats: DatabaseStats = synthetic_tpch_stats(self.config.scale_factor)
        generator = WorkloadGenerator(
            self.catalog,
            self.stats,
            seed=self.config.seed,
            parameters=self.config.workload,
        )
        max_views = max(self.config.view_counts)
        self.views = generator.generate_views(max_views)
        self.queries: list[GeneratedStatement] = generator.generate_queries(
            self.config.query_count
        )

    def build_matcher(self, view_count: int, use_filter_tree: bool) -> ViewMatcher:
        matcher = ViewMatcher(
            self.catalog,
            options=self.config.match_options,
            use_filter_tree=use_filter_tree,
        )
        for name, view in self.views[:view_count]:
            matcher.register_view(name, view.statement)
        return matcher

    def measure_cell(
        self, view_count: int, configuration: Configuration
    ) -> MeasurementPoint:
        matcher = (
            self.build_matcher(view_count, configuration.use_filter_tree)
            if view_count > 0
            else None
        )
        optimizer = Optimizer(
            self.catalog,
            self.stats,
            matcher=matcher,
            config=OptimizerConfig(
                produce_substitutes=configuration.produce_substitutes
            ),
        )
        total = 0.0
        matching = 0.0
        plans_using_views = 0
        invocations = 0
        substitutes = 0
        for query in self.queries:
            result = optimizer.optimize(query.statement)
            total += result.optimize_seconds
            matching += result.matching_seconds
            plans_using_views += result.uses_view
            invocations += result.invocations
            substitutes += result.substitutes_produced
        stats = matcher.statistics if matcher is not None else None
        return MeasurementPoint(
            view_count=view_count,
            configuration=configuration,
            query_count=len(self.queries),
            total_seconds=total,
            matching_seconds=matching,
            plans_using_views=plans_using_views,
            invocations=invocations,
            substitutes=substitutes,
            candidate_fraction=stats.candidate_fraction if stats else 0.0,
            candidate_success_rate=stats.candidate_success_rate if stats else 0.0,
            rejects_by_reason=dict(stats.rejects_by_reason) if stats else {},
            level_survivors=self._level_survivors(matcher, configuration),
        )

    def _level_survivors(
        self, matcher: ViewMatcher | None, configuration: Configuration
    ) -> tuple[tuple[str, int], ...]:
        """Per-level narrowing totals over the query batch (one cell).

        Runs *after* the timed loop so the attribution pass (which
        re-evaluates every level per query) never pollutes the Figure 2/3
        timings. Only meaningful with the filter tree on.
        """
        if matcher is None or not configuration.use_filter_tree:
            return ()
        totals: dict[str, int] = {}
        order: list[str] = []
        for query in self.queries:
            description = matcher.describe_query(query.statement)
            for name, survivors in matcher.filter_tree.filter_statistics(
                description
            ):
                if name not in totals:
                    totals[name] = 0
                    order.append(name)
                totals[name] += survivors
        return tuple((name, totals[name]) for name in order)

    def run(self) -> ExperimentResult:
        points = [
            self.measure_cell(view_count, configuration)
            for configuration in self.config.configurations
            for view_count in self.config.view_counts
        ]
        return ExperimentResult(config=self.config, points=points)
