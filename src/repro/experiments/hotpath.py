"""Hot-path benchmark: bitset-interned filtering vs. the reference path.

Measures the two costs the interning work targets, before and after, on
the same registered view pool:

* **candidate filtering** -- one :meth:`FilterTree.candidates` call with a
  warm probe cache, comparing the bitset-interned tree against the plain
  frozenset reference tree (``use_interning=False``);
* **full matching** -- one :meth:`ViewMatcher.match` invocation, comparing
  registration-time :class:`ViewMatchContext` reuse against per-invocation
  context rebuilds (``use_match_contexts=False``).

Both comparisons run the *same* queries against the *same* views and the
engine verifies the two modes agree exactly: identical candidate sets per
query and identical matcher funnel statistics (candidates considered,
matches, substitutes, rejection reasons). A speed number from a mode that
returned different answers would be meaningless.

The report serializes to ``BENCH_matching.json``; the committed copy is
the regression baseline the CI smoke job checks new runs against.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from dataclasses import dataclass

from ..catalog import tpch_catalog
from ..core import ViewMatcher
from ..core.filtertree import QueryProbe
from ..stats import synthetic_tpch_stats
from ..workload import WorkloadGenerator

# Latency regression tolerance for the CI gate: a fresh run may be at
# most this many times slower than the committed baseline at the largest
# measured view count (absorbs host-speed differences between the
# machine that committed the baseline and the CI runner).
REGRESSION_FACTOR = 2.0

# Tolerance for the tracing-overhead guard: with the null tracer
# installed (tracing disabled), the instrumented hot path may be at most
# this fraction slower than the committed baseline. Much tighter than
# REGRESSION_FACTOR because it polices a specific promise -- disabled
# tracing costs one contextvar read per stage -- rather than host speed.
TRACING_OVERHEAD_TOLERANCE = 0.05


@dataclass(frozen=True)
class HotpathConfig:
    """Benchmark sizes. The defaults mirror the Section 5 sweep shape."""

    view_counts: tuple[int, ...] = (100, 500, 1000)
    query_count: int = 25
    seed: int = 42
    scale: float = 0.5
    filter_repetitions: int = 40  # candidate-filter passes per timing run
    filter_runs: int = 3          # timing runs (best-of)
    match_repetitions: int = 3    # full-match passes per timing run
    match_runs: int = 3           # full-match timing runs (best-of)

    @classmethod
    def smoke(cls) -> "HotpathConfig":
        """CI-sized: still 1000 views (the gated point), fewer queries."""
        return cls(
            view_counts=(1000,),
            query_count=8,
            filter_repetitions=10,
            filter_runs=2,
            match_repetitions=1,
            match_runs=2,
        )


class HotpathMismatchError(AssertionError):
    """The before/after modes disagreed on candidates or match results."""


def _build_matcher(catalog, views, *, use_interning, use_match_contexts):
    matcher = ViewMatcher(
        catalog,
        use_interning=use_interning,
        use_match_contexts=use_match_contexts,
    )
    for name, view in views:
        matcher.register_view(name, view.statement)
    return matcher


def _calibrate(runs: int = 5) -> float:
    """Best-of timing (us) of a fixed pure-Python reference workload.

    The tracing-overhead gate normalizes hot-path latencies by this
    number before comparing against the committed baseline: both are
    measured in the same process, so host-speed differences between the
    baseline machine and the CI runner cancel out. The workload mixes
    dict lookups, set sizing, and integer arithmetic -- the same
    interpreter operations the filter tree and matcher spend their time
    on. The report takes the minimum over samples interleaved with the
    hot-path timings, so the calibration floor is measured under the
    same load windows as the latencies it normalizes.
    """
    payload = list(range(256))
    table = {i: frozenset((i, i + 1, i + 2)) for i in payload}
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        acc = 0
        for _ in range(100):
            for i in payload:
                acc += len(table[i]) + (i & 7)
        elapsed = (time.perf_counter() - start) * 1e6
        best = elapsed if best is None else min(best, elapsed)
    assert acc >= 0  # keep the loop observable
    return best


def _time_filter(tree, descriptions, repetitions: int, runs: int) -> float:
    """Best-of-``runs`` mean latency (us) of one ``candidates`` call."""
    for description in descriptions:  # warm probe + binding caches
        tree.candidates(description)
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(repetitions):
            for description in descriptions:
                tree.candidates(description)
        elapsed = time.perf_counter() - start
        per_call = elapsed / (repetitions * len(descriptions)) * 1e6
        best = per_call if best is None else min(best, per_call)
    return best


def _time_match(matcher, descriptions, repetitions: int, runs: int) -> float:
    """Best-of-``runs`` mean latency (us) of one full ``match`` invocation.

    Best-of, like :func:`_time_filter`: the minimum over runs converges
    to the true cost floor, which the 5 % tracing-overhead gate needs --
    a single-run mean wobbles by 15 % with host load alone.
    """
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(repetitions):
            for description in descriptions:
                matcher.match(description)
        elapsed = time.perf_counter() - start
        per_call = elapsed / (repetitions * len(descriptions)) * 1e6
        best = per_call if best is None else min(best, per_call)
    return best


def _funnel(matcher) -> dict:
    statistics = matcher.statistics
    return {
        "invocations": statistics.invocations,
        "considered": statistics.views_considered,
        "matches": statistics.matches,
        "substitutes": statistics.substitutes,
        "rejects_by_reason": dict(sorted(statistics.rejects_by_reason.items())),
    }


def _verify_modes(interned, reference, descriptions) -> tuple[dict, dict]:
    """Cross-check the two modes; returns both funnels (must be equal)."""
    for description in descriptions:
        fast = sorted(v.name for v in interned.filter_tree.candidates(description))
        slow = sorted(v.name for v in reference.filter_tree.candidates(description))
        if fast != slow:
            raise HotpathMismatchError(
                f"candidate sets diverge: interned {fast} vs reference {slow}"
            )
    interned.statistics.reset()
    reference.statistics.reset()
    for description in descriptions:
        interned.match(description)
        reference.match(description)
    interned_funnel = _funnel(interned)
    reference_funnel = _funnel(reference)
    if interned_funnel != reference_funnel:
        raise HotpathMismatchError(
            "matcher statistics diverge: "
            f"{interned_funnel} vs {reference_funnel}"
        )
    return interned_funnel, reference_funnel


def run_hotpath_benchmark(
    config: HotpathConfig | None = None, echo=print
) -> dict:
    """Run the sweep; returns the JSON-serializable report dict."""
    config = config or HotpathConfig()
    catalog = tpch_catalog()
    stats = synthetic_tpch_stats(scale=config.scale)
    generator = WorkloadGenerator(catalog, stats, seed=config.seed)
    views = generator.generate_views(max(config.view_counts))
    queries = [
        q.statement for q in generator.generate_queries(config.query_count)
    ]

    sizes = []
    calibrations = [_calibrate()]
    for view_count in config.view_counts:
        pool = views[:view_count]
        interned = _build_matcher(
            catalog, pool, use_interning=True, use_match_contexts=True
        )
        reference = _build_matcher(
            catalog, pool, use_interning=False, use_match_contexts=False
        )
        descriptions = [interned.describe_query(q) for q in queries]

        # Probe building is shared by both modes (cached per description);
        # report it separately so the filter numbers are pure search time.
        probe_start = time.perf_counter()
        for description in descriptions:
            QueryProbe.cached_of(description, interned.options)
        probe_us = (
            (time.perf_counter() - probe_start) / len(descriptions) * 1e6
        )

        funnel, _ = _verify_modes(interned, reference, descriptions)

        interned_filter = _time_filter(
            interned.filter_tree,
            descriptions,
            config.filter_repetitions,
            config.filter_runs,
        )
        reference_filter = _time_filter(
            reference.filter_tree,
            descriptions,
            config.filter_repetitions,
            config.filter_runs,
        )
        interned_match = _time_match(
            interned, descriptions, config.match_repetitions, config.match_runs
        )
        reference_match = _time_match(
            reference, descriptions, config.match_repetitions, config.match_runs
        )

        mean_candidates = sum(
            len(interned.filter_tree.candidates(d)) for d in descriptions
        ) / len(descriptions)
        entry = {
            "views": view_count,
            "queries": len(descriptions),
            "mean_candidates": round(mean_candidates, 2),
            "probe_build_us": round(probe_us, 2),
            "candidate_filter_us": {
                "interned": round(interned_filter, 2),
                "reference": round(reference_filter, 2),
                "speedup": round(reference_filter / interned_filter, 2),
            },
            "full_match_us": {
                "with_contexts": round(interned_match, 2),
                "rebuilt_contexts": round(reference_match, 2),
                "speedup": round(reference_match / interned_match, 2),
            },
            "funnel": funnel,
            "modes_identical": True,  # _verify_modes raised otherwise
        }
        sizes.append(entry)
        calibrations.append(_calibrate())
        if echo is not None:
            filt = entry["candidate_filter_us"]
            full = entry["full_match_us"]
            echo(
                f"{view_count:5d} views: filter {filt['interned']:8.1f}us "
                f"vs {filt['reference']:8.1f}us ({filt['speedup']:.2f}x)   "
                f"match {full['with_contexts']:8.1f}us vs "
                f"{full['rebuilt_contexts']:8.1f}us ({full['speedup']:.2f}x)"
            )

    return {
        "benchmark": "hotpath-matching",
        "config": dataclasses.asdict(config),
        "python": platform.python_version(),
        "calibration_us": round(min(calibrations), 2),
        "sizes": sizes,
    }


def check_against_baseline(
    report: dict, baseline: dict, echo=print
) -> list[str]:
    """Regression check for CI; returns a list of failure messages.

    Compares the interned candidate-filter latency at the largest view
    count measured by *both* reports; a fresh run more than
    ``REGRESSION_FACTOR`` times slower than the committed baseline fails.
    The interned-vs-reference speedup is reported but not gated (it is
    already asserted to be computed from identical results).
    """
    failures: list[str] = []
    fresh_by_views = {entry["views"]: entry for entry in report["sizes"]}
    base_by_views = {entry["views"]: entry for entry in baseline["sizes"]}
    shared = sorted(set(fresh_by_views) & set(base_by_views))
    if not shared:
        return [
            "no common view count between fresh run "
            f"{sorted(fresh_by_views)} and baseline {sorted(base_by_views)}"
        ]
    views = shared[-1]
    fresh_us = fresh_by_views[views]["candidate_filter_us"]["interned"]
    base_us = base_by_views[views]["candidate_filter_us"]["interned"]
    limit = base_us * REGRESSION_FACTOR
    if echo is not None:
        echo(
            f"baseline check at {views} views: fresh {fresh_us:.1f}us, "
            f"baseline {base_us:.1f}us, limit {limit:.1f}us"
        )
    if fresh_us > limit:
        failures.append(
            f"candidate filtering at {views} views regressed: "
            f"{fresh_us:.1f}us > {REGRESSION_FACTOR:g}x baseline "
            f"({base_us:.1f}us)"
        )
    return failures


def check_tracing_overhead(
    report: dict,
    baseline: dict,
    tolerance: float = TRACING_OVERHEAD_TOLERANCE,
    echo=print,
) -> list[str]:
    """Guard the null-tracer overhead promise; returns failure messages.

    The tracing instrumentation threaded through the filter tree,
    matcher, and optimizer must be a strict no-op when disabled. This
    compares the fresh run's interned candidate-filter and full-match
    latencies (measured with the default null tracer installed) against
    the committed baseline at the largest shared view count, failing on
    a more-than-``tolerance`` relative regression.

    Latencies are first normalized by each run's own ``calibration_us``
    (a fixed pure-Python workload timed in the same process), so
    host-speed and load differences between the baseline machine and
    the gating runner divide out -- without that, wall-clock swings of
    50 % between CI runs would drown a 5 % budget. Both reports must
    carry ``calibration_us``; regenerate the baseline with ``--output``
    if it predates the field.

    The default ``tolerance`` states the promise as measured on a quiet
    host. Shared runners show ~15 % normalized noise between load
    epochs even after calibration, so CI passes a wider
    ``--overhead-tolerance``; the gate then catches the realistic
    failure mode -- a dropped ``tracer.active`` guard putting trace
    construction on the hot path costs 2-10x, far outside any sane
    budget -- rather than the last few percent.
    """
    fresh_calibration = report.get("calibration_us")
    base_calibration = baseline.get("calibration_us")
    if not fresh_calibration or not base_calibration:
        return [
            "tracing-overhead check needs calibration_us in both reports; "
            "regenerate the baseline with bench-hotpath --output"
        ]
    failures: list[str] = []
    fresh_by_views = {entry["views"]: entry for entry in report["sizes"]}
    base_by_views = {entry["views"]: entry for entry in baseline["sizes"]}
    shared = sorted(set(fresh_by_views) & set(base_by_views))
    if not shared:
        return [
            "no common view count between fresh run "
            f"{sorted(fresh_by_views)} and baseline {sorted(base_by_views)}"
        ]
    views = shared[-1]
    checks = (
        (
            "candidate filtering",
            fresh_by_views[views]["candidate_filter_us"]["interned"],
            base_by_views[views]["candidate_filter_us"]["interned"],
        ),
        (
            "full matching",
            fresh_by_views[views]["full_match_us"]["with_contexts"],
            base_by_views[views]["full_match_us"]["with_contexts"],
        ),
    )
    for label, fresh_us, base_us in checks:
        fresh_ratio = fresh_us / fresh_calibration
        base_ratio = base_us / base_calibration
        limit = base_ratio * (1.0 + tolerance)
        if echo is not None:
            echo(
                f"tracing-overhead check ({label}, {views} views): "
                f"fresh {fresh_us:.1f}us/{fresh_ratio:.3f}x-cal, "
                f"baseline {base_us:.1f}us/{base_ratio:.3f}x-cal, "
                f"limit {limit:.3f}x-cal"
            )
        if fresh_ratio > limit:
            failures.append(
                f"{label} at {views} views exceeds the disabled-tracing "
                f"overhead budget: {fresh_ratio:.3f}x calibration > "
                f"baseline {base_ratio:.3f}x + {tolerance:.0%}"
            )
    return failures


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


__all__ = [
    "HotpathConfig",
    "HotpathMismatchError",
    "REGRESSION_FACTOR",
    "TRACING_OVERHEAD_TOLERANCE",
    "check_against_baseline",
    "check_tracing_overhead",
    "run_hotpath_benchmark",
    "write_report",
]
