"""Hot-path benchmark: bitset-interned filtering vs. the reference path.

Measures the two costs the interning work targets, before and after, on
the same registered view pool:

* **candidate filtering** -- one :meth:`FilterTree.candidates` call with a
  warm probe cache, comparing the bitset-interned tree against the plain
  frozenset reference tree (``use_interning=False``);
* **full matching** -- one :meth:`ViewMatcher.match` invocation, comparing
  registration-time :class:`ViewMatchContext` reuse against per-invocation
  context rebuilds (``use_match_contexts=False``).

Both comparisons run the *same* queries against the *same* views and the
engine verifies the two modes agree exactly: identical candidate sets per
query and identical matcher funnel statistics (candidates considered,
matches, substitutes, rejection reasons). A speed number from a mode that
returned different answers would be meaningless.

The report serializes to ``BENCH_matching.json``; the committed copy is
the regression baseline the CI smoke job checks new runs against.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from dataclasses import dataclass

from ..catalog import tpch_catalog
from ..core import ViewMatcher
from ..core.filtertree import QueryProbe
from ..core.interning import packed_backend_name
from ..core.matching import clear_template_cache, template_cache_info
from ..core.options import MatchOptions
from ..core.parallel import (
    default_worker_count,
    effective_cpu_count,
    fork_available,
)
from ..memsize import cache_memory_report, packed_table_bytes, view_memory_report
from ..sql.printer import statement_to_sql
from ..stats import synthetic_tpch_stats
from ..workload import WorkloadGenerator

# Latency regression tolerance for the CI gate: a fresh run may be at
# most this many times slower than the committed baseline at the largest
# measured view count (absorbs host-speed differences between the
# machine that committed the baseline and the CI runner).
REGRESSION_FACTOR = 2.0

# The single-pass probe compiler must beat the preserved reference
# pipeline by at least this factor at the gated view count. Both sides
# are timed in the same process on the same descriptions, so the gate is
# host-independent.
PROBE_SPEEDUP_FLOOR = 2.0

# Calibration-normalized regression budget for the fast probe-build
# latency against the committed baseline. Wider than the other
# normalized tolerances because the measurement itself is dispersed:
# the probe loop is short enough (tens of microseconds per pass) that
# scheduler interference moves the best-of result by up to ~2x between
# otherwise-identical runs on one host, and calibration does not track
# it (the calibration loop is an order of magnitude longer). The
# regression class this check exists for -- accidentally timing the
# multi-walk reference pipeline as the fast path -- costs 3x+, still
# far outside the budget; the in-process PROBE_SPEEDUP_FLOOR gate
# handles ratios host-independently.
PROBE_REGRESSION_TOLERANCE = 0.6

# Batched serving must beat the legacy sequential loop by this factor at
# the largest end-to-end point -- enforced where the fork fan-out has
# cores to use (>= this many); single-core hosts can only parallelize
# nominally, so there the gate degrades to "batching must not lose"
# (with measurement-noise headroom: both sides do the same matching
# work, so repeated runs land within a few percent of parity).
END_TO_END_SPEEDUP_FLOOR = 2.0
END_TO_END_MIN_CORES = 2
END_TO_END_SINGLE_CORE_FLOOR = 0.9

# The persistent serving pool must beat fork-per-batch rewriting on both
# sustained throughput and p99 latency (ratios > 1.0) where it has cores
# to use. A single-core host still skips the per-batch fork plus the
# full result pickle, so the pool usually wins there too, but scheduler
# noise between two process fleets on one core is large -- the gate
# degrades to "not meaningfully worse" with headroom.
POOL_MIN_CORES = 2
POOL_RATIO_FLOOR = 1.0
POOL_SINGLE_CORE_RATIO_FLOOR = 0.8
# Ratio gates only apply to runs at a real catalog size: below this many
# views the batches are so small that per-request IPC overhead and one
# mid-load fleet swap dominate the measurement, and the ratios are
# scheduler noise. Smoke-sized runs still gate on zero failed requests.
POOL_GATE_MIN_VIEWS = 500

# Tolerance for the tracing-overhead guard: with the null tracer
# installed (tracing disabled), the instrumented hot path may be at most
# this fraction slower than the committed baseline. Much tighter than
# REGRESSION_FACTOR because it polices a specific promise -- disabled
# tracing costs one contextvar read per stage -- rather than host speed.
TRACING_OVERHEAD_TOLERANCE = 0.05

# Budget for the always-on telemetry pipeline: serving the same workload
# with the workload recorder + SLO tracker attached may be at most this
# fraction slower than without them. Measured as an on/off ratio in one
# process, so host speed divides out by construction (no calibration
# needed); the cache is disabled on both sides so the comparison times
# real rewrite work rather than journal writes against cache probes.
TELEMETRY_OVERHEAD_TOLERANCE = 0.25

# Vectorized-verification gate: with the columnar pre-verifier and the
# compensation-template cache enabled (the defaults), the
# calibration-normalized full-match latency at the gated view count
# must be at least VERIFICATION_SPEEDUP_FLOOR times better than the
# committed pre-preverifier baseline (with_contexts 1628.98us against
# calibration_us 1228.25 on the baseline host). The floor only applies
# on the numpy packed backend -- the pure-python sweep preserves
# correctness and byte layout, not the vectorized constant factor.
VERIFICATION_GATE_VIEWS = 10000
VERIFICATION_SPEEDUP_FLOOR = 2.0
VERIFICATION_BASELINE_XCAL = 1628.98 / 1228.25

# Resident-footprint budget for the memory gate: amortized deep-walk
# bytes per registered view (filter tree + descriptions + match
# contexts, shared catalog/statistics excluded). Calibration-free --
# bytes don't depend on host speed -- and sized with ~65 % headroom over
# the ~29 KB/view measured at 10k views, so it catches a structural
# regression (a dropped ``__slots__``, an accidentally per-view copy of
# shared state) rather than getsizeof jitter between interpreters.
MEMORY_BYTES_PER_VIEW_BUDGET = 48 * 1024


@dataclass(frozen=True)
class HotpathConfig:
    """Benchmark sizes. The defaults mirror the Section 5 sweep shape."""

    view_counts: tuple[int, ...] = (100, 500, 1000, 10000)
    query_count: int = 25
    seed: int = 42
    scale: float = 0.5
    filter_repetitions: int = 40  # candidate-filter passes per timing run
    filter_runs: int = 3          # timing runs (best-of)
    match_repetitions: int = 3    # full-match passes per timing run
    match_runs: int = 3           # full-match timing runs (best-of)
    probe_repetitions: int = 20   # probe-build passes per timing run
    probe_runs: int = 3           # probe-build timing runs (best-of)
    # End-to-end serving sweep: legacy sequential loop vs. batched
    # rewrite_many through the full ViewServer stack. () disables it.
    end_to_end_view_counts: tuple[int, ...] = (1000, 10000)
    end_to_end_runs: int = 3
    # Maintenance throughput point: rows/sec applied incrementally
    # through the CDC change log to this many registered rollup views,
    # against a full-recompute estimate extrapolated from a timed
    # sample. 0 disables the section. The smoke config keeps the same
    # values, so the CI baseline gate compares like-for-like work.
    maintenance_view_count: int = 1000
    maintenance_scale: float = 0.002
    maintenance_data_seed: int = 11
    maintenance_insert_batches: int = 20
    maintenance_batch_rows: int = 5
    maintenance_recompute_sample: int = 20
    # Catalog-scale point: register this many views through the packed
    # interned path only (no reference tree -- it would take minutes and
    # prove nothing new) and time candidate filtering, demonstrating the
    # per-level sweeps keep python-level work sublinear in catalog size.
    # 0 disables the section (the smoke config: a 100k registration is
    # a minutes-scale build, not a CI smoke).
    catalog_scale_views: int = 100000
    catalog_scale_repetitions: int = 10
    catalog_scale_runs: int = 2
    # Sustained-load serving-pool point: the persistent worker pool vs.
    # fork-per-batch ``rewrite_many`` over the same distinct-query
    # schedule at this many views, with live epoch swaps injected during
    # the pool run. 0 disables the section. The smoke config shrinks it
    # (the committed-baseline comparison then skips on the view-count
    # mismatch; the absolute pool-vs-fork gate still applies).
    pool_views: int = 1000
    pool_queries: int = 25
    pool_passes: int = 8
    pool_workers: int = 2
    pool_scale: float = 0.5
    pool_churn_cycles: int = 2
    # Telemetry-pipeline overhead point: the same workload served with
    # and without a workload recorder + SLO tracker attached, at this
    # many registered views. 0 disables the section. Cheap enough to
    # stay on in smoke, which is where the CI gate reads it.
    telemetry_overhead_views: int = 200
    telemetry_overhead_runs: int = 3
    # Memory accounting (deep-walk bytes per view at the largest
    # view_counts entry, plus rewrite-cache bytes per entry from a small
    # serving run). Cheap enough to stay on in smoke.
    measure_memory: bool = True

    @classmethod
    def smoke(cls) -> "HotpathConfig":
        """CI-sized: still the gated points (1000 views for filtering and
        probe building, 10000 for end-to-end serving), fewer queries.

        The leading 100-view size is a warm-up, not a gated point: the
        committed baseline's 1000-view numbers come from the full sweep,
        where the adaptive interpreter and allocator have been through
        two smaller sizes before the 1000-view timings run. A smoke run
        that starts cold at 1000 views measures the same code ~15-20%
        slower, which the normalized baseline tolerances cannot absorb on a
        noisy runner -- so the smoke sweep reproduces the full sweep's
        warm-up shape instead of comparing cold against warm.
        """
        return cls(
            view_counts=(100, 1000),
            query_count=8,
            filter_repetitions=10,
            filter_runs=2,
            match_repetitions=1,
            match_runs=2,
            # Probe building is the tightest baseline check; best-of-2
            # wobbles ~30% run-to-run on a busy runner, so the smoke
            # config samples it harder than the full sweep -- the cost
            # is milliseconds.
            probe_repetitions=12,
            probe_runs=5,
            end_to_end_view_counts=(10000,),
            end_to_end_runs=2,
            catalog_scale_views=0,
            pool_views=40,
            pool_queries=8,
            pool_passes=4,
            pool_scale=0.1,
            pool_churn_cycles=1,
        )


class HotpathMismatchError(AssertionError):
    """The before/after modes disagreed on candidates or match results."""


def _build_matcher(
    catalog,
    views,
    *,
    use_interning,
    use_match_contexts,
    use_preverifier=True,
    use_template_cache=True,
):
    matcher = ViewMatcher(
        catalog,
        use_interning=use_interning,
        use_match_contexts=use_match_contexts,
        use_preverifier=use_preverifier,
        use_template_cache=use_template_cache,
    )
    for name, view in views:
        matcher.register_view(name, view.statement)
    return matcher


def _calibrate(runs: int = 5) -> float:
    """Best-of timing (us) of a fixed pure-Python reference workload.

    The tracing-overhead gate normalizes hot-path latencies by this
    number before comparing against the committed baseline: both are
    measured in the same process, so host-speed differences between the
    baseline machine and the CI runner cancel out. The workload mixes
    dict lookups, set sizing, and integer arithmetic -- the same
    interpreter operations the filter tree and matcher spend their time
    on. The report takes the minimum over samples interleaved with the
    hot-path timings, so the calibration floor is measured under the
    same load windows as the latencies it normalizes.
    """
    payload = list(range(256))
    table = {i: frozenset((i, i + 1, i + 2)) for i in payload}
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        acc = 0
        for _ in range(100):
            for i in payload:
                acc += len(table[i]) + (i & 7)
        elapsed = (time.perf_counter() - start) * 1e6
        best = elapsed if best is None else min(best, elapsed)
    assert acc >= 0  # keep the loop observable
    return best


def _time_filter(tree, descriptions, repetitions: int, runs: int) -> float:
    """Best-of-``runs`` mean latency (us) of one ``candidates`` call."""
    for description in descriptions:  # warm probe + binding caches
        tree.candidates(description)
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(repetitions):
            for description in descriptions:
                tree.candidates(description)
        elapsed = time.perf_counter() - start
        per_call = elapsed / (repetitions * len(descriptions)) * 1e6
        best = per_call if best is None else min(best, per_call)
    return best


def _time_match(matcher, descriptions, repetitions: int, runs: int) -> float:
    """Best-of-``runs`` mean latency (us) of one full ``match`` invocation.

    Best-of, like :func:`_time_filter`: the minimum over runs converges
    to the true cost floor, which the 5 % tracing-overhead gate needs --
    a single-run mean wobbles by 15 % with host load alone.
    """
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(repetitions):
            for description in descriptions:
                matcher.match(description)
        elapsed = time.perf_counter() - start
        per_call = elapsed / (repetitions * len(descriptions)) * 1e6
        best = per_call if best is None else min(best, per_call)
    return best


def _probe_fields(probe) -> dict:
    """A probe's content, minus its per-interner binding memo."""
    fields = dataclasses.asdict(probe)
    fields.pop("_bindings", None)
    return fields


def _time_probe(descriptions, options, builder, repetitions, runs) -> float:
    """Best-of-``runs`` mean latency (us) of one probe construction.

    ``builder`` is :meth:`QueryProbe.of` (the fused single-pass compiler)
    or :meth:`QueryProbe.of_reference` (the preserved multi-walk
    pipeline). A warm-up pass populates the description-level memo fields
    first so both builders are timed at their steady state.
    """
    for description in descriptions:
        builder(description, options)
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(repetitions):
            for description in descriptions:
                builder(description, options)
        elapsed = time.perf_counter() - start
        per_call = elapsed / (repetitions * len(descriptions)) * 1e6
        best = per_call if best is None else min(best, per_call)
    return best


def _verify_probes(descriptions, options) -> None:
    """The fast and reference probe compilers must agree exactly."""
    for description in descriptions:
        fast = _probe_fields(QueryProbe.of(description, options))
        slow = _probe_fields(QueryProbe.of_reference(description, options))
        if fast != slow:
            raise HotpathMismatchError(
                "fast and reference probes diverge for "
                f"{description.tables}: {fast} vs {slow}"
            )


def _time_serving(serve_batch, runs: int) -> float:
    """Best-of-``runs`` wall-clock (ms) of serving the whole batch once."""
    best = None
    for _ in range(runs):
        start = time.perf_counter()
        serve_batch()
        elapsed = (time.perf_counter() - start) * 1e3
        best = elapsed if best is None else min(best, elapsed)
    return best


def _run_end_to_end(config, catalog, stats, views, queries, echo) -> list[dict]:
    """Serve the workload end to end: legacy sequential vs. batched.

    The legacy mode reproduces the pre-fusion serving configuration --
    multi-walk probe compilation (``use_fast_probe=False``), per-use
    block descriptions (``share_descriptions=False``), one ``serve`` call
    per query. The batched mode is the current default stack: single-pass
    probes, shared descriptions, sharded snapshots, and
    ``rewrite_many``, optionally fanning batch misses out across forked
    workers. The rewrite cache is disabled on both sides so every timing
    run measures real rewrite work, and the modes' results are verified
    identical before anything is timed.
    """
    from ..optimizer.optimizer import OptimizerConfig
    from ..service import ViewServer

    sqls = [statement_to_sql(query) for query in queries]
    # Affinity-aware: on a cpuset-restricted runner the fan-out gate must
    # key off the cores this process can actually use, not the host's.
    cpu_count = effective_cpu_count()
    workers = default_worker_count()
    measure_parallel = fork_available() and cpu_count >= END_TO_END_MIN_CORES
    entries: list[dict] = []
    for view_count in config.end_to_end_view_counts:
        definitions = [
            (name, view.statement) for name, view in views[:view_count]
        ]
        with ViewServer(
            catalog,
            stats,
            options=MatchOptions(use_fast_probe=False),
            optimizer_config=OptimizerConfig(share_descriptions=False),
            cache_enabled=False,
            workers=1,
        ) as legacy, ViewServer(
            catalog,
            stats,
            cache_enabled=False,
            workers=1,
            shard_count=4,
        ) as batched:
            legacy.register_views(definitions)
            batched.register_views(definitions)

            legacy_results = [legacy.serve(sql) for sql in sqls]
            batched_results = batched.rewrite_many(sqls)
            for a, b in zip(legacy_results, batched_results):
                if (a.ok, a.view_names) != (b.ok, b.view_names):
                    raise HotpathMismatchError(
                        f"end-to-end modes diverge on {a.sql!r}: "
                        f"legacy {a.view_names} vs batched {b.view_names}"
                    )

            legacy_ms = _time_serving(
                lambda: [legacy.serve(sql) for sql in sqls],
                config.end_to_end_runs,
            )
            batched_ms = _time_serving(
                lambda: batched.rewrite_many(sqls), config.end_to_end_runs
            )
            parallel_ms = None
            if measure_parallel:
                parallel_ms = _time_serving(
                    lambda: batched.rewrite_many(sqls, parallel=workers),
                    config.end_to_end_runs,
                )
        best_ms = min(batched_ms, parallel_ms or batched_ms)
        entry = {
            "views": view_count,
            "queries": len(sqls),
            "cpu_count": cpu_count,
            "workers": workers if parallel_ms is not None else 1,
            "legacy_sequential_ms": round(legacy_ms, 2),
            "batched_ms": round(batched_ms, 2),
            "batched_parallel_ms": (
                round(parallel_ms, 2) if parallel_ms is not None else None
            ),
            "speedup": round(legacy_ms / best_ms, 2),
            "modes_identical": True,  # verified above
        }
        entries.append(entry)
        if echo is not None:
            parallel = (
                f"parallel {parallel_ms:8.1f}ms"
                if parallel_ms is not None
                else "parallel     (skipped)"
            )
            echo(
                f"{view_count:5d} views end-to-end: legacy "
                f"{legacy_ms:8.1f}ms   batched {batched_ms:8.1f}ms   "
                f"{parallel}   ({entry['speedup']:.2f}x)"
            )
    return entries


def _funnel(matcher) -> dict:
    statistics = matcher.statistics
    return {
        "invocations": statistics.invocations,
        "considered": statistics.views_considered,
        "matches": statistics.matches,
        "substitutes": statistics.substitutes,
        "rejects_by_reason": dict(sorted(statistics.rejects_by_reason.items())),
    }


def _verify_modes(interned, reference, descriptions) -> tuple[dict, dict]:
    """Cross-check the two modes; returns both funnels (must be equal)."""
    for description in descriptions:
        fast = sorted(v.name for v in interned.filter_tree.candidates(description))
        slow = sorted(v.name for v in reference.filter_tree.candidates(description))
        if fast != slow:
            raise HotpathMismatchError(
                f"candidate sets diverge: interned {fast} vs reference {slow}"
            )
    interned.statistics.reset()
    reference.statistics.reset()
    for description in descriptions:
        interned.match(description)
        reference.match(description)
    interned_funnel = _funnel(interned)
    reference_funnel = _funnel(reference)
    if interned_funnel != reference_funnel:
        raise HotpathMismatchError(
            "matcher statistics diverge: "
            f"{interned_funnel} vs {reference_funnel}"
        )
    return interned_funnel, reference_funnel


def _verification_stats(matcher, descriptions) -> dict:
    """One instrumented double-pass over the workload.

    The first pass (cold template cache) yields the per-pass funnel --
    candidates considered and pre-verifier short-circuits; the second
    pass counts how many of its matches replayed a cached compensation
    template instead of re-deriving residuals.
    """
    matcher.statistics.reset()
    clear_template_cache()
    for description in descriptions:
        matcher.match(description)
    first = template_cache_info()
    rejects = matcher.statistics.preverifier_rejects
    considered = matcher.statistics.views_considered
    for description in descriptions:
        matcher.match(description)
    second = template_cache_info()
    return {
        "considered_per_pass": considered,
        "preverifier_rejects_per_pass": rejects,
        "template_stores_first_pass": first["stores"],
        "template_replays_second_pass": second["hits"] - first["hits"],
    }


def _verification_entry(
    view_count,
    descriptions,
    enabled,
    enabled_us,
    disabled_us,
    mean_candidates,
) -> dict:
    """One row of the ``verification`` section."""
    per_candidate = max(mean_candidates, 1e-9)
    entry = {
        "views": view_count,
        "queries": len(descriptions),
        "mean_candidates": round(mean_candidates, 2),
        "full_match_us": {
            "enabled": round(enabled_us, 2),
            "disabled": (
                round(disabled_us, 2) if disabled_us is not None else None
            ),
            "speedup": (
                round(disabled_us / enabled_us, 2)
                if disabled_us is not None
                else None
            ),
        },
        "per_candidate_us": {
            "enabled": round(enabled_us / per_candidate, 2),
            "disabled": (
                round(disabled_us / per_candidate, 2)
                if disabled_us is not None
                else None
            ),
        },
    }
    entry.update(_verification_stats(enabled, descriptions))
    return entry


def _result_key(result) -> tuple:
    """A :class:`MatchResult`'s observable content, matcher-independent.

    ``result.view`` compares by identity, and the enabled and disabled
    matchers each registered their own description objects -- the view's
    *name* plus every user-visible outcome field is the honest equality.
    The bookkeeping ``stage`` deliberately stays out: a reject may
    short-circuit at a different stage yet must mean the same thing.
    """
    return (
        result.view.name,
        result.substitute,
        result.reject_reason,
        result.reject_detail,
        result.compensating_equalities,
        result.compensating_ranges,
        result.compensating_residuals,
        result.regrouped,
        result.eliminated_tables,
        result.backjoined_tables,
    )


def _verify_verification_modes(enabled, disabled, descriptions) -> None:
    """Pre-verifier/template-cache on and off must agree result-for-result.

    Compares the full per-candidate :class:`MatchResult` lists (reject
    reason, detail, and compensated substitute all participate), so a
    pre-verifier verdict that diverges from ``match_view`` by even a
    detail string fails the whole bench.
    """
    for description in descriptions:
        fast = [_result_key(r) for r in enabled.match(description)]
        slow = [_result_key(r) for r in disabled.match(description)]
        if fast != slow:
            diverging = [
                (a, b) for a, b in zip(fast, slow) if a != b
            ] or [(fast, slow)]
            raise HotpathMismatchError(
                "verification modes diverge for query over "
                f"{sorted(description.tables)}: {diverging[0]}"
            )


def _maintenance_view_sql(index: int, group_columns, bounds) -> str:
    """The ``index``-th distinct single-table rollup over ``orders``."""
    group = group_columns[index % len(group_columns)]
    bound = bounds[(index // len(group_columns)) % len(bounds)]
    return (
        f"select {group} as g, sum(o_totalprice) as total, "
        f"count_big(*) as cnt from orders "
        f"where o_custkey <= {bound} group by {group}"
    )


def _run_maintenance(config: HotpathConfig, catalog, echo) -> dict:
    """Incremental-vs-recompute maintenance throughput at ``n`` views.

    Registers ``maintenance_view_count`` distinct rollup views over
    ``orders`` through the CDC pipeline, streams
    ``maintenance_insert_batches`` insert batches through the change
    log, and times one full drain: the applier computes each view's
    delta against its shadow base state and folds it into the stored
    rows. The alternative -- recomputing every view from scratch per
    batch -- is estimated by timing ``maintenance_recompute_sample``
    full view executions and extrapolating, which is exactly what the
    paper's Section 4 maintenance discussion trades against.
    """
    import random

    from ..cdc import CdcPipeline
    from ..datagen import generate_tpch
    from ..engine.executor import execute

    database = generate_tpch(
        scale=config.maintenance_scale, seed=config.maintenance_data_seed
    )
    orders = database.relation("orders")
    custkeys = sorted({row[1] for row in orders.rows})
    group_columns = (
        "o_custkey", "o_clerk", "o_orderstatus",
        "o_orderpriority", "o_shippriority",
    )
    per_group = -(-config.maintenance_view_count // len(group_columns))
    step = max(len(custkeys) // (per_group + 1), 1)
    bounds = [custkeys[min((i + 1) * step, len(custkeys) - 1)]
              for i in range(per_group)]

    pipeline = CdcPipeline(catalog, database)
    statements = [
        catalog.bind_sql(_maintenance_view_sql(i, group_columns, bounds))
        for i in range(config.maintenance_view_count)
    ]
    start = time.perf_counter()
    for index, statement in enumerate(statements):
        pipeline.register_view(f"bench_mv_{index}", statement)
    register_seconds = time.perf_counter() - start

    # Insert batches: duplicates of sampled orders rows with fresh keys,
    # appended to the change log via the transactional-outbox path.
    rng = random.Random(config.seed)
    key_position = orders.column_position("o_orderkey")
    next_key = max(row[key_position] for row in orders.rows) + 1
    batches = []
    for _ in range(config.maintenance_insert_batches):
        batch = []
        for _ in range(config.maintenance_batch_rows):
            template = list(rng.choice(orders.rows))
            template[key_position] = next_key
            next_key += 1
            batch.append(tuple(template))
        batches.append(batch)
    for batch in batches:
        pipeline.insert("orders", batch)

    start = time.perf_counter()
    pipeline.drain()
    incremental_seconds = time.perf_counter() - start
    rows_applied = sum(len(batch) for batch in batches)
    stats = pipeline.stats.snapshot()

    # Full-recompute estimate: time a sample of complete view
    # executions against the live table, extrapolate to the pool.
    sample_step = max(
        len(statements) // config.maintenance_recompute_sample, 1
    )
    sample = statements[::sample_step][:config.maintenance_recompute_sample]
    start = time.perf_counter()
    for statement in sample:
        execute(statement, database)
    sample_seconds = time.perf_counter() - start
    recompute_cycle_seconds = (
        sample_seconds / len(sample) * len(statements)
    )
    per_batch_seconds = incremental_seconds / len(batches)
    section = {
        "views": config.maintenance_view_count,
        "base_rows": len(orders.rows),
        "insert_batches": len(batches),
        "rows_applied": rows_applied,
        "register_seconds": round(register_seconds, 3),
        "incremental_seconds": round(incremental_seconds, 3),
        "incremental_rows_per_second": round(
            rows_applied / incremental_seconds, 1
        ),
        "recompute_sample": len(sample),
        "recompute_cycle_seconds": round(recompute_cycle_seconds, 3),
        # One insert batch kept every view fresh in per_batch_seconds;
        # the recompute alternative pays the full cycle per batch.
        "speedup_vs_recompute": round(
            recompute_cycle_seconds / per_batch_seconds, 1
        ),
        "applier": stats,
    }
    if echo is not None:
        echo(
            f"maintenance at {section['views']} views: "
            f"{section['incremental_rows_per_second']:,.0f} rows/s "
            f"incremental ({incremental_seconds:.2f}s for "
            f"{rows_applied} rows), full recompute cycle est. "
            f"{recompute_cycle_seconds:.2f}s "
            f"({section['speedup_vs_recompute']:.0f}x per batch)"
        )
    return section


def _environment() -> dict:
    """Host/backend facts stamped into the report.

    ``cpu_count`` and the numpy presence/version matter for interpreting
    any entry: the end-to-end fan-out gate keys off the core count, and
    the candidate-filter numbers differ between the ``packed-numpy`` and
    ``packed-pure`` sweep backends.
    """
    try:
        import numpy  # noqa: F401 -- presence probe, may be absent

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        # ``cpu_count`` is the *usable* core count (cpuset/affinity
        # aware) -- the one every parallel gate keys off; the host's
        # logical count is kept alongside for provenance.
        "cpu_count": effective_cpu_count(),
        "cpu_count_logical": os.cpu_count() or 1,
        "numpy": numpy_version,
        "packed_backend": packed_backend_name(),
    }


def _measure_cache_memory(catalog, stats, views, queries) -> dict:
    """Bytes-per-entry of the rewrite cache after a small serving run.

    Registers a modest view pool and serves each workload query once, so
    every entry is a real ``OptimizationResult`` over this catalog; the
    per-entry figure barely depends on the pool size, so 200 views keep
    this cheap inside the bench.
    """
    from ..service.server import ViewServer

    pool = views[: min(200, len(views))]
    server = ViewServer(catalog, stats, workers=1)
    try:
        server.register_views(
            (name, generated.statement) for name, generated in pool
        )
        for statement in queries:
            server.serve(statement_to_sql(statement))
        report = cache_memory_report(server.cache, exclude=(catalog, stats))
    finally:
        server.close()
    report["views_registered"] = len(pool)
    return report


def _measure_telemetry_overhead(
    config, catalog, stats, views, queries, echo
) -> dict | None:
    """On/off cost of the workload recorder + SLO tracker; self-normalized.

    Serves the same query list through two identically configured
    servers -- one plain, one with an SLO tracker and a journaling
    recorder attached -- and reports the relative slowdown. Both sides
    carry the always-on matcher sketches (those are the pipeline's
    baseline, gated implicitly by the tracing-overhead check), so the
    fraction isolates the per-request observation cost the telemetry
    subsystem adds: one SLO ring update and one JSON line per request.
    The ratio is measured within one process, so no calibration
    normalization is needed.
    """
    if not config.telemetry_overhead_views:
        return None
    import tempfile

    from ..obs.recorder import WorkloadRecorder
    from ..obs.slo import SloObjectives
    from ..service import ViewServer

    pool = views[: min(config.telemetry_overhead_views, len(views))]
    definitions = [(name, view.statement) for name, view in pool]
    sqls = [statement_to_sql(query) for query in queries]

    def serve_time(server) -> float:
        for sql in sqls:  # warm memos outside the timed runs
            server.serve(sql)
        best = float("inf")
        for _ in range(config.telemetry_overhead_runs):
            started = time.perf_counter()
            for sql in sqls:
                server.serve(sql)
            best = min(best, time.perf_counter() - started)
        return best * 1000.0

    with ViewServer(
        catalog, stats, workers=1, cache_enabled=False
    ) as plain:
        plain.register_views(definitions)
        off_ms = serve_time(plain)
    with tempfile.TemporaryDirectory() as tmpdir, ViewServer(
        catalog,
        stats,
        workers=1,
        cache_enabled=False,
        slo=SloObjectives(),
    ) as instrumented:
        instrumented.register_views(definitions)
        recorder = WorkloadRecorder(os.path.join(tmpdir, "journal.jsonl"))
        instrumented.attach_recorder(recorder)
        on_ms = serve_time(instrumented)
        recorder.close()
    overhead = on_ms / off_ms - 1.0
    section = {
        "views": len(pool),
        "queries": len(sqls),
        "runs": config.telemetry_overhead_runs,
        "telemetry_off_ms": round(off_ms, 2),
        "telemetry_on_ms": round(on_ms, 2),
        "overhead_fraction": round(overhead, 4),
    }
    if echo is not None:
        echo(
            f"telemetry overhead at {len(pool)} views: "
            f"off {off_ms:8.1f}ms   on {on_ms:8.1f}ms   "
            f"({overhead:+.1%})"
        )
    return section


def _run_pool_bench(config: "HotpathConfig", echo) -> dict:
    """The sustained-load serving-pool point (see ``service.loadgen``)."""
    from ..service.loadgen import PoolBenchConfig, run_pool_benchmark

    bench = PoolBenchConfig(
        views=config.pool_views,
        queries=config.pool_queries,
        passes=config.pool_passes,
        workers=config.pool_workers,
        seed=config.seed,
        scale=config.pool_scale,
        churn_cycles=config.pool_churn_cycles,
    )
    report = run_pool_benchmark(bench, echo=None)
    if echo is not None:
        echo(
            f"serving pool at {bench.views} views: "
            f"{report.pool.throughput:.0f}/s vs "
            f"{report.fork_batch.throughput:.0f}/s fork-per-batch "
            f"({report.throughput_ratio:.2f}x), p99 "
            f"{report.pool.percentile(0.99) * 1e3:.0f}ms vs "
            f"{report.fork_batch.percentile(0.99) * 1e3:.0f}ms "
            f"({report.p99_ratio:.2f}x), {report.swaps} live swaps"
        )
    return report.to_dict()


def _run_catalog_scale(
    config, catalog, stats, queries, sizes, verification, echo
) -> dict | None:
    """The 100k-view point: packed/interned path only.

    A fresh generator with the config seed reproduces the main pool as a
    prefix and extends it to ``catalog_scale_views``. Only the interned
    matcher is built (the reference tree at this size would dominate the
    whole bench); correctness of the packed path against the reference is
    pinned at the sweep sizes and by the property tests, so this point
    measures scale, not equivalence. ``filter_scaleup`` relates the
    per-query latency to the largest sweep entry: sublinear python-level
    work shows up as a scaleup well under the view-count ratio.
    """
    target = config.catalog_scale_views
    if not target:
        return None
    generator = WorkloadGenerator(catalog, stats, seed=config.seed)
    started = time.perf_counter()
    pool = generator.generate_views(target)
    generate_seconds = time.perf_counter() - started
    started = time.perf_counter()
    matcher = _build_matcher(
        catalog, pool, use_interning=True, use_match_contexts=True
    )
    register_seconds = time.perf_counter() - started
    descriptions = [matcher.describe_query(q) for q in queries]
    filter_us = _time_filter(
        matcher.filter_tree,
        descriptions,
        config.catalog_scale_repetitions,
        config.catalog_scale_runs,
    )
    mean_candidates = sum(
        len(matcher.filter_tree.candidates(d)) for d in descriptions
    ) / len(descriptions)
    # Verification point at catalog scale: enabled path only -- a second
    # 100k registration for the disabled comparison would double the
    # section's build time to prove a delta already pinned (with full
    # result-equality checks) at every ``view_counts`` size.
    match_us = _time_match(matcher, descriptions, 1, config.catalog_scale_runs)
    scale_verification = _verification_entry(
        target, descriptions, matcher, match_us, None, mean_candidates
    )
    verification.append(scale_verification)
    entry = {
        "views": target,
        "generate_seconds": round(generate_seconds, 2),
        "register_seconds": round(register_seconds, 2),
        "registrations_per_second": round(target / register_seconds, 1),
        "candidate_filter_us": round(filter_us, 2),
        "ns_per_view": round(filter_us * 1000.0 / target, 3),
        "mean_candidates": round(mean_candidates, 2),
        "packed_table_bytes": packed_table_bytes(matcher.filter_tree),
    }
    base = max(sizes, key=lambda item: item["views"]) if sizes else None
    if base is not None:
        base_us = base["candidate_filter_us"]["interned"]
        entry["filter_scaleup"] = {
            "vs_views": base["views"],
            "view_ratio": round(target / base["views"], 2),
            "latency_ratio": round(filter_us / base_us, 2),
        }
    if echo is not None:
        scaleup = entry.get("filter_scaleup")
        note = (
            f"   {scaleup['latency_ratio']:.2f}x latency for "
            f"{scaleup['view_ratio']:.0f}x views"
            if scaleup
            else ""
        )
        echo(
            f"{target:6d} views (catalog scale): filter "
            f"{filter_us:8.1f}us ({entry['ns_per_view']:.2f}ns/view)   "
            f"match {match_us:8.1f}us "
            f"({scale_verification['preverifier_rejects_per_pass']} "
            f"pre-verified rejects)   "
            f"register {register_seconds:.1f}s{note}"
        )
    return entry


def run_hotpath_benchmark(
    config: HotpathConfig | None = None, echo=print
) -> dict:
    """Run the sweep; returns the JSON-serializable report dict."""
    config = config or HotpathConfig()
    catalog = tpch_catalog()
    stats = synthetic_tpch_stats(scale=config.scale)
    generator = WorkloadGenerator(catalog, stats, seed=config.seed)
    views = generator.generate_views(
        max(config.view_counts + config.end_to_end_view_counts)
    )
    queries = [
        q.statement for q in generator.generate_queries(config.query_count)
    ]

    sizes = []
    verification = []
    memory_views = None
    calibrations = [_calibrate()]
    for view_count in config.view_counts:
        pool = views[:view_count]
        interned = _build_matcher(
            catalog, pool, use_interning=True, use_match_contexts=True
        )
        reference = _build_matcher(
            catalog, pool, use_interning=False, use_match_contexts=False
        )
        descriptions = [interned.describe_query(q) for q in queries]

        # Probe compilation, timed both ways on the same descriptions:
        # the fused single-pass compiler against the preserved multi-walk
        # reference pipeline (verified to produce identical probes).
        _verify_probes(descriptions, interned.options)
        probe_fast = _time_probe(
            descriptions,
            interned.options,
            QueryProbe.of,
            config.probe_repetitions,
            config.probe_runs,
        )
        probe_reference = _time_probe(
            descriptions,
            interned.options,
            QueryProbe.of_reference,
            config.probe_repetitions,
            config.probe_runs,
        )

        funnel, _ = _verify_modes(interned, reference, descriptions)

        interned_filter = _time_filter(
            interned.filter_tree,
            descriptions,
            config.filter_repetitions,
            config.filter_runs,
        )
        reference_filter = _time_filter(
            reference.filter_tree,
            descriptions,
            config.filter_repetitions,
            config.filter_runs,
        )
        interned_match = _time_match(
            interned, descriptions, config.match_repetitions, config.match_runs
        )
        reference_match = _time_match(
            reference, descriptions, config.match_repetitions, config.match_runs
        )

        # Same interned configuration minus the vectorized verification
        # stack: no columnar pre-verifier, no compensation-template
        # cache. The delta against ``interned`` is what the
        # ``verification`` section measures. Built only now, with the
        # reference matcher released first, so both verification modes
        # are timed against a two-matcher heap -- the same allocation
        # profile the committed pre-verification baseline was measured
        # under (a third resident 10k-view matcher inflates every timed
        # loop by ~15% through cache and allocator pressure alone).
        reference = None
        plain = _build_matcher(
            catalog,
            pool,
            use_interning=True,
            use_match_contexts=True,
            use_preverifier=False,
            use_template_cache=False,
        )
        _verify_verification_modes(interned, plain, descriptions)
        plain_match = _time_match(
            plain, descriptions, config.match_repetitions, config.match_runs
        )

        mean_candidates = sum(
            len(interned.filter_tree.candidates(d)) for d in descriptions
        ) / len(descriptions)
        entry = {
            "views": view_count,
            "queries": len(descriptions),
            "mean_candidates": round(mean_candidates, 2),
            "probe_build_us": {
                "fast": round(probe_fast, 2),
                "reference": round(probe_reference, 2),
                "speedup": round(probe_reference / probe_fast, 2),
            },
            "candidate_filter_us": {
                "interned": round(interned_filter, 2),
                "reference": round(reference_filter, 2),
                "speedup": round(reference_filter / interned_filter, 2),
            },
            "full_match_us": {
                "with_contexts": round(interned_match, 2),
                "rebuilt_contexts": round(reference_match, 2),
                "speedup": round(reference_match / interned_match, 2),
            },
            "funnel": funnel,
            "modes_identical": True,  # _verify_modes raised otherwise
        }
        sizes.append(entry)
        verification_entry = _verification_entry(
            view_count,
            descriptions,
            interned,
            interned_match,
            plain_match,
            mean_candidates,
        )
        # _verify_verification_modes raised otherwise.
        verification_entry["modes_identical"] = True
        verification.append(verification_entry)
        if config.measure_memory and view_count == max(config.view_counts):
            memory_views = view_memory_report(
                interned.filter_tree,
                exclude=(catalog, stats, interned.options),
            )
        calibrations.append(_calibrate())
        if echo is not None:
            probe = entry["probe_build_us"]
            filt = entry["candidate_filter_us"]
            full = entry["full_match_us"]
            echo(
                f"{view_count:5d} views: probe {probe['fast']:7.1f}us vs "
                f"{probe['reference']:7.1f}us ({probe['speedup']:.2f}x)   "
                f"filter {filt['interned']:8.1f}us "
                f"vs {filt['reference']:8.1f}us ({filt['speedup']:.2f}x)   "
                f"match {full['with_contexts']:8.1f}us vs "
                f"{full['rebuilt_contexts']:8.1f}us ({full['speedup']:.2f}x)"
            )
            verify_us = verification_entry["full_match_us"]
            echo(
                f"{view_count:5d} views verification: "
                f"{verify_us['enabled']:8.1f}us with pre-verifier vs "
                f"{verify_us['disabled']:8.1f}us without "
                f"({verify_us['speedup']:.2f}x), "
                f"{verification_entry['preverifier_rejects_per_pass']} "
                f"pre-verified rejects of "
                f"{verification_entry['considered_per_pass']} considered, "
                f"{verification_entry['template_replays_second_pass']} "
                f"template replays"
            )

    end_to_end = (
        _run_end_to_end(config, catalog, stats, views, queries, echo)
        if config.end_to_end_view_counts
        else []
    )

    maintenance = (
        _run_maintenance(config, catalog, echo)
        if config.maintenance_view_count
        else None
    )

    memory = None
    if config.measure_memory and memory_views is not None:
        memory = {
            "views": memory_views,
            "cache": _measure_cache_memory(catalog, stats, views, queries),
        }
        if echo is not None:
            echo(
                f"memory: {memory_views['bytes_per_view']:,.0f} bytes/view "
                f"at {memory_views['views']} views "
                f"({memory_views['packed_table_bytes']:,} packed), "
                f"{memory['cache']['bytes_per_entry']:,.0f} bytes/cache-entry"
            )

    telemetry_overhead = _measure_telemetry_overhead(
        config, catalog, stats, views, queries, echo
    )

    catalog_scale = _run_catalog_scale(
        config, catalog, stats, queries, sizes, verification, echo
    )

    serving_pool = _run_pool_bench(config, echo) if config.pool_views else None
    calibrations.append(_calibrate())

    environment = _environment()
    return {
        "benchmark": "hotpath-matching",
        "config": dataclasses.asdict(config),
        # ``environment`` is the single source of host facts (python,
        # cpu_count, numpy, backend); the old duplicated top-level
        # python/cpu_count fields are gone and readers fall back when
        # consuming pre-dedup baselines.
        "environment": environment,
        "calibration_us": round(min(calibrations), 2),
        "sizes": sizes,
        "verification": verification,
        "memory": memory,
        "catalog_scale": catalog_scale,
        "end_to_end": end_to_end,
        "maintenance": maintenance,
        "telemetry_overhead": telemetry_overhead,
        "serving_pool": serving_pool,
    }


def _report_cpu_count(report: dict) -> int:
    """Usable cores from a report; tolerates pre-dedup baselines.

    Current reports carry the count only under ``environment``; older
    ones duplicated it at the top level.
    """
    environment = report.get("environment") or {}
    return environment.get("cpu_count") or report.get("cpu_count") or 1


def check_against_baseline(
    report: dict, baseline: dict, echo=print
) -> list[str]:
    """Regression check for CI; returns a list of failure messages.

    Compares the interned candidate-filter latency at the largest view
    count measured by *both* reports; a fresh run more than
    ``REGRESSION_FACTOR`` times slower than the committed baseline fails.
    The fast probe-build latency is gated much tighter
    (``PROBE_REGRESSION_TOLERANCE``) but calibration-normalized, so
    host-speed differences divide out instead of eating the budget. The
    interned-vs-reference speedup is reported but not gated here (it is
    gated absolutely by :func:`check_speedup_gates`).
    """
    failures: list[str] = []
    fresh_by_views = {entry["views"]: entry for entry in report["sizes"]}
    base_by_views = {entry["views"]: entry for entry in baseline["sizes"]}
    shared = sorted(set(fresh_by_views) & set(base_by_views))
    if not shared:
        return [
            "no common view count between fresh run "
            f"{sorted(fresh_by_views)} and baseline {sorted(base_by_views)}"
        ]
    views = shared[-1]
    fresh_us = fresh_by_views[views]["candidate_filter_us"]["interned"]
    base_us = base_by_views[views]["candidate_filter_us"]["interned"]
    limit = base_us * REGRESSION_FACTOR
    if echo is not None:
        echo(
            f"baseline check at {views} views: fresh {fresh_us:.1f}us, "
            f"baseline {base_us:.1f}us, limit {limit:.1f}us"
        )
    if fresh_us > limit:
        failures.append(
            f"candidate filtering at {views} views regressed: "
            f"{fresh_us:.1f}us > {REGRESSION_FACTOR:g}x baseline "
            f"({base_us:.1f}us)"
        )
    failures.extend(_check_probe_regression(report, baseline, views, echo))
    failures.extend(_check_maintenance_regression(report, baseline, echo))
    failures.extend(_check_pool_regression(report, baseline, echo))
    return failures


def check_pool_slo(
    report: dict, baseline: dict | None = None, echo=print
) -> list[str]:
    """The serving-pool SLO gate; returns failure messages.

    In-run, host-independent gates on the ``serving_pool`` section:

    * zero failed requests in either serving mode (a pool that sheds or
      errors under sustained load fails outright, whatever its speed);
    * the pool's sustained throughput and p99 latency must beat
      fork-per-batch (``POOL_RATIO_FLOOR``) on hosts with at least
      ``POOL_MIN_CORES`` cores; single-core hosts get the
      noise-absorbing ``POOL_SINGLE_CORE_RATIO_FLOOR`` instead. The
      ratio gates need a real catalog (``POOL_GATE_MIN_VIEWS``) --
      smoke-sized sections report but do not gate the ratios.

    With ``baseline``, additionally applies the calibration-normalized
    regression gates (:func:`_check_pool_regression`).
    """
    failures: list[str] = []
    pool = report.get("serving_pool")
    if not pool:
        if echo is not None:
            echo("pool SLO check skipped: report has no serving_pool section")
        return failures
    for mode in ("pool", "fork_batch"):
        failed = pool[mode]["failures"]
        if failed:
            failures.append(
                f"serving-pool bench: {failed} failed requests in the "
                f"{mode} run (must be 0)"
            )
    if pool["views"] < POOL_GATE_MIN_VIEWS:
        if echo is not None:
            echo(
                f"pool ratio gates skipped: {pool['views']} views is a "
                f"smoke-sized run (< {POOL_GATE_MIN_VIEWS}); ratios were "
                f"{pool['throughput_ratio']:.2f}x throughput, "
                f"{pool['p99_ratio']:.2f}x p99"
            )
        if baseline is not None:
            failures.extend(_check_pool_regression(report, baseline, echo))
        return failures
    cores = _report_cpu_count(report)
    single_core = cores < POOL_MIN_CORES
    floor = POOL_SINGLE_CORE_RATIO_FLOOR if single_core else POOL_RATIO_FLOOR
    note = " (single-core host)" if single_core else ""
    for name, ratio in (
        ("throughput", pool["throughput_ratio"]),
        ("p99 latency", pool["p99_ratio"]),
    ):
        if echo is not None:
            echo(
                f"pool SLO gate at {pool['views']} views: {name} ratio "
                f"{ratio:.2f}x vs fork-per-batch (floor {floor:g}x){note}"
            )
        if ratio < floor:
            failures.append(
                f"serving pool at {pool['views']} views: {name} ratio "
                f"{ratio:.2f}x vs fork-per-batch is under the "
                f"{floor:g}x floor{note}"
            )
    if baseline is not None:
        failures.extend(_check_pool_regression(report, baseline, echo))
    return failures


def _check_pool_regression(
    report: dict, baseline: dict, echo=print
) -> list[str]:
    """Serving-pool throughput/p99 vs. the committed baseline.

    Calibration-normalized like the maintenance gate: throughput is
    multiplied by the run's own ``calibration_us`` (work per host-speed
    unit, invariant across machines) and may drop to at most
    ``1 / REGRESSION_FACTOR`` of the baseline; p99 latency is divided by
    ``calibration_us`` and may grow to at most ``REGRESSION_FACTOR``
    times the baseline. Skipped with a note when the baseline predates
    the section or measured a different configuration -- regenerate with
    ``bench-hotpath --output``.
    """
    fresh = report.get("serving_pool")
    base = baseline.get("serving_pool")
    if not fresh:
        return []
    if not base:
        if echo is not None:
            echo(
                "pool regression check skipped: baseline has no "
                "serving_pool section; regenerate with --output"
            )
        return []
    if (base.get("views"), base.get("workers")) != (
        fresh.get("views"),
        fresh.get("workers"),
    ):
        if echo is not None:
            echo(
                "pool regression check skipped: baseline measured "
                f"{base.get('views')} views / {base.get('workers')} "
                f"workers, fresh run {fresh.get('views')} / "
                f"{fresh.get('workers')}"
            )
        return []
    fresh_calibration = report.get("calibration_us")
    base_calibration = baseline.get("calibration_us")
    if not fresh_calibration or not base_calibration:
        return [
            "pool regression check needs calibration_us in both reports; "
            "regenerate the baseline with bench-hotpath --output"
        ]
    failures: list[str] = []
    # requests/sec x host-speed proxy: invariant across machines.
    fresh_thr = fresh["pool"]["throughput_rps"] * fresh_calibration
    base_thr = base["pool"]["throughput_rps"] * base_calibration
    floor = base_thr / REGRESSION_FACTOR
    if echo is not None:
        echo(
            f"pool throughput check at {fresh['views']} views: fresh "
            f"{fresh_thr:,.0f} norm-req/s, baseline {base_thr:,.0f}, "
            f"floor {floor:,.0f}"
        )
    if fresh_thr < floor:
        failures.append(
            f"serving-pool throughput at {fresh['views']} views regressed: "
            f"{fresh_thr:,.0f} norm-req/s is under 1/{REGRESSION_FACTOR:g} "
            f"of baseline ({base_thr:,.0f})"
        )
    # latency / host-speed proxy, smaller is better.
    fresh_p99 = fresh["pool"]["p99_ms"] / fresh_calibration
    base_p99 = base["pool"]["p99_ms"] / base_calibration
    limit = base_p99 * REGRESSION_FACTOR
    if echo is not None:
        echo(
            f"pool p99 check at {fresh['views']} views: fresh "
            f"{fresh_p99:.3f} norm-ms, baseline {base_p99:.3f}, "
            f"limit {limit:.3f}"
        )
    if fresh_p99 > limit:
        failures.append(
            f"serving-pool p99 at {fresh['views']} views regressed: "
            f"{fresh_p99:.3f} norm-ms is over {REGRESSION_FACTOR:g}x "
            f"baseline ({base_p99:.3f})"
        )
    return failures


def _check_maintenance_regression(
    report: dict, baseline: dict, echo=print
) -> list[str]:
    """Incremental maintenance throughput vs. the committed baseline.

    Gates the rows/sec the CDC applier sustained at the benchmark's view
    count: a fresh run slower than ``1 / REGRESSION_FACTOR`` of the
    baseline fails. Both throughputs are calibration-normalized
    (multiplied by their own run's ``calibration_us``) so host speed
    divides out. Skipped with a note when the baseline predates the
    maintenance section or measured a different view count -- regenerate
    with ``--output``.
    """
    fresh = report.get("maintenance")
    base = baseline.get("maintenance")
    if not fresh:
        return []
    if not base:
        if echo is not None:
            echo(
                "maintenance check skipped: baseline has no maintenance "
                "section; regenerate with --output"
            )
        return []
    if base.get("views") != fresh.get("views"):
        if echo is not None:
            echo(
                "maintenance check skipped: baseline measured "
                f"{base.get('views')} views, fresh run "
                f"{fresh.get('views')}"
            )
        return []
    fresh_calibration = report.get("calibration_us")
    base_calibration = baseline.get("calibration_us")
    if not fresh_calibration or not base_calibration:
        return [
            "maintenance check needs calibration_us in both reports; "
            "regenerate the baseline with bench-hotpath --output"
        ]
    # rows/sec x host-speed proxy: invariant across machines.
    fresh_norm = fresh["incremental_rows_per_second"] * fresh_calibration
    base_norm = base["incremental_rows_per_second"] * base_calibration
    floor = base_norm / REGRESSION_FACTOR
    if echo is not None:
        echo(
            f"maintenance check at {fresh['views']} views: fresh "
            f"{fresh_norm:,.0f} norm-rows/s, baseline {base_norm:,.0f}, "
            f"floor {floor:,.0f}"
        )
    if fresh_norm < floor:
        return [
            f"incremental maintenance at {fresh['views']} views "
            f"regressed: {fresh_norm:,.0f} normalized rows/s < "
            f"1/{REGRESSION_FACTOR:g} of baseline ({base_norm:,.0f})"
        ]
    return []


def _check_probe_regression(
    report: dict, baseline: dict, views: int, echo=print
) -> list[str]:
    """Probe-build regression vs. the committed baseline (>25 % fails).

    Both latencies are normalized by their own run's ``calibration_us``
    so the tight budget measures the code, not the host. Baselines from
    before the fast/reference probe split (scalar ``probe_build_us``)
    are skipped with a note -- regenerate with ``--output``.
    """
    fresh_entry = {e["views"]: e for e in report["sizes"]}[views]
    base_entry = {e["views"]: e for e in baseline["sizes"]}[views]
    base_probe = base_entry.get("probe_build_us")
    fresh_calibration = report.get("calibration_us")
    base_calibration = baseline.get("calibration_us")
    if not isinstance(base_probe, dict):
        if echo is not None:
            echo(
                "probe-build check skipped: baseline predates the "
                "fast/reference split; regenerate with --output"
            )
        return []
    if not fresh_calibration or not base_calibration:
        return [
            "probe-build check needs calibration_us in both reports; "
            "regenerate the baseline with bench-hotpath --output"
        ]
    fresh_ratio = fresh_entry["probe_build_us"]["fast"] / fresh_calibration
    base_ratio = base_probe["fast"] / base_calibration
    limit = base_ratio * (1.0 + PROBE_REGRESSION_TOLERANCE)
    if echo is not None:
        echo(
            f"probe-build check at {views} views: fresh "
            f"{fresh_ratio:.3f}x-cal, baseline {base_ratio:.3f}x-cal, "
            f"limit {limit:.3f}x-cal"
        )
    if fresh_ratio > limit:
        return [
            f"probe building at {views} views regressed: "
            f"{fresh_ratio:.3f}x calibration > baseline "
            f"{base_ratio:.3f}x + {PROBE_REGRESSION_TOLERANCE:.0%}"
        ]
    return []


def check_speedup_gates(report: dict, echo=print) -> list[str]:
    """Absolute in-run speedup gates; returns failure messages.

    * Probe building: the single-pass compiler must beat the preserved
      reference pipeline by ``PROBE_SPEEDUP_FLOOR`` at the 1000-view
      point (both sides timed in-run, so the gate holds on any host).
    * End-to-end serving: batched rewriting must beat the legacy
      sequential loop by ``END_TO_END_SPEEDUP_FLOOR`` at the largest
      end-to-end point. The headline factor needs the fork fan-out, so
      the full gate applies on hosts with at least
      ``END_TO_END_MIN_CORES`` cores (every CI runner); on single-core
      hosts only the in-process improvements can show up and the gate
      degrades to "batching must not lose to the sequential loop"
      (``END_TO_END_SINGLE_CORE_FLOOR``, slightly under parity to
      absorb measurement noise).
    * Memory: when the report carries a ``memory`` section, the deep-walk
      bytes per registered view must stay within
      ``MEMORY_BYTES_PER_VIEW_BUDGET`` -- calibration-free, since bytes
      do not depend on host speed.
    """
    failures: list[str] = []
    sizes = {entry["views"]: entry for entry in report["sizes"]}
    if sizes:
        views = 1000 if 1000 in sizes else max(sizes)
        speedup = sizes[views]["probe_build_us"]["speedup"]
        if echo is not None:
            echo(
                f"probe-build speedup gate at {views} views: "
                f"{speedup:.2f}x (floor {PROBE_SPEEDUP_FLOOR:g}x)"
            )
        if speedup < PROBE_SPEEDUP_FLOOR:
            failures.append(
                f"probe building at {views} views is only {speedup:.2f}x "
                f"faster than the reference pipeline "
                f"(floor {PROBE_SPEEDUP_FLOOR:g}x)"
            )
    end_to_end = report.get("end_to_end") or []
    if end_to_end:
        entry = max(end_to_end, key=lambda item: item["views"])
        speedup = entry["speedup"]
        parallel_capable = (
            entry["cpu_count"] >= END_TO_END_MIN_CORES
            and entry.get("batched_parallel_ms") is not None
        )
        floor = (
            END_TO_END_SPEEDUP_FLOOR
            if parallel_capable
            else END_TO_END_SINGLE_CORE_FLOOR
        )
        if echo is not None:
            note = "" if parallel_capable else " (single-core host)"
            echo(
                f"end-to-end speedup gate at {entry['views']} views: "
                f"{speedup:.2f}x (floor {floor:g}x){note}"
            )
        if speedup < floor:
            failures.append(
                f"batched end-to-end rewriting at {entry['views']} views "
                f"is only {speedup:.2f}x the legacy sequential path "
                f"(floor {floor:g}x)"
            )
    failures.extend(_check_verification_gate(report, echo))
    memory = report.get("memory")
    if memory and memory.get("views"):
        per_view = memory["views"]["bytes_per_view"]
        count = memory["views"]["views"]
        if echo is not None:
            echo(
                f"memory gate at {count} views: {per_view:,.0f} bytes/view "
                f"(budget {MEMORY_BYTES_PER_VIEW_BUDGET:,})"
            )
        # Calibration-free: bytes are host-speed independent, so no
        # normalization is needed (or possible) here.
        if per_view > MEMORY_BYTES_PER_VIEW_BUDGET:
            failures.append(
                f"resident footprint at {count} views is "
                f"{per_view:,.0f} bytes/view, over the "
                f"{MEMORY_BYTES_PER_VIEW_BUDGET:,}-byte budget"
            )
    return failures


def _check_verification_gate(report: dict, echo=print) -> list[str]:
    """The vectorized-verification floor; returns failure messages.

    Applies when the report measured the verification sweep at
    ``VERIFICATION_GATE_VIEWS`` (the full config; the smoke sweep stops
    at 1000 views and skips naturally) on the numpy packed backend.
    The enabled-path full-match latency, normalized by the run's own
    ``calibration_us``, must be at least ``VERIFICATION_SPEEDUP_FLOOR``
    times better than the committed pre-preverifier baseline constant
    (``VERIFICATION_BASELINE_XCAL``) -- host speed divides out, so the
    >= 2x claim is enforced on any runner. The in-run enabled/disabled
    speedup is echoed for context but not gated: the disabled side of a
    fresh run already carries this PR's unrelated matcher improvements,
    so the committed constant is the honest denominator.
    """
    entries = {
        entry["views"]: entry for entry in report.get("verification") or []
    }
    entry = entries.get(VERIFICATION_GATE_VIEWS)
    if entry is None:
        if echo is not None:
            echo(
                "verification gate skipped: no sweep entry at "
                f"{VERIFICATION_GATE_VIEWS} views (smoke-sized run)"
            )
        return []
    backend = (report.get("environment") or {}).get("packed_backend")
    if backend != "packed-numpy":
        if echo is not None:
            echo(
                f"verification gate skipped on backend {backend!r}: the "
                "floor assumes vectorized sweeps (pure-python runs gate "
                "on correctness, not the constant factor)"
            )
        return []
    calibration = report.get("calibration_us")
    if not calibration:
        return [
            "verification gate needs calibration_us in the report; "
            "regenerate with bench-hotpath --output"
        ]
    fresh_xcal = entry["full_match_us"]["enabled"] / calibration
    limit = VERIFICATION_BASELINE_XCAL / VERIFICATION_SPEEDUP_FLOOR
    speedup = entry["full_match_us"].get("speedup")
    if echo is not None:
        in_run = (
            f", in-run {speedup:.2f}x vs disabled" if speedup else ""
        )
        echo(
            f"verification gate at {VERIFICATION_GATE_VIEWS} views: "
            f"{entry['full_match_us']['enabled']:.1f}us / "
            f"{fresh_xcal:.3f}x-cal (limit {limit:.3f}x-cal = baseline "
            f"{VERIFICATION_BASELINE_XCAL:.3f} / "
            f"{VERIFICATION_SPEEDUP_FLOOR:g}x){in_run}"
        )
    if fresh_xcal > limit:
        return [
            f"vectorized verification at {VERIFICATION_GATE_VIEWS} views "
            f"is {fresh_xcal:.3f}x calibration, short of the "
            f"{VERIFICATION_SPEEDUP_FLOOR:g}x floor over the committed "
            f"baseline ({VERIFICATION_BASELINE_XCAL:.3f}x-cal; "
            f"limit {limit:.3f})"
        ]
    return []


def check_tracing_overhead(
    report: dict,
    baseline: dict,
    tolerance: float = TRACING_OVERHEAD_TOLERANCE,
    echo=print,
) -> list[str]:
    """Guard the null-tracer overhead promise; returns failure messages.

    The tracing instrumentation threaded through the filter tree,
    matcher, and optimizer must be a strict no-op when disabled. This
    compares the fresh run's interned candidate-filter and full-match
    latencies (measured with the default null tracer installed) against
    the committed baseline at the largest shared view count, failing on
    a more-than-``tolerance`` relative regression.

    Latencies are first normalized by each run's own ``calibration_us``
    (a fixed pure-Python workload timed in the same process), so
    host-speed and load differences between the baseline machine and
    the gating runner divide out -- without that, wall-clock swings of
    50 % between CI runs would drown a 5 % budget. Both reports must
    carry ``calibration_us``; regenerate the baseline with ``--output``
    if it predates the field.

    The default ``tolerance`` states the promise as measured on a quiet
    host. Shared runners show ~15 % normalized noise between load
    epochs even after calibration, so CI passes a wider
    ``--overhead-tolerance``; the gate then catches the realistic
    failure mode -- a dropped ``tracer.active`` guard putting trace
    construction on the hot path costs 2-10x, far outside any sane
    budget -- rather than the last few percent.
    """
    fresh_calibration = report.get("calibration_us")
    base_calibration = baseline.get("calibration_us")
    if not fresh_calibration or not base_calibration:
        return [
            "tracing-overhead check needs calibration_us in both reports; "
            "regenerate the baseline with bench-hotpath --output"
        ]
    failures: list[str] = []
    fresh_by_views = {entry["views"]: entry for entry in report["sizes"]}
    base_by_views = {entry["views"]: entry for entry in baseline["sizes"]}
    shared = sorted(set(fresh_by_views) & set(base_by_views))
    if not shared:
        return [
            "no common view count between fresh run "
            f"{sorted(fresh_by_views)} and baseline {sorted(base_by_views)}"
        ]
    views = shared[-1]
    checks = (
        (
            "candidate filtering",
            fresh_by_views[views]["candidate_filter_us"]["interned"],
            base_by_views[views]["candidate_filter_us"]["interned"],
        ),
        (
            "full matching",
            fresh_by_views[views]["full_match_us"]["with_contexts"],
            base_by_views[views]["full_match_us"]["with_contexts"],
        ),
    )
    for label, fresh_us, base_us in checks:
        fresh_ratio = fresh_us / fresh_calibration
        base_ratio = base_us / base_calibration
        limit = base_ratio * (1.0 + tolerance)
        if echo is not None:
            echo(
                f"tracing-overhead check ({label}, {views} views): "
                f"fresh {fresh_us:.1f}us/{fresh_ratio:.3f}x-cal, "
                f"baseline {base_us:.1f}us/{base_ratio:.3f}x-cal, "
                f"limit {limit:.3f}x-cal"
            )
        if fresh_ratio > limit:
            failures.append(
                f"{label} at {views} views exceeds the disabled-tracing "
                f"overhead budget: {fresh_ratio:.3f}x calibration > "
                f"baseline {base_ratio:.3f}x + {tolerance:.0%}"
            )
    failures.extend(_check_telemetry_overhead(report, tolerance, echo))
    return failures


def _check_telemetry_overhead(
    report: dict,
    tolerance: float = TELEMETRY_OVERHEAD_TOLERANCE,
    echo=print,
) -> list[str]:
    """Gate the telemetry pipeline's on/off serving overhead.

    Reads the fresh report's ``telemetry_overhead`` section (both sides
    of the ratio are measured in one process, so no baseline or
    calibration is involved) and fails when attaching the recorder +
    SLO tracker slowed serving by more than ``tolerance``. Reports that
    predate the section (or ran with the point disabled) pass -- the CI
    smoke config always measures it.
    """
    section = report.get("telemetry_overhead")
    if not section:
        return []
    overhead = section["overhead_fraction"]
    if echo is not None:
        echo(
            f"telemetry-overhead check ({section['views']} views): "
            f"on {section['telemetry_on_ms']:.1f}ms vs "
            f"off {section['telemetry_off_ms']:.1f}ms "
            f"({overhead:+.1%}, budget {tolerance:.0%})"
        )
    if overhead > tolerance:
        return [
            f"telemetry pipeline overhead {overhead:.1%} exceeds the "
            f"{tolerance:.0%} budget (recorder + SLO attached vs plain "
            f"serving at {section['views']} views)"
        ]
    return []


def profile_hotpath(
    config: HotpathConfig | None = None, top: int = 20, echo=print
) -> None:
    """``cProfile`` the two gated phases and print the top-``top`` rows.

    Profiles probe building (the fused single-pass compiler) and full
    matching separately, at the largest configured view count, so a
    regression flagged by the bench gate can be attributed to a function
    without re-running anything by hand.
    """
    import cProfile
    import io
    import pstats

    config = config or HotpathConfig()
    catalog = tpch_catalog()
    stats = synthetic_tpch_stats(scale=config.scale)
    generator = WorkloadGenerator(catalog, stats, seed=config.seed)
    view_count = max(config.view_counts)
    views = generator.generate_views(view_count)
    queries = [
        q.statement for q in generator.generate_queries(config.query_count)
    ]
    matcher = _build_matcher(
        catalog, views, use_interning=True, use_match_contexts=True
    )
    descriptions = [matcher.describe_query(q) for q in queries]
    options = matcher.options

    def profile_phase(label, body) -> None:
        body()  # warm caches and memos outside the profile
        profiler = cProfile.Profile()
        profiler.enable()
        body()
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats(
            "cumulative"
        ).print_stats(top)
        echo(f"--- {label} ({view_count} views, top {top} by cumulative) ---")
        echo(stream.getvalue().rstrip())

    profile_phase(
        "probe build",
        lambda: [
            QueryProbe.of(description, options)
            for _ in range(config.probe_repetitions)
            for description in descriptions
        ],
    )
    profile_phase(
        "full match",
        lambda: [
            matcher.match(description)
            for _ in range(config.match_repetitions)
            for description in descriptions
        ],
    )


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


__all__ = [
    "HotpathConfig",
    "HotpathMismatchError",
    "END_TO_END_MIN_CORES",
    "END_TO_END_SINGLE_CORE_FLOOR",
    "END_TO_END_SPEEDUP_FLOOR",
    "POOL_MIN_CORES",
    "POOL_RATIO_FLOOR",
    "POOL_SINGLE_CORE_RATIO_FLOOR",
    "PROBE_REGRESSION_TOLERANCE",
    "PROBE_SPEEDUP_FLOOR",
    "REGRESSION_FACTOR",
    "TELEMETRY_OVERHEAD_TOLERANCE",
    "TRACING_OVERHEAD_TOLERANCE",
    "VERIFICATION_BASELINE_XCAL",
    "VERIFICATION_GATE_VIEWS",
    "VERIFICATION_SPEEDUP_FLOOR",
    "check_against_baseline",
    "check_pool_slo",
    "check_speedup_gates",
    "check_tracing_overhead",
    "profile_hotpath",
    "run_hotpath_benchmark",
    "write_report",
]
