"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(widths[i]) for i, value in enumerate(values))

    separator = "-" * len(line(headers))
    parts = [title, separator, line(headers), separator]
    parts.extend(line(row) for row in cells)
    parts.append(separator)
    return "\n".join(parts)
