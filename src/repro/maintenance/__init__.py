"""Incremental maintenance of materialized views (Section 2's motivation)."""

from .maintainer import (
    MaintainedView,
    ViewChangeEvent,
    ViewMaintainer,
    analyze_view,
    apply_view_delta,
    compute_view_delta,
    merge_aggregate_delta,
)

__all__ = [
    "MaintainedView",
    "ViewChangeEvent",
    "ViewMaintainer",
    "analyze_view",
    "apply_view_delta",
    "compute_view_delta",
    "merge_aggregate_delta",
]
