"""Incremental maintenance of materialized views (Section 2's motivation)."""

from .maintainer import MaintainedView, ViewChangeEvent, ViewMaintainer

__all__ = ["MaintainedView", "ViewChangeEvent", "ViewMaintainer"]
