"""Incremental maintenance of materialized views (Section 2's motivation)."""

from .maintainer import MaintainedView, ViewMaintainer

__all__ = ["MaintainedView", "ViewMaintainer"]
