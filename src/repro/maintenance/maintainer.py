"""Incremental maintenance of materialized views.

Section 2 of the paper explains *why* indexed views carry a
``count_big(*)`` column: "so deletions can be handled incrementally (when
the count becomes zero, the group is empty and the row must be deleted)".
This module implements that machinery, so the repository's materialized
views behave like SQL Server's: base-table inserts and deletes propagate
into every registered view without recomputation.

Algorithm (standard delta propagation, one base-table change at a time):

* **SPJ views** -- the view delta is the view query evaluated with the
  changed table replaced by just the delta rows (joins see the full other
  tables). Inserts append the delta; deletes remove one occurrence per
  delta row (bag semantics).
* **Aggregation views** -- the SPJ delta is aggregated with the view's
  grouping; each delta group is merged into the stored view: counts add or
  subtract, SUMs add or subtract, and a group whose ``count_big`` reaches
  zero is removed. Following SQL Server's indexable-view rules, SUM
  arguments must be non-nullable so subtraction is exact; registration
  rejects views violating this.

The delta algebra lives in module-level functions (:func:`analyze_view`,
:func:`compute_view_delta`, :func:`apply_view_delta`) so that other
appliers -- notably the deferred change-data-capture applier in
:mod:`repro.cdc` -- reuse exactly the same maintenance semantics the
synchronous :class:`ViewMaintainer` implements.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..catalog.catalog import Catalog
from ..engine.database import Database, Relation
from ..engine.executor import execute
from ..errors import ExecutionError, MatchError
from ..sql.expressions import Expression, FuncCall
from ..sql.statements import SelectStatement

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class _AggregateColumn:
    """One maintainable output column of an aggregation view."""

    position: int
    kind: str  # "group", "sum" or "count"


@dataclass
class MaintainedView:
    """A registered view plus its precomputed maintenance layout."""

    name: str
    statement: SelectStatement
    tables: frozenset[str]
    is_aggregate: bool
    columns: tuple[_AggregateColumn, ...] = ()
    group_positions: tuple[int, ...] = ()


@dataclass(frozen=True)
class ViewChangeEvent:
    """One maintenance event that changed materialized-view state.

    ``kind`` is ``"register"``, ``"unregister"``, ``"insert"``,
    ``"delete"`` or ``"cdc-apply"``; ``table`` is the changed base table
    for data changes and ``None`` for registration events; ``views``
    names every view whose stored contents the event touched. For
    ``"insert"`` and ``"delete"`` events, ``rows`` carries the concrete
    base-table rows that changed, so an outbox-style subscriber (the CDC
    change log) can capture the full change stream -- including
    predicate deletes, which resolve to their victim rows before the
    event fires. The rewrite-serving layer subscribes to these to evict
    cached rewrites that read stale views.
    """

    kind: str
    table: str | None
    views: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...] = ()


# -- reusable delta primitives (shared with the CDC applier) ----------------


def analyze_view(
    catalog: Catalog, name: str, statement: SelectStatement
) -> MaintainedView:
    """Validate that ``statement`` is incrementally maintainable.

    Returns the precomputed :class:`MaintainedView` layout. Raises
    :class:`MatchError` for DISTINCT views, unnamed outputs, unsupported
    aggregates, nullable SUM arguments, or aggregation views without a
    ``count_big(*)`` column.
    """
    tables = frozenset(statement.table_names())
    if statement.distinct:
        # DISTINCT deltas are not additive: an inserted row may already
        # be represented, a deleted row may still be backed by others.
        raise MatchError(
            f"view {name}: DISTINCT views cannot be maintained incrementally"
        )
    if not statement.is_aggregate:
        for item in statement.select_items:
            if item.name is None:
                raise MatchError(f"view {name}: every output needs a name")
        return MaintainedView(
            name=name, statement=statement, tables=tables, is_aggregate=False
        )
    columns: list[_AggregateColumn] = []
    group_positions: list[int] = []
    has_count = False
    for position, item in enumerate(statement.select_items):
        expr = item.expression
        if item.name is None:
            raise MatchError(f"view {name}: every output needs a name")
        if isinstance(expr, FuncCall) and expr.is_aggregate():
            if expr.name == "count_big" and expr.star:
                columns.append(_AggregateColumn(position, "count"))
                has_count = True
            elif expr.name == "sum":
                _require_non_nullable(catalog, name, expr.args[0])
                columns.append(_AggregateColumn(position, "sum"))
            else:
                raise MatchError(
                    f"view {name}: aggregate {expr.name} is not maintainable"
                )
        else:
            columns.append(_AggregateColumn(position, "group"))
            group_positions.append(position)
    if not has_count:
        raise MatchError(
            f"view {name}: aggregation views need count_big(*) for "
            "incremental deletes"
        )
    return MaintainedView(
        name=name,
        statement=statement,
        tables=tables,
        is_aggregate=True,
        columns=tuple(columns),
        group_positions=tuple(group_positions),
    )


def _require_non_nullable(
    catalog: Catalog, name: str, argument: Expression
) -> None:
    for ref in argument.column_refs():
        table = catalog.table(ref.table)  # type: ignore[arg-type]
        if table.is_nullable(ref.column):
            raise MatchError(
                f"view {name}: SUM over nullable column "
                f"{ref.table}.{ref.column} cannot be maintained exactly"
            )


def compute_view_delta(
    view: MaintainedView,
    table: str,
    delta_rows: list[tuple[object, ...]],
    database: Database,
) -> list[tuple[object, ...]]:
    """Evaluate the view's query with ``table`` replaced by the delta rows.

    Joins see the other tables at their current state in ``database``, so
    the caller is responsible for sequencing: for inserts, evaluate
    *before* the delta lands in the base table; for deletes, *after* the
    victims are removed.
    """
    overlay = _OverlayDatabase(database, table, delta_rows)
    return execute(view.statement, overlay).rows  # type: ignore[arg-type]


def extend_view_rows(
    view_name: str, delta: list[tuple[object, ...]], database: Database
) -> None:
    """Append an SPJ insert-delta to the stored view (bag semantics)."""
    relation = database.relation(view_name)
    relation.rows.extend(delta)
    relation.bump_version()


def remove_view_rows(
    view_name: str, delta: list[tuple[object, ...]], database: Database
) -> None:
    """Remove one occurrence per SPJ delete-delta row from the stored view."""
    relation = database.relation(view_name)
    for row in delta:
        try:
            relation.rows.remove(row)
        except ValueError:
            raise ExecutionError(
                f"view {view_name} out of sync: delta row {row} missing"
            ) from None
    relation.bump_version()


def merge_aggregate_delta(
    view: MaintainedView,
    delta: list[tuple[object, ...]],
    sign: int,
    database: Database,
) -> None:
    """Fold an aggregated delta into the stored view with the given sign.

    Counts and SUMs add (``sign=+1``) or subtract (``sign=-1``) per
    group; a new group appends; a group whose ``count_big`` reaches zero
    is removed -- the paper's Section 2 deletion rule.
    """
    relation = database.relation(view.name)
    group_positions = view.group_positions
    index: dict[tuple[object, ...], int] = {
        tuple(row[p] for p in group_positions): i
        for i, row in enumerate(relation.rows)
    }
    removed: list[int] = []
    for delta_row in delta:
        key = tuple(delta_row[p] for p in group_positions)
        existing_position = index.get(key)
        if existing_position is None:
            if sign < 0:
                raise ExecutionError(
                    f"view {view.name} out of sync: deleted group {key} missing"
                )
            relation.rows.append(delta_row)
            index[key] = len(relation.rows) - 1
            continue
        merged = _merge_row(
            view, relation.rows[existing_position], delta_row, sign
        )
        if merged is None:
            removed.append(existing_position)
            del index[key]
        else:
            relation.rows[existing_position] = merged
    relation.bump_version()
    for position in sorted(removed, reverse=True):
        del relation.rows[position]


def apply_view_delta(
    view: MaintainedView,
    delta: list[tuple[object, ...]],
    sign: int,
    database: Database,
) -> None:
    """Apply one signed delta to the stored view, aggregate or SPJ."""
    if view.is_aggregate:
        merge_aggregate_delta(view, delta, sign, database)
    elif sign > 0:
        extend_view_rows(view.name, delta, database)
    else:
        remove_view_rows(view.name, delta, database)


def _merge_row(
    view: MaintainedView,
    current: tuple[object, ...],
    delta_row: tuple[object, ...],
    sign: int,
) -> tuple[object, ...] | None:
    values = list(current)
    for column in view.columns:
        if column.kind == "group":
            continue
        delta_value = delta_row[column.position]
        if column.kind == "count":
            new_count = values[column.position] + sign * delta_value  # type: ignore[operator]
            if new_count == 0:
                return None
            values[column.position] = new_count
        else:  # sum: arguments are non-nullable, so deltas are non-null
            current_value = values[column.position]
            if delta_value is None:
                continue  # empty delta group contributes nothing
            if current_value is None:
                values[column.position] = sign * delta_value  # type: ignore[operator]
            else:
                values[column.position] = (
                    current_value + sign * delta_value  # type: ignore[operator]
                )
    return tuple(values)


class ViewMaintainer:
    """Propagates base-table inserts and deletes into materialized views."""

    def __init__(self, catalog: Catalog, database: Database):
        self.catalog = catalog
        self.database = database
        self._views: dict[str, MaintainedView] = {}
        self._listeners: list[Callable[[ViewChangeEvent], None]] = []

    # -- staleness signalling -------------------------------------------------

    def add_listener(self, listener: Callable[[ViewChangeEvent], None]) -> None:
        """Subscribe to :class:`ViewChangeEvent` notifications.

        Listeners fire synchronously after the change is fully applied, in
        subscription order. Listener failures are isolated: a raising
        listener is logged and skipped, so it neither aborts the change
        (which is already applied) nor starves later listeners.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[ViewChangeEvent], None]) -> None:
        """Unsubscribe a previously added listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(
        self,
        kind: str,
        table: str | None,
        views: Iterable[str],
        rows: Sequence[tuple[object, ...]] = (),
    ) -> None:
        if not self._listeners:
            return
        event = ViewChangeEvent(
            kind=kind, table=table, views=tuple(views), rows=tuple(rows)
        )
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:
                logger.exception(
                    "view-change listener %r failed on %s event; continuing",
                    listener,
                    kind,
                )

    # -- registration -------------------------------------------------------

    def register(self, name: str, statement: SelectStatement) -> MaintainedView:
        """Materialize ``statement`` as ``name`` and maintain it from now on.

        Raises :class:`MatchError` when the view cannot be maintained
        incrementally (nullable SUM argument, unsupported aggregate, or a
        missing ``count_big(*)`` column in an aggregation view).
        """
        view = analyze_view(self.catalog, name, statement)
        from ..engine.executor import materialize_view

        materialize_view(name, statement, self.database)
        self._views[name] = view
        self._notify("register", None, (name,))
        return view

    def unregister(self, name: str) -> None:
        """Stop maintaining a view and drop its stored relation."""
        del self._views[name]
        if self.database.has(name):
            self.database.drop(name)
        self._notify("unregister", None, (name,))

    def views(self) -> tuple[MaintainedView, ...]:
        """All views currently under maintenance."""
        return tuple(self._views.values())

    def _analyze(self, name: str, statement: SelectStatement) -> MaintainedView:
        return analyze_view(self.catalog, name, statement)

    # -- change application ----------------------------------------------------

    def insert(self, table: str, rows: Iterable[Sequence[object]]) -> None:
        """Insert rows into a base table and propagate to all views."""
        rows = [tuple(row) for row in rows]
        if not rows:
            return
        deltas = self._view_deltas(table, rows)
        relation = self.database.relation(table)
        relation.rows.extend(rows)
        relation.bump_version()
        for view, delta in deltas:
            apply_view_delta(view, delta, +1, self.database)
        self._notify(
            "insert", table, (view.name for view, _ in deltas), rows
        )

    def delete(self, table: str, rows: Iterable[Sequence[object]]) -> None:
        """Delete specific rows from a base table and propagate.

        Each given row removes one matching occurrence from the base table
        (bag semantics); a missing row raises.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return
        relation = self.database.relation(table)
        for row in rows:
            try:
                relation.rows.remove(row)
            except ValueError:
                raise ExecutionError(
                    f"cannot delete from {table}: row {row} not present"
                ) from None
        relation.bump_version()
        # Deltas are computed *after* removal so joins see the final state
        # of the changed table's partners -- but the delta itself uses the
        # removed rows.
        deltas = self._view_deltas(table, rows)
        for view, delta in deltas:
            apply_view_delta(view, delta, -1, self.database)
        self._notify(
            "delete", table, (view.name for view, _ in deltas), rows
        )

    def delete_where(self, table: str, predicate) -> int:
        """Delete every row satisfying a row-tuple predicate; returns count.

        Resolves the predicate to its concrete victim rows first and then
        routes through :meth:`delete`, so subscribers observe exactly the
        same ``ViewChangeEvent`` stream (kind, views, and victim rows) a
        direct ``delete`` of those rows would have produced -- the CDC log
        never misses a predicate delete.
        """
        relation = self.database.relation(table)
        victims = [row for row in relation.rows if predicate(row)]
        self.delete(table, victims)
        return len(victims)

    # -- internals -------------------------------------------------------------

    def _view_deltas(
        self, table: str, delta_rows: list[tuple[object, ...]]
    ) -> list[tuple[MaintainedView, list[tuple[object, ...]]]]:
        """Evaluate each affected view's query over the delta rows."""
        affected = [v for v in self._views.values() if table in v.tables]
        return [
            (view, compute_view_delta(view, table, delta_rows, self.database))
            for view in affected
        ]

    def _remove_rows(self, view_name: str, delta: list[tuple[object, ...]]) -> None:
        remove_view_rows(view_name, delta, self.database)

    def _merge_aggregate(
        self,
        view: MaintainedView,
        delta: list[tuple[object, ...]],
        sign: int,
    ) -> None:
        merge_aggregate_delta(view, delta, sign, self.database)


class _OverlayDatabase:
    """A read view of a database with one table replaced by delta rows."""

    def __init__(
        self,
        base: Database,
        table: str,
        delta_rows: list[tuple[object, ...]],
    ):
        self._base = base
        self._table = table
        base_relation = base.relation(table)
        self._delta = Relation(
            name=table, columns=base_relation.columns, rows=delta_rows
        )

    def relation(self, name: str) -> Relation:
        if name == self._table:
            return self._delta
        return self._base.relation(name)

    def has(self, name: str) -> bool:
        return self._base.has(name)
