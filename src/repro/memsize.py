"""Approximate resident-memory accounting for catalog-scale structures.

The paper's scalability claim is not only about time: a 100k-view
catalog must also *fit*, and the dominant resident costs in this
implementation are the per-view match state (descriptions, match
contexts, filter-tree rows) and the rewrite cache's entries. This module
measures both with one primitive, :func:`deep_sizeof` -- a cycle-safe
recursive ``sys.getsizeof`` walk -- and two reporting helpers the
benchmark writes into ``BENCH_matching.json``:

* :func:`view_memory_report` -- total and per-view bytes for a filter
  tree (single or sharded) including every registered view's reachable
  state, with the catalog/statistics objects excluded so schema metadata
  shared by all views is not attributed per view;
* :func:`cache_memory_report` -- total and per-entry bytes for a
  :class:`~repro.service.cache.RewriteCache`.

Shared objects are counted **once** per call (identity-based ``seen``
set), so per-view figures are *amortized* marginal cost across the whole
catalog -- the number that predicts how the footprint grows with the
next 10k registrations, which is what the memory gate in
``--check-speedups`` budgets against. Figures are approximate in the
usual ``getsizeof`` sense (interpreter-version dependent, no allocator
overhead) but comparable across runs on one interpreter, which is all a
regression gate needs.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable
from types import FunctionType, ModuleType
from typing import Any

__all__ = [
    "cache_memory_report",
    "deep_sizeof",
    "packed_table_bytes",
    "view_memory_report",
]

# Leaf types: sized but never descended into. str/bytes/bytearray report
# their payload through getsizeof already; descending into a str yields
# single-character strings and double-counts.
_ATOMIC = (
    int,
    float,
    complex,
    bool,
    str,
    bytes,
    bytearray,
    memoryview,
    range,
    type(None),
)

# Never counted at all: code/module/class machinery is process-wide, not
# per-view state, and following it drags in the whole interpreter.
_SKIPPED = (ModuleType, FunctionType, type, staticmethod, classmethod, property)


_SLOT_CACHE: dict[type, tuple[str, ...]] = {}


def _slot_names(cls: type) -> tuple[str, ...]:
    cached = _SLOT_CACHE.get(cls)
    if cached is not None:
        return cached
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    result = tuple(names)
    _SLOT_CACHE[cls] = result
    return result


def deep_sizeof(
    obj: Any,
    *,
    exclude: Iterable[Any] = (),
    seen: set[int] | None = None,
) -> int:
    """Bytes reachable from ``obj``, counting every object once.

    ``exclude`` pre-marks objects (and everything reachable from them)
    as already seen without counting them -- used to keep the shared
    catalog/statistics out of per-view figures. Passing a shared ``seen``
    set across calls turns several calls into one joint accounting.
    """
    if seen is None:
        seen = set()
    for item in exclude:
        _walk(item, seen)  # mark reachable ids, discard the byte count
    return _walk(obj, seen)


def _walk(obj: Any, seen: set[int]) -> int:
    # Iterative DFS: 100k-view catalogs produce reference chains far
    # deeper than the recursion limit would tolerate.
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        if isinstance(current, _SKIPPED):
            continue
        ident = id(current)
        if ident in seen:
            continue
        seen.add(ident)
        try:
            total += sys.getsizeof(current)
        except TypeError:
            continue
        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue
        instance_dict = getattr(current, "__dict__", None)
        if instance_dict is not None:
            stack.append(instance_dict)
        for name in _slot_names(type(current)):
            try:
                stack.append(getattr(current, name))
            except AttributeError:
                pass  # slot declared but never assigned
        # Containers that are neither builtin sequences nor slot/dict
        # objects (deque, OrderedDict subclasses handled above via dict).
        if isinstance(current, Iterable) and not hasattr(current, "__dict__"):
            if not isinstance(current, (dict, list, tuple, set, frozenset)):
                try:
                    stack.extend(iter(current))
                except TypeError:
                    pass
    return total


def view_memory_report(
    tree: Any, *, exclude: Iterable[Any] = ()
) -> dict[str, Any]:
    """Total/per-view resident bytes for a (sharded) filter tree.

    ``tree`` is a :class:`~repro.core.filtertree.FilterTree` or
    :class:`~repro.core.sharding.ShardedFilterTree` (anything with
    ``views()``); ``exclude`` typically carries the catalog, statistics,
    and options objects so shared schema metadata is not charged to the
    views. Reported keys: ``views``, ``total_bytes``, ``bytes_per_view``,
    and ``packed_table_bytes`` (the contiguous row storage alone, 0 when
    the packed layout is inactive).
    """
    count = len(tree.views())
    total = deep_sizeof(tree, exclude=exclude)
    packed = packed_table_bytes(tree)
    return {
        "views": count,
        "total_bytes": total,
        "bytes_per_view": (total / count) if count else 0.0,
        "packed_table_bytes": packed,
    }


def packed_table_bytes(tree: Any) -> int:
    """Contiguous packed-row bytes of a (sharded) filter tree, 0 if none.

    Cheap (no object walk): sums the ``PackedBitsetTable.nbytes`` of each
    subtree, so it stays usable at 100k views where :func:`deep_sizeof`
    would take a minute.
    """
    shards = getattr(tree, "shards", None)
    if shards is not None:
        return sum(packed_table_bytes(shard) for shard in shards)
    total = 0
    for attr in ("_spj_packed", "_aggregate_packed"):
        subtree = getattr(tree, attr, None)
        if subtree is not None:
            total += subtree.table.nbytes
    return total


def cache_memory_report(
    cache: Any, *, exclude: Iterable[Any] = ()
) -> dict[str, Any]:
    """Total/per-entry resident bytes for a ``RewriteCache``.

    Counts only the entry table (results, epochs, recency stamps), not
    the cache shell; ``exclude`` keeps plan-referenced shared objects
    (catalog, statistics) out of the per-entry figure.
    """
    entries = getattr(cache, "_entries", {})
    count = len(entries)
    total = deep_sizeof(entries, exclude=exclude)
    return {
        "entries": count,
        "total_bytes": total,
        "bytes_per_entry": (total / count) if count else 0.0,
    }
