"""Observability for the rewrite path: tracing, funnels, exposition.

``repro.obs`` answers the questions the aggregate counters in
``repro.service.metrics`` cannot: *why* did a specific view fail to
match, *where* in the filter tree did candidates get narrowed out, and
*how* did the winning rewrite's cost compare to the base plan. One
:class:`RewriteTrace` per traced request, recorded through a
contextvar-scoped tracer that is a strict no-op when disabled (the
module-level :data:`NULL_TRACER`).

Entry points:

* :func:`tracing` / :class:`RewriteTracer` -- record a trace around any
  matcher/optimizer call.
* :class:`TraceSampler` -- deterministic 1-in-N sampling for the
  serving layer (``ViewServer(trace_sample_rate=...)``).
* :func:`render_trace` / :func:`trace_to_json` /
  :func:`validate_trace_dict` -- the ``explain-rewrite`` output formats
  and the frozen export schema.

The cross-process telemetry pipeline layers on top:

* :class:`DDSketch` -- mergeable relative-error percentile sketch.
* :class:`TraceContext` / :func:`trace_context` -- the request identity
  carried into forked matching workers and the CDC applier.
* :class:`TelemetryHub` / :class:`WorkerTelemetry` -- parent-side merge
  registry and child-side collector.
* :class:`SloTracker` -- target-p99/error-budget burn rates.
* :class:`WorkloadRecorder` / :func:`load_journal` -- the rotating
  JSONL request journal and its advisor-consumable aggregation.
"""

from .render import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    render_trace,
    trace_to_json,
    validate_trace_dict,
)
from .sketch import DDSketch
from .slo import SloObjectives, SloTracker
from .recorder import (
    WorkloadAggregate,
    WorkloadRecorder,
    aggregate_events,
    iter_events,
    load_journal,
)
from .telemetry import (
    TelemetryHub,
    TelemetrySnapshot,
    TraceContext,
    WorkerTelemetry,
    current_trace_context,
    set_telemetry_hub,
    telemetry_hub,
    trace_context,
)
from .trace import (
    NULL_TRACER,
    TRACE_VERSION,
    CandidateTrace,
    FilterLevelTrace,
    MatchInvocationTrace,
    NullTracer,
    PlanAlternative,
    RewriteTrace,
    RewriteTracer,
    Span,
    TraceSampler,
    activate,
    current_tracer,
    deactivate,
    tracing,
)

__all__ = [
    "CandidateTrace",
    "DDSketch",
    "FilterLevelTrace",
    "MatchInvocationTrace",
    "NULL_TRACER",
    "NullTracer",
    "PlanAlternative",
    "RewriteTrace",
    "RewriteTracer",
    "SloObjectives",
    "SloTracker",
    "Span",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_V1",
    "TRACE_VERSION",
    "TelemetryHub",
    "TelemetrySnapshot",
    "TraceContext",
    "TraceSampler",
    "WorkerTelemetry",
    "WorkloadAggregate",
    "WorkloadRecorder",
    "activate",
    "aggregate_events",
    "current_trace_context",
    "current_tracer",
    "deactivate",
    "iter_events",
    "load_journal",
    "render_trace",
    "set_telemetry_hub",
    "telemetry_hub",
    "trace_context",
    "trace_to_json",
    "tracing",
    "validate_trace_dict",
]
