"""Observability for the rewrite path: tracing, funnels, exposition.

``repro.obs`` answers the questions the aggregate counters in
``repro.service.metrics`` cannot: *why* did a specific view fail to
match, *where* in the filter tree did candidates get narrowed out, and
*how* did the winning rewrite's cost compare to the base plan. One
:class:`RewriteTrace` per traced request, recorded through a
contextvar-scoped tracer that is a strict no-op when disabled (the
module-level :data:`NULL_TRACER`).

Entry points:

* :func:`tracing` / :class:`RewriteTracer` -- record a trace around any
  matcher/optimizer call.
* :class:`TraceSampler` -- deterministic 1-in-N sampling for the
  serving layer (``ViewServer(trace_sample_rate=...)``).
* :func:`render_trace` / :func:`trace_to_json` /
  :func:`validate_trace_dict` -- the ``explain-rewrite`` output formats
  and the frozen export schema.
"""

from .render import (
    TRACE_SCHEMA,
    render_trace,
    trace_to_json,
    validate_trace_dict,
)
from .trace import (
    NULL_TRACER,
    CandidateTrace,
    FilterLevelTrace,
    MatchInvocationTrace,
    NullTracer,
    PlanAlternative,
    RewriteTrace,
    RewriteTracer,
    Span,
    TraceSampler,
    activate,
    current_tracer,
    deactivate,
    tracing,
)

__all__ = [
    "CandidateTrace",
    "FilterLevelTrace",
    "MatchInvocationTrace",
    "NULL_TRACER",
    "NullTracer",
    "PlanAlternative",
    "RewriteTrace",
    "RewriteTracer",
    "Span",
    "TRACE_SCHEMA",
    "TraceSampler",
    "activate",
    "current_tracer",
    "deactivate",
    "render_trace",
    "trace_to_json",
    "tracing",
    "validate_trace_dict",
]
