"""``repro-top``: live terminal dashboard over a server or journal.

The rendering is split from the looping so everything interesting is
a pure function of a *frame* -- a plain dict assembled either from a
running :class:`~repro.service.server.ViewServer` (``server_frame``)
or from a recorded workload journal (``journal_frame``).  Tests
assert on the rendered string; the CLI adds the refresh loop and the
ANSI clear.

Sections, top to bottom:

* **RED** -- request/error rates (per second, from counter deltas
  between frames) and duration percentiles from the ``total`` stage.
* **Funnel** -- reject reasons ranked with percentage bars: the
  paper's per-level pruning behaviour as a live view.
* **Sketches** -- merged cross-process percentile sketches (worker
  matching, CDC scan/merge) from the telemetry hub.
* **CDC** -- per-view maintenance lag.
* **SLO** -- multi-window burn rates with a ``!`` marker past 1.0.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "server_frame",
    "journal_frame",
    "render_frame",
    "DashboardLoop",
]

_CLEAR = "\x1b[2J\x1b[H"
_BAR_WIDTH = 24


# ---------------------------------------------------------------------------
# Frame assembly


def server_frame(server: Any) -> Dict[str, Any]:
    """Snapshot a running ``ViewServer`` into a renderable frame."""

    stats = server.stats()
    frame: Dict[str, Any] = {
        "source": "server",
        "now": time.monotonic(),
        "epoch": stats.get("epoch"),
        "views": stats.get("views"),
        "counters": dict(stats.get("counters", {})),
        "latency": dict(stats.get("latency", {})),
        "cache": stats.get("cache"),
    }
    telemetry = getattr(server, "telemetry", None)
    if telemetry is not None:
        snap = telemetry.snapshot()
        frame["sketches"] = snap["sketches"]
        # Merge hub counters in (worker-side tallies).
        for name, value in snap["counters"].items():
            frame["counters"].setdefault(name, value)
    funnel = stats.get("rejects")
    if funnel is None:
        try:
            funnel = dict(
                server.snapshots.current.matcher.statistics.rejects_by_reason
            )
        except AttributeError:
            funnel = {}
    frame["funnel"] = funnel
    if "cdc" in stats:
        frame["cdc"] = {
            view: entry["lag_seconds"]
            for view, entry in stats["cdc"].get("views", {}).items()
        }
        frame["cdc_head_lsn"] = stats["cdc"].get("head_lsn")
    slo = getattr(server, "slo", None)
    if slo is not None:
        frame["slo"] = slo.snapshot()
    return frame


def journal_frame(aggregate: Any) -> Dict[str, Any]:
    """Render-ready frame from a :class:`WorkloadAggregate`."""

    latency = aggregate.latency.snapshot()
    window = 0.0
    if aggregate.first_ts is not None and aggregate.last_ts is not None:
        window = max(aggregate.last_ts - aggregate.first_ts, 0.0)
    return {
        "source": "journal",
        "now": time.monotonic(),
        "window_seconds": window,
        "counters": {
            "requests": aggregate.events,
            "errors": aggregate.errors,
            "timeouts": aggregate.timed_out,
            "rejected": aggregate.rejected,
            "cache_hits": aggregate.cache_hits,
            "cache_misses": aggregate.cache_misses,
            "rewrites": aggregate.uses_view,
        },
        "latency": {"total": latency},
        "funnel": dict(aggregate.reject_funnel),
        "hit_rate": aggregate.hit_rate,
        "fingerprints": len(aggregate.fingerprints),
    }


# ---------------------------------------------------------------------------
# Rendering


def _rate(
    frame: Dict[str, Any],
    previous: Optional[Dict[str, Any]],
    counter: str,
) -> Optional[float]:
    if previous is None:
        return None
    dt = frame.get("now", 0.0) - previous.get("now", 0.0)
    if dt <= 0:
        return None
    delta = frame.get("counters", {}).get(counter, 0) - previous.get(
        "counters", {}
    ).get(counter, 0)
    return max(delta, 0) / dt


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    return "#" * filled + "." * (width - filled)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"


def render_frame(
    frame: Dict[str, Any],
    *,
    previous: Optional[Dict[str, Any]] = None,
) -> str:
    lines: List[str] = []
    counters = frame.get("counters", {})
    if frame.get("source") == "journal":
        header = (
            f"repro-top -- journal replay, {counters.get('requests', 0)} "
            f"events over {frame.get('window_seconds', 0.0):.1f}s, "
            f"{frame.get('fingerprints', 0)} query shapes"
        )
    else:
        header = (
            f"repro-top -- epoch {frame.get('epoch')}, "
            f"{frame.get('views')} views registered"
        )
    lines.append(header)
    lines.append("=" * len(header))

    # RED: rates + durations.
    requests = counters.get("requests", 0)
    errors = counters.get("errors", 0)
    red = [f"requests {requests}"]
    rate = _rate(frame, previous, "requests")
    if rate is not None:
        red.append(f"({rate:.1f}/s)")
    red.append(f"errors {errors}")
    error_rate = _rate(frame, previous, "errors")
    if error_rate is not None:
        red.append(f"({error_rate:.1f}/s)")
    hits = counters.get("cache_hits", 0)
    misses = counters.get("cache_misses", 0)
    probes = hits + misses
    if probes:
        red.append(f"hit rate {hits / probes:.1%}")
    lines.append("  ".join(red))
    total = frame.get("latency", {}).get("total")
    if total and total.get("count"):
        lines.append(
            f"latency ms: p50 {_ms(total['p50'])}  p90 {_ms(total['p90'])}  "
            f"p99 {_ms(total['p99'])}  (n={total['count']})"
        )

    # Reject funnel.
    funnel = frame.get("funnel") or {}
    if funnel:
        ranked = sorted(funnel.items(), key=lambda item: (-item[1], item[0]))
        total_rejects = sum(count for _, count in ranked)
        lines.append("")
        lines.append(f"reject funnel ({total_rejects} rejects):")
        for reason, count in ranked:
            fraction = count / total_rejects if total_rejects else 0.0
            lines.append(
                f"  {reason:<18} {count:>8}  {_bar(fraction)} {fraction:6.1%}"
            )

    # Cross-process sketches.
    sketches = frame.get("sketches") or {}
    if sketches:
        lines.append("")
        lines.append("telemetry sketches (ms):")
        lines.append(
            f"  {'name':<24} {'count':>8} {'p50':>9} {'p90':>9} {'p99':>9}"
        )
        for name in sorted(sketches):
            snap = sketches[name]
            if not snap.get("count"):
                continue
            lines.append(
                f"  {name:<24} {snap['count']:>8}"
                f" {_ms(snap['p50'])} {_ms(snap['p90'])} {_ms(snap['p99'])}"
            )

    # CDC lag.
    cdc = frame.get("cdc")
    if cdc:
        lines.append("")
        lines.append(
            f"cdc lag (head lsn {frame.get('cdc_head_lsn', '?')}):"
        )
        for view in sorted(cdc):
            lines.append(f"  {view:<24} {cdc[view]:10.3f}s")

    # SLO burn.
    slo = frame.get("slo")
    if slo:
        lines.append("")
        objectives = slo.get("objectives", {})
        lines.append(
            "slo: p99 target "
            f"{objectives.get('target_p99_seconds', 0.0) * 1e3:.1f} ms, "
            f"budget {objectives.get('target_error_budget', 0.0):.2%}, "
            f"bad {slo.get('bad_fraction', 0.0):.2%} of "
            f"{slo.get('requests', 0)}"
        )
        for window, burn in sorted(
            (slo.get("burn_rates") or {}).items(), key=lambda kv: int(kv[0])
        ):
            marker = " !" if burn > 1.0 else ""
            lines.append(
                f"  burn {int(window):>6}s window: {burn:8.3f}{marker}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Refresh loop


class DashboardLoop:
    """Re-render frames on an interval until told to stop.

    ``frames`` produces a new frame per tick; ``echo`` receives the
    rendered screen (tests inject a collector, the CLI prints).  The
    ANSI clear is prepended only when ``clear`` is on, so piped output
    stays readable.
    """

    def __init__(
        self,
        frames: Callable[[], Dict[str, Any]],
        *,
        interval: float = 1.0,
        iterations: Optional[int] = None,
        clear: bool = True,
        echo: Callable[[str], None] = print,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.frames = frames
        self.interval = interval
        self.iterations = iterations
        self.clear = clear
        self.echo = echo
        self.sleep = sleep

    def run(self) -> int:
        previous: Optional[Dict[str, Any]] = None
        count = 0
        try:
            while self.iterations is None or count < self.iterations:
                frame = self.frames()
                screen = render_frame(frame, previous=previous)
                if self.clear:
                    screen = _CLEAR + screen
                self.echo(screen)
                previous = frame
                count += 1
                if self.iterations is not None and count >= self.iterations:
                    break
                self.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return 0
