"""Workload recorder: sampled, schema-versioned JSONL request journal.

The ROADMAP's closed-loop advisor wants a *recorded workload* as
input -- which query shapes arrive, how often, which reject reasons
kept them from rewriting (Mistry et al. assume exactly this).  The
recorder makes that signal durable: the serving layer hands it each
:class:`~repro.service.server.ServedResult` and it appends one JSON
line per sampled request to a size-bounded rotating journal.

Event schema (version 1)::

    {"v": 1, "kind": "rewrite", "ts": <unix seconds>,
     "fingerprint": str | null, "sql": str (truncated),
     "cache_hit": bool, "uses_view": bool, "views": [str, ...],
     "latency_seconds": float, "error": str | null,
     "timed_out": bool, "rejected": bool,
     "max_staleness": float | null,
     "reject_tallies": {reason: count, ...},
     "preverified_rejects": int, "candidates_skipped": int}

The last two fields (candidates dismissed by the columnar
pre-verifier, and candidates never verified because the cost bound
closed the search) are additive within version 1: readers fold them
with ``.get(..., 0)``, so journals written before the vectorized
verification work keep aggregating.

Unknown versions are skipped on read, so a newer writer never breaks
an older ``workload-report``.  Rotation is copy-free rename chaining
(``journal -> journal.1 -> journal.2 ...``), bounded by ``max_files``.

:func:`aggregate_events` folds a journal into a
:class:`WorkloadAggregate`: per-fingerprint frequencies with sample
SQL, the ranked reject-reason funnel, cache hit rate, and a latency
:class:`~repro.obs.sketch.DDSketch` -- the advisor-consumable shape
(:meth:`WorkloadAggregate.to_advisor_input`) and what ``repro-top``
renders in journal mode.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from .sketch import DDSketch

__all__ = [
    "EVENT_VERSION",
    "WorkloadRecorder",
    "WorkloadAggregate",
    "iter_events",
    "aggregate_events",
    "load_journal",
]

EVENT_VERSION = 1

_SQL_SAMPLE_LIMIT = 500

# Journal writes are flushed every this-many events (and on rotation and
# close). Per-event flushing costs a syscall per request on the serving
# hot path -- measurably outside the telemetry overhead budget -- while
# the reader side already tolerates a torn tail line, so batched
# flushing only risks losing the final few events of a crashed process.
_FLUSH_EVERY = 32


class WorkloadRecorder:
    """Thread-safe rotating JSONL journal of served requests.

    ``sample_every=N`` keeps every Nth event (deterministic, counted
    across threads) so a high-QPS tier can journal at a fixed fraction
    of its traffic; 1 records everything.  ``max_bytes`` bounds the
    active file; on overflow it rotates into numbered suffixes and at
    most ``max_files`` files (active + rotated) ever exist.
    """

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 4 * 1024 * 1024,
        max_files: int = 4,
        sample_every: int = 1,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError("max_bytes must be at least 1024")
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.sample_every = sample_every
        self._clock = clock
        self._lock = threading.Lock()
        self._seen = 0
        self._written = 0
        self._rotations = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        # Rotation bookkeeping counts bytes as they are written: text-mode
        # ``tell()`` recomputes an opaque cookie per call, which is far
        # too slow for once-per-request use.
        self._bytes = os.path.getsize(path) if os.path.exists(path) else 0

    # -- recording ----------------------------------------------------

    def record_event(self, event: Dict[str, Any]) -> bool:
        """Append one event (stamped with ``v`` and ``ts``); returns
        whether it survived sampling."""

        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self.sample_every != 0:
                return False
            payload = {"v": EVENT_VERSION, "ts": self._clock()}
            payload.update(event)
            line = json.dumps(payload, separators=(",", ":")) + "\n"
            self._handle.write(line)
            self._written += 1
            self._bytes += len(line.encode("utf-8"))
            if self._written % _FLUSH_EVERY == 0:
                self._handle.flush()
            if self._bytes >= self.max_bytes:
                self._rotate()
            return True

    def record_result(self, result: Any) -> bool:
        """Journal one served request.

        Duck-typed over :class:`~repro.service.server.ServedResult` so
        ``repro.obs`` keeps no import edge back into ``repro.service``.
        """

        tallies: Dict[str, int] = {}
        preverified = 0
        skipped = 0
        inner = getattr(result, "result", None)
        if inner is not None:
            tallies = dict(getattr(inner, "reject_tallies", ()) or ())
            preverified = int(getattr(inner, "preverified_rejects", 0) or 0)
            skipped = int(getattr(inner, "candidates_skipped", 0) or 0)
        sql = result.sql or ""
        return self.record_event(
            {
                "kind": "rewrite",
                "fingerprint": result.fingerprint,
                "sql": sql[:_SQL_SAMPLE_LIMIT],
                "cache_hit": bool(result.cache_hit),
                "uses_view": bool(result.uses_view),
                "views": list(result.view_names),
                "latency_seconds": float(result.latency_seconds),
                "error": result.error,
                "timed_out": bool(result.timed_out),
                "rejected": bool(result.rejected),
                "max_staleness": result.max_staleness,
                "reject_tallies": tallies,
                "preverified_rejects": preverified,
                "candidates_skipped": skipped,
            }
        )

    def _rotate(self) -> None:
        self._handle.close()
        # Shift journal.N -> journal.N+1 from the oldest down, dropping
        # the one past max_files.
        oldest = self.max_files - 1
        overflow = f"{self.path}.{oldest + 1}"
        if os.path.exists(overflow):  # from an earlier, larger max_files
            os.remove(overflow)
        for index in range(oldest, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                target = f"{self.path}.{index + 1}"
                if index + 1 > oldest:
                    os.remove(source)
                else:
                    os.replace(source, target)
        if oldest >= 1:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self._rotations += 1

    # -- introspection / lifecycle ------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "seen": self._seen,
                "written": self._written,
                "rotations": self._rotations,
                "sample_every": self.sample_every,
            }

    def flush(self) -> None:
        """Push buffered events to disk (readers see them immediately)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "WorkloadRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reading and aggregation


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Yield journal events oldest-first across rotated files.

    Rotated files carry higher suffixes the older they are, so the
    scan order is ``journal.N .. journal.1, journal``.  Lines that are
    not valid JSON objects and events with an unknown ``v`` are
    skipped -- a torn final line from a crashed writer or a newer
    schema must not kill aggregation.
    """

    candidates: List[str] = []
    suffix = 1
    while os.path.exists(f"{path}.{suffix}"):
        candidates.append(f"{path}.{suffix}")
        suffix += 1
    candidates.reverse()
    if os.path.exists(path):
        candidates.append(path)
    for filename in candidates:
        with open(filename, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(event, dict):
                    continue
                if event.get("v") != EVENT_VERSION:
                    continue
                yield event


class WorkloadAggregate:
    """A journal folded into advisor- and dashboard-consumable form."""

    def __init__(self) -> None:
        self.events = 0
        self.errors = 0
        self.timed_out = 0
        self.rejected = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.uses_view = 0
        self.bounded = 0
        self.stale_rejects = 0
        self.preverified_rejects = 0
        self.candidates_skipped = 0
        self.reject_funnel: Dict[str, int] = {}
        self.fingerprints: Dict[str, Dict[str, Any]] = {}
        self.latency = DDSketch()
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None

    # -- folding ------------------------------------------------------

    def add(self, event: Dict[str, Any]) -> None:
        self.events += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if self.first_ts is None or ts < self.first_ts:
                self.first_ts = ts
            if self.last_ts is None or ts > self.last_ts:
                self.last_ts = ts
        if event.get("error"):
            self.errors += 1
        if event.get("timed_out"):
            self.timed_out += 1
        if event.get("rejected"):
            self.rejected += 1
        if event.get("max_staleness") is not None:
            self.bounded += 1
        preverified = event.get("preverified_rejects")
        if isinstance(preverified, int):
            self.preverified_rejects += preverified
        skipped = event.get("candidates_skipped")
        if isinstance(skipped, int):
            self.candidates_skipped += skipped
        latency = event.get("latency_seconds")
        if isinstance(latency, (int, float)) and latency > 0:
            self.latency.record(float(latency))
        fingerprint = event.get("fingerprint")
        if fingerprint is None:
            return
        hit = bool(event.get("cache_hit"))
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if event.get("uses_view"):
            self.uses_view += 1
        tallies = event.get("reject_tallies") or {}
        if isinstance(tallies, dict):
            funnel = self.reject_funnel
            for reason, count in tallies.items():
                if isinstance(count, int):
                    funnel[reason] = funnel.get(reason, 0) + count
                    if reason == "STALE":
                        self.stale_rejects += count
        entry = self.fingerprints.get(fingerprint)
        if entry is None:
            entry = {
                "count": 0,
                "sample_sql": event.get("sql", ""),
                "cache_hits": 0,
                "uses_view": 0,
                "views": {},
            }
            self.fingerprints[fingerprint] = entry
        entry["count"] += 1
        if hit:
            entry["cache_hits"] += 1
        if event.get("uses_view"):
            entry["uses_view"] += 1
        for view in event.get("views") or ():
            entry["views"][view] = entry["views"].get(view, 0) + 1

    # -- queries ------------------------------------------------------

    def ranked_rejects(self) -> List[tuple]:
        """Reject reasons, most frequent first (ties break on name so
        the ranking is deterministic)."""

        return sorted(
            self.reject_funnel.items(), key=lambda item: (-item[1], item[0])
        )

    @property
    def hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def top_fingerprints(self, limit: int = 20) -> List[tuple]:
        return sorted(
            self.fingerprints.items(),
            key=lambda item: (-item[1]["count"], item[0]),
        )[:limit]

    def to_advisor_input(self, *, top: int = 100) -> Dict[str, Any]:
        """The aggregate in the shape ``repro.advisor`` consumes: one
        entry per distinct query shape with frequency and sample SQL,
        plus the funnel explaining what blocked rewrites."""

        return {
            "schema_version": EVENT_VERSION,
            "source_events": self.events,
            "window_seconds": (
                (self.last_ts - self.first_ts)
                if self.first_ts is not None and self.last_ts is not None
                else 0.0
            ),
            "queries": [
                {
                    "fingerprint": fingerprint,
                    "count": entry["count"],
                    "sample_sql": entry["sample_sql"],
                    "cache_hits": entry["cache_hits"],
                    "uses_view": entry["uses_view"],
                }
                for fingerprint, entry in self.top_fingerprints(top)
            ],
            "reject_funnel": dict(self.ranked_rejects()),
            "preverified_rejects": self.preverified_rejects,
            "candidates_skipped": self.candidates_skipped,
            "latency": self.latency.snapshot(),
            "cache_hit_rate": self.hit_rate,
        }

    def render(self, *, top: int = 10) -> str:
        """Human-readable workload report."""

        lines = [
            f"{self.events} events "
            f"({self.errors} errors, {self.timed_out} timed out, "
            f"{self.rejected} rejected, {self.bounded} bounded)",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"(hit rate {self.hit_rate:.1%}); "
            f"{self.uses_view} served from views",
        ]
        latency = self.latency.snapshot()
        if latency["count"]:
            lines.append(
                "latency: "
                f"p50 {latency['p50'] * 1e3:.3f} ms, "
                f"p90 {latency['p90'] * 1e3:.3f} ms, "
                f"p99 {latency['p99'] * 1e3:.3f} ms "
                f"over {latency['count']} samples"
            )
        ranked = self.ranked_rejects()
        if ranked:
            total = sum(count for _, count in ranked)
            lines.append(f"reject funnel ({total} rejects):")
            for reason, count in ranked:
                lines.append(f"  {reason:<18} {count:>8}  {count / total:6.1%}")
        if self.preverified_rejects or self.candidates_skipped:
            lines.append(
                f"verification: {self.preverified_rejects} pre-verified "
                f"rejects, {self.candidates_skipped} cost-bound skips"
            )
        tops = self.top_fingerprints(top)
        if tops:
            lines.append(f"top {len(tops)} query shapes:")
            for fingerprint, entry in tops:
                sql = entry["sample_sql"].replace("\n", " ")
                if len(sql) > 60:
                    sql = sql[:57] + "..."
                lines.append(
                    f"  {entry['count']:>6}x  hits={entry['cache_hits']:<6} "
                    f"views={entry['uses_view']:<6} {sql}"
                )
        return "\n".join(lines)


def aggregate_events(events: Iterable[Dict[str, Any]]) -> WorkloadAggregate:
    aggregate = WorkloadAggregate()
    for event in events:
        aggregate.add(event)
    return aggregate


def load_journal(path: str) -> WorkloadAggregate:
    """Read and aggregate a journal (including rotated files)."""

    return aggregate_events(iter_events(path))
