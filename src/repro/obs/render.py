"""Rendering and export of :class:`~repro.obs.trace.RewriteTrace`.

Two consumers:

* ``explain-rewrite`` prints :func:`render_trace` -- a human-readable
  report of the whole rewrite path: timed spans, the per-level filter
  funnel of every match invocation, every candidate's fate (reject
  reason + detail, or the winner's compensation steps), and the final
  cost comparison.
* ``explain-rewrite --json`` (and the CI smoke step) emit
  :func:`trace_to_json`; :func:`validate_trace_dict` checks an exported
  dict against :data:`TRACE_SCHEMA` without any external schema library.

The schema is deliberately minimal -- field names, types, and nesting --
because its job is to freeze the export contract, not to validate
semantics. Bump ``trace_version`` when the shape changes.
"""

from __future__ import annotations

import json

from .trace import RewriteTrace

# A JSON-Schema-like description of RewriteTrace.to_dict(). Types are
# python type tuples; "nullable" admits None; nested dicts describe
# objects, ("list", spec) describes homogeneous arrays.
#
# This is the current (version 3) schema: version 2 exports are the
# same shape minus the per-candidate ``stage`` field the vectorized
# pre-verifier added, and version 1 additionally lacks the top-level
# ``trace_id`` field from the cross-process telemetry pipeline. The
# validator dispatches on the dict's own ``trace_version`` so committed
# v1/v2 fixtures keep validating.
TRACE_SCHEMA: dict = {
    "trace_version": {"type": (int,)},
    "trace_id": {"type": (str,), "nullable": True},
    "sql": {"type": (str,)},
    "cache_hit": {"type": (bool,), "nullable": True},
    "epoch": {"type": (int,), "nullable": True},
    "error": {"type": (str,), "nullable": True},
    "total_seconds": {"type": (int, float)},
    "spans": (
        "list",
        {
            "name": {"type": (str,)},
            "started": {"type": (int, float)},
            "duration": {"type": (int, float)},
            "attributes": {"type": (dict,)},
        },
    ),
    "invocations": (
        "list",
        {
            "registered": {"type": (int,)},
            "candidates": {"type": (int,)},
            "matches": {"type": (int,)},
            "levels": (
                "list",
                {
                    "level": {"type": (str,)},
                    "entering": {"type": (int,)},
                    "survivors": {"type": (int,)},
                    "pruned": ("list", {"type": (str,)}),
                },
            ),
            "funnel": (
                "list",
                {
                    "view": {"type": (str,)},
                    "matched": {"type": (bool,)},
                    "reject_reason": {"type": (str,), "nullable": True},
                    "reject_detail": {"type": (str,)},
                    "compensation": ("list", {"type": (str,)}),
                    "stage": {"type": (str,)},
                },
            ),
        },
    ),
    "plan_alternatives": (
        "list",
        {
            "kind": {"type": (str,)},
            "cost": {"type": (int, float)},
            "views": ("list", {"type": (str,)}),
            "chosen": {"type": (bool,)},
        },
    ),
    "reject_tallies": {"type": (dict,)},
}


def _validate(value, spec, path: str, errors: list[str]) -> None:
    if isinstance(spec, tuple) and spec and spec[0] == "list":
        if not isinstance(value, list):
            errors.append(f"{path}: expected list, got {type(value).__name__}")
            return
        for i, item in enumerate(value):
            _validate(item, spec[1], f"{path}[{i}]", errors)
        return
    if isinstance(spec, dict) and "type" in spec:
        if value is None:
            if not spec.get("nullable"):
                errors.append(f"{path}: null not allowed")
            return
        expected = spec["type"]
        # bool is an int subclass; reject it where int is expected.
        if isinstance(value, bool) and bool not in expected:
            errors.append(f"{path}: expected {expected}, got bool")
            return
        if not isinstance(value, expected):
            errors.append(
                f"{path}: expected "
                f"{'/'.join(t.__name__ for t in expected)}, "
                f"got {type(value).__name__}"
            )
        return
    # An object spec: a dict of field -> spec.
    if not isinstance(value, dict):
        errors.append(f"{path}: expected object, got {type(value).__name__}")
        return
    for name, field_spec in spec.items():
        if name not in value:
            errors.append(f"{path}.{name}: missing")
            continue
        _validate(value[name], field_spec, f"{path}.{name}", errors)
    for name in value:
        if name not in spec:
            errors.append(f"{path}.{name}: unexpected field")


def _without_funnel_stage(schema: dict) -> dict:
    """The given schema minus the per-candidate ``stage`` funnel field."""
    derived = dict(schema)
    kind, invocation_spec = schema["invocations"]
    invocation_spec = dict(invocation_spec)
    funnel_kind, funnel_spec = invocation_spec["funnel"]
    invocation_spec["funnel"] = (
        funnel_kind,
        {name: spec for name, spec in funnel_spec.items() if name != "stage"},
    )
    derived["invocations"] = (kind, invocation_spec)
    return derived


# Version 2 lacked the funnel ``stage`` field; version 1 additionally
# lacked trace_id. Kept as distinct specs (rather than marking the
# fields optional) so a current export that *drops* a field still fails
# validation.
TRACE_SCHEMA_V2: dict = _without_funnel_stage(TRACE_SCHEMA)
TRACE_SCHEMA_V1: dict = {
    name: spec for name, spec in TRACE_SCHEMA_V2.items() if name != "trace_id"
}


def validate_trace_dict(data: dict) -> list[str]:
    """Check an exported trace dict against its schema version.

    Dispatches on the dict's own ``trace_version``: version-1 exports
    (from before the cross-process telemetry pipeline) validate against
    the v1 schema, version-2 exports (before the vectorized
    pre-verifier) against the v2 schema, everything else against the
    current one. Returns the list of mismatches (empty = valid).
    """
    errors: list[str] = []
    version = data.get("trace_version")
    if version == 1:
        schema = TRACE_SCHEMA_V1
    elif version == 2:
        schema = TRACE_SCHEMA_V2
    else:
        schema = TRACE_SCHEMA
    _validate(data, schema, "trace", errors)
    return errors


def trace_to_json(trace: RewriteTrace, indent: int | None = 2) -> str:
    """The trace serialized as schema-conformant JSON."""
    return json.dumps(trace.to_dict(), indent=indent, sort_keys=False)


# ---------------------------------------------------------------------------
# Human-readable report
# ---------------------------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_trace(trace: RewriteTrace) -> str:
    """The full rewrite-path funnel report for one traced request."""
    lines: list[str] = [f"query: {trace.sql.strip()}"]
    if trace.error is not None:
        lines.append(f"error: {trace.error}")
    meta: list[str] = []
    if trace.epoch is not None:
        meta.append(f"epoch {trace.epoch}")
    if trace.cache_hit is not None:
        meta.append("cache hit" if trace.cache_hit else "cache miss")
    meta.append(f"total {_format_seconds(trace.total_seconds)}")
    lines.append("  " + ", ".join(meta))

    if trace.spans:
        lines.append("stages:")
        for span in trace.spans:
            suffix = ""
            if span.attributes:
                rendered = ", ".join(
                    f"{key}={value}" for key, value in span.attributes.items()
                )
                suffix = f"  ({rendered})"
            lines.append(
                f"  {span.name:12s} {_format_seconds(span.duration):>9s}"
                f"{suffix}"
            )

    for number, invocation in enumerate(trace.invocations, start=1):
        extras = ""
        preverified = invocation.preverified_rejects
        skipped = invocation.skipped
        if preverified or skipped:
            parts = []
            if preverified:
                parts.append(f"{preverified} pre-verified rejects")
            if skipped:
                parts.append(f"{skipped} skipped")
            extras = f"  ({', '.join(parts)})"
        lines.append(
            f"match invocation {number}: {invocation.registered} registered "
            f"-> {invocation.candidates} candidates "
            f"-> {invocation.matches} matched{extras}"
        )
        for level in invocation.levels:
            pruned = ""
            if level.pruned:
                shown = ", ".join(level.pruned[:6])
                if len(level.pruned) > 6:
                    shown += f", ... +{len(level.pruned) - 6} more"
                pruned = f"  pruned: {shown}"
            lines.append(
                f"  level {level.level:22s} {level.entering:5d} -> "
                f"{level.survivors:5d}{pruned}"
            )
        for candidate in invocation.funnel:
            if candidate.matched:
                lines.append(f"  + {candidate.view}: MATCHED")
                for step in candidate.compensation:
                    lines.append(f"      compensation: {step}")
            elif candidate.stage == "skipped":
                lines.append(
                    f"  ~ {candidate.view}: skipped (cost bound reached)"
                )
            else:
                detail = (
                    f" ({candidate.reject_detail})"
                    if candidate.reject_detail
                    else ""
                )
                preverified = (
                    " [pre-verified]"
                    if candidate.stage == "preverify"
                    else ""
                )
                lines.append(
                    f"  - {candidate.view}: rejected "
                    f"{candidate.reject_reason}{detail}{preverified}"
                )

    tallies = trace.reject_tallies()
    if tallies:
        lines.append("reject reasons:")
        for reason, count in sorted(tallies.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {reason.lower():20s} {count:5d}")

    if trace.plan_alternatives:
        lines.append("cost comparison:")
        for alternative in trace.plan_alternatives:
            marker = "*" if alternative.chosen else " "
            views = (
                f" [{', '.join(alternative.views)}]"
                if alternative.views
                else ""
            )
            lines.append(
                f"  {marker} {alternative.kind:16s} "
                f"cost={alternative.cost:12.1f}{views}"
            )
        chosen = trace.chosen_alternative()
        if chosen is not None:
            what = (
                f"view rewrite over {', '.join(chosen.views)}"
                if chosen.views
                else "the base-table plan"
            )
            lines.append(f"  chosen: {what}")
    return "\n".join(lines)


__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_V1",
    "TRACE_SCHEMA_V2",
    "render_trace",
    "trace_to_json",
    "validate_trace_dict",
]
