"""Mergeable constant-memory percentile sketch (DDSketch-style).

The serving layer's ``LatencyHistogram`` answers percentile queries
from a fixed log-spaced bucket table, which is fine inside one
process but cannot absorb measurements taken in forked matching
workers: the child's buckets die with the child.  ``DDSketch`` fixes
both halves of that problem:

* **Relative-error guarantee.**  Values are mapped to geometric
  buckets ``(gamma**(i-1), gamma**i]`` with
  ``gamma = (1 + alpha) / (1 - alpha)``; reporting the bucket's
  geometric midpoint keeps every quantile estimate within a relative
  error of ``alpha`` of the true sample quantile (Masson, Rim & Lee,
  VLDB 2019).
* **Lossless merge.**  Two sketches with the same ``alpha`` share a
  bucket universe, so merging is bucket-wise count addition -- the
  merged sketch is byte-identical to one built from the concatenated
  samples.  That is the property the cross-process telemetry pipeline
  leans on: workers serialize their sketches with :meth:`to_dict`,
  the parent rebuilds them with :meth:`from_dict` and merges.
* **Constant memory.**  The bucket map is bounded by ``max_buckets``;
  on overflow the lowest buckets collapse together, trading accuracy
  at the far-left tail (the quantiles nobody alerts on) for a hard
  memory ceiling.

The sketch is deliberately dependency-free and holds plain ints and
floats only, so instances pickle cheaply across the fork boundary and
serialize to JSON for the workload journal.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping

__all__ = ["DDSketch"]

_SERIAL_VERSION = 1

# Values below this are indistinguishable from zero for latency
# purposes (one nanosecond); they land in the dedicated zero bucket
# rather than in a deeply negative log index.
_MIN_TRACKABLE = 1e-9


class DDSketch:
    """Quantile sketch with bounded relative error and lossless merge."""

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_max_buckets",
        "_buckets",
        "_zero_count",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(
        self,
        relative_accuracy: float = 0.01,
        *,
        max_buckets: int = 2048,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        if max_buckets < 2:
            raise ValueError("max_buckets must be at least 2")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._max_buckets = max_buckets
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # -- recording ----------------------------------------------------

    def record(self, value: float, weight: int = 1) -> None:
        """Fold ``value`` into the sketch.

        Negative values are clamped to zero: the sketch tracks
        durations and sizes, where a negative reading is clock skew,
        not signal.
        """

        if weight <= 0:
            return
        if value < 0.0:
            value = 0.0
        self.count += weight
        self.total += value * weight
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value < _MIN_TRACKABLE:
            self._zero_count += weight
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + weight
        if len(buckets) > self._max_buckets:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Fold the smallest bucket into its neighbour above.

        Collapsing only ever the lowest index preserves accuracy at
        the high quantiles (p90/p99), which are the ones SLOs gate on.
        """

        ordered = sorted(self._buckets)
        lowest, second = ordered[0], ordered[1]
        self._buckets[second] += self._buckets.pop(lowest)

    # -- queries ------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0 < q <= 100 accepted as
        percent, matching ``LatencyHistogram.percentile``)."""

        if self.count == 0:
            return 0.0
        if q > 1.0:
            q = q / 100.0
        q = min(max(q, 0.0), 1.0)
        rank = max(0, math.ceil(q * self.count) - 1)
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                estimate = (
                    2.0 * self._gamma**index / (self._gamma + 1.0)
                )
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_count(self) -> int:
        return len(self._buckets) + (1 if self._zero_count else 0)

    # -- merge / serialization ---------------------------------------

    def merge(self, other: "DDSketch") -> None:
        """Add ``other``'s counts into this sketch (lossless when the
        accuracies match)."""

        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self._zero_count += other._zero_count
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        buckets = self._buckets
        for index, weight in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + weight
        while len(buckets) > self._max_buckets:
            self._collapse_lowest()

    def merged(self, others: Iterable["DDSketch"]) -> "DDSketch":
        for other in others:
            self.merge(other)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON- and pickle-safe wire form (bucket keys are strings so
        the dict round-trips through ``json.dumps``)."""

        return {
            "v": _SERIAL_VERSION,
            "relative_accuracy": self.relative_accuracy,
            "max_buckets": self._max_buckets,
            "zero_count": self._zero_count,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {str(index): n for index, n in self._buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DDSketch":
        sketch = cls(
            float(data["relative_accuracy"]),
            max_buckets=int(data.get("max_buckets", 2048)),
        )
        sketch._zero_count = int(data.get("zero_count", 0))
        sketch.count = int(data.get("count", 0))
        sketch.total = float(data.get("sum", 0.0))
        minimum = data.get("min")
        maximum = data.get("max")
        sketch.minimum = math.inf if minimum is None else float(minimum)
        sketch.maximum = -math.inf if maximum is None else float(maximum)
        sketch._buckets = {
            int(index): int(n) for index, n in data.get("buckets", {}).items()
        }
        return sketch

    def snapshot(self) -> Dict[str, float]:
        """Summary in the same shape ``LatencyHistogram.snapshot``
        uses, so reports and dashboards can render either."""

        if self.count == 0:
            return {
                "count": 0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DDSketch(alpha={self.relative_accuracy}, count={self.count}, "
            f"buckets={len(self._buckets)})"
        )
