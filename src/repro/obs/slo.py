"""SLO objectives and multi-window burn-rate tracking.

The serving tier's ROADMAP item ("SLO-gated serving") needs a way to
say "p99 rewrite latency under 5 ms, error rate under 0.1%" and know
*how fast the error budget is burning* -- a single error-rate gauge
cannot distinguish a slow leak from an outage.  The standard answer
(Google SRE workbook) is multi-window burn rates: the ratio of the
observed bad-event fraction to the budgeted fraction over several
sliding windows (fast windows catch fires, slow windows catch leaks).

``SloTracker`` keeps a ring of fixed-width time buckets (good/bad/
latency-violation counts) and computes, per configured window::

    burn_rate = bad_fraction(window) / budget_fraction

``burn_rate == 1.0`` means the budget is being spent exactly at the
sustainable rate; ``14.4`` with a 0.1% budget means the whole month's
budget disappears in ~2 hours.  A request is *bad* when it errored or
exceeded the latency target -- both count against the same budget, so
the tracker answers the only question the gate asks: "is this tier
serving acceptably right now?"

The clock is injected so tests drive time explicitly; production uses
``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SloObjectives", "SloTracker"]

# Bucket width for the time ring. All windows are multiples of this.
_BUCKET_SECONDS = 5.0


@dataclass(frozen=True)
class SloObjectives:
    """Service-level objectives for the rewrite-serving tier.

    ``target_p99_seconds``
        A request slower than this counts against the budget even if
        it succeeded.
    ``target_error_budget``
        Budgeted bad-event fraction (0.001 = 99.9% of requests good).
    ``windows_seconds``
        Sliding windows to compute burn rates over, shortest first.
    """

    target_p99_seconds: float = 0.005
    target_error_budget: float = 0.001
    windows_seconds: Tuple[float, ...] = (60.0, 300.0, 3600.0)

    def __post_init__(self) -> None:
        if self.target_p99_seconds <= 0:
            raise ValueError("target_p99_seconds must be positive")
        if not 0.0 < self.target_error_budget < 1.0:
            raise ValueError("target_error_budget must be in (0, 1)")
        if not self.windows_seconds:
            raise ValueError("at least one window is required")


@dataclass
class _Bucket:
    start: float
    good: int = 0
    errors: int = 0
    slow: int = 0

    @property
    def bad(self) -> int:
        return self.errors + self.slow

    @property
    def total(self) -> int:
        return self.good + self.errors + self.slow


class SloTracker:
    """Sliding-window burn-rate computation over a time-bucket ring."""

    def __init__(
        self,
        objectives: SloObjectives,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.objectives = objectives
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: List[_Bucket] = []
        # Ring depth: enough buckets to cover the longest window.
        self._max_buckets = (
            int(max(objectives.windows_seconds) / _BUCKET_SECONDS) + 2
        )
        self._total_good = 0
        self._total_errors = 0
        self._total_slow = 0

    # -- recording ----------------------------------------------------

    def record(self, latency_seconds: float, *, error: bool = False) -> None:
        """Classify one request against the objectives."""

        now = self._clock()
        slow = (not error) and latency_seconds > self.objectives.target_p99_seconds
        with self._lock:
            bucket = self._current_bucket(now)
            if error:
                bucket.errors += 1
                self._total_errors += 1
            elif slow:
                bucket.slow += 1
                self._total_slow += 1
            else:
                bucket.good += 1
                self._total_good += 1

    def _current_bucket(self, now: float) -> _Bucket:
        start = now - (now % _BUCKET_SECONDS)
        if self._buckets and self._buckets[-1].start == start:
            return self._buckets[-1]
        bucket = _Bucket(start=start)
        self._buckets.append(bucket)
        if len(self._buckets) > self._max_buckets:
            del self._buckets[: len(self._buckets) - self._max_buckets]
        return bucket

    # -- queries ------------------------------------------------------

    def _window_counts(self, window: float, now: float) -> Tuple[int, int]:
        cutoff = now - window
        bad = 0
        total = 0
        for bucket in self._buckets:
            if bucket.start + _BUCKET_SECONDS <= cutoff:
                continue
            bad += bucket.bad
            total += bucket.total
        return bad, total

    def burn_rates(self) -> Dict[float, float]:
        """``{window_seconds: burn_rate}`` for every configured
        window.  Windows with no traffic report 0.0."""

        now = self._clock()
        budget = self.objectives.target_error_budget
        with self._lock:
            rates: Dict[float, float] = {}
            for window in self.objectives.windows_seconds:
                bad, total = self._window_counts(window, now)
                if total == 0:
                    rates[window] = 0.0
                else:
                    rates[window] = (bad / total) / budget
            return rates

    def snapshot(self) -> Dict[str, Any]:
        rates = self.burn_rates()
        with self._lock:
            total = self._total_good + self._total_errors + self._total_slow
            return {
                "objectives": {
                    "target_p99_seconds": self.objectives.target_p99_seconds,
                    "target_error_budget": self.objectives.target_error_budget,
                    "windows_seconds": list(self.objectives.windows_seconds),
                },
                "requests": total,
                "good": self._total_good,
                "errors": self._total_errors,
                "slow": self._total_slow,
                "bad_fraction": (
                    (self._total_errors + self._total_slow) / total
                    if total
                    else 0.0
                ),
                "burn_rates": {
                    str(int(window)): rate for window, rate in rates.items()
                },
            }

    def to_prometheus(self, prefix: str = "repro") -> str:
        snap = self.snapshot()
        lines = [
            f"# TYPE {prefix}_slo_requests_total counter",
            f"{prefix}_slo_requests_total {snap['requests']}",
            f"# TYPE {prefix}_slo_bad_total counter",
            f"{prefix}_slo_bad_total {snap['errors'] + snap['slow']}",
            f"# TYPE {prefix}_slo_burn_rate gauge",
        ]
        for window, rate in sorted(
            snap["burn_rates"].items(), key=lambda item: int(item[0])
        ):
            lines.append(
                f'{prefix}_slo_burn_rate{{window_seconds="{window}"}} '
                f"{rate:.6g}"
            )
        return "\n".join(lines) + "\n"
