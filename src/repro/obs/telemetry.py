"""Cross-process telemetry: trace context, worker snapshots, merge hub.

The tracer in :mod:`repro.obs.trace` is single-process: spans land on
a contextvar-scoped ``RewriteTracer`` that dies with the process.
That left two blind spots -- the forked matching workers in
:mod:`repro.core.parallel` and the CDC applier, both of which do real
work (candidate filtering, delta merges) that never reached the
server's metrics.  This module closes them with three pieces:

``TraceContext``
    A compact, picklable identity for one request: trace id, sampling
    decision, optional deadline.  It rides a contextvar in the parent
    and is captured by value into worker closures, so a span recorded
    in a forked child can name the same trace id as the parent's
    tracer and the two halves stitch together afterwards.

``WorkerTelemetry`` / ``TelemetrySnapshot``
    The child-side collector and its wire form.  A worker records
    counters, sketch samples, and spans locally, then returns
    ``snapshot().to_dict()`` -- plain dicts of ints/floats/strings --
    alongside its match results through the existing pickle frame
    protocol.  Nothing new crosses the fork boundary.

``TelemetryHub``
    The parent-side mergeable registry.  Sketches are
    :class:`~repro.obs.sketch.DDSketch`, so merging a worker snapshot
    is bucket-wise addition and the merged percentiles equal a
    single-process run over the same samples.  The hub renders to the
    Prometheus text format (counters as ``_total``, sketches as
    summaries with quantile labels) and feeds the ``repro-top``
    dashboard.

A process-global hub (``telemetry_hub()``) is the default sink so
instrumented code stays always-on without plumbing; the ``ViewServer``
installs its own hub instance for isolation.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Tuple

from .sketch import DDSketch

__all__ = [
    "TraceContext",
    "current_trace_context",
    "trace_context",
    "TelemetrySnapshot",
    "WorkerTelemetry",
    "TelemetryHub",
    "telemetry_hub",
    "set_telemetry_hub",
]

SNAPSHOT_VERSION = 1

# Default relative accuracy for every latency sketch in the pipeline.
# 1% keeps p99 estimates within a microsecond at millisecond scale
# while a sketch stays under ~2 KB.
DEFAULT_ACCURACY = 0.01

_SPAN_RING_CAPACITY = 512


# ---------------------------------------------------------------------------
# Trace context


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request, carried across threads and forks.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp in the
    *originating* process.  Forked children share the parent's
    monotonic clock on Linux, so the deadline stays meaningful across
    the fork boundary this codebase parallelizes over.
    """

    trace_id: str
    sampled: bool = True
    deadline: Optional[float] = None

    @classmethod
    def new(
        cls, *, sampled: bool = True, deadline: Optional[float] = None
    ) -> "TraceContext":
        # 64 random bits, hex -- the W3C traceparent convention scaled
        # down; uniqueness per process lifetime is all stitching needs.
        trace_id = os.urandom(8).hex()
        return cls(trace_id=trace_id, sampled=sampled, deadline=deadline)

    def remaining(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def to_wire(self) -> Tuple[str, bool, Optional[float]]:
        return (self.trace_id, self.sampled, self.deadline)

    @classmethod
    def from_wire(
        cls, wire: Tuple[str, bool, Optional[float]]
    ) -> "TraceContext":
        trace_id, sampled, deadline = wire
        return cls(trace_id=trace_id, sampled=sampled, deadline=deadline)


_CURRENT_CONTEXT: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_trace_context() -> Optional[TraceContext]:
    """The trace context active on this thread, or ``None``."""

    return _CURRENT_CONTEXT.get()


@contextlib.contextmanager
def trace_context(context: TraceContext) -> Iterator[TraceContext]:
    """Install ``context`` as the current trace context for the block."""

    token = _CURRENT_CONTEXT.set(context)
    try:
        yield context
    finally:
        _CURRENT_CONTEXT.reset(token)


# ---------------------------------------------------------------------------
# Worker-side collection


@dataclass
class TelemetrySnapshot:
    """Wire form of one process's telemetry since its last snapshot.

    Everything inside is JSON-safe (ints, floats, strings, plain
    dicts), so a snapshot serializes through both the worker pool's
    pickle frames and the workload journal unchanged.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    sketches: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v": SNAPSHOT_VERSION,
            "counters": dict(self.counters),
            "sketches": {name: dict(d) for name, d in self.sketches.items()},
            "spans": [dict(span) for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySnapshot":
        return cls(
            counters={
                str(k): int(v) for k, v in data.get("counters", {}).items()
            },
            sketches={
                str(k): dict(v) for k, v in data.get("sketches", {}).items()
            },
            spans=[dict(span) for span in data.get("spans", [])],
        )


class WorkerTelemetry:
    """Single-threaded collector used inside forked workers.

    No locks: a worker is one process running one function.  The
    parent never touches the instance -- only the snapshot dict that
    comes back through the result frame.
    """

    __slots__ = ("_counters", "_sketches", "_spans", "_accuracy")

    def __init__(self, *, relative_accuracy: float = DEFAULT_ACCURACY) -> None:
        self._counters: Dict[str, int] = {}
        self._sketches: Dict[str, DDSketch] = {}
        self._spans: List[Dict[str, Any]] = []
        self._accuracy = relative_accuracy

    def counter(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def sketch(self, name: str) -> DDSketch:
        sketch = self._sketches.get(name)
        if sketch is None:
            sketch = DDSketch(self._accuracy)
            self._sketches[name] = sketch
        return sketch

    def record(self, name: str, value: float) -> None:
        self.sketch(name).record(value)

    def record_span(
        self,
        name: str,
        duration: float,
        *,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        span: Dict[str, Any] = {"name": name, "duration": duration}
        if trace_id is not None:
            span["trace_id"] = trace_id
        if attributes:
            span["attributes"] = attributes
        self._spans.append(span)

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            counters=dict(self._counters),
            sketches={
                name: sketch.to_dict()
                for name, sketch in self._sketches.items()
            },
            spans=list(self._spans),
        )


# ---------------------------------------------------------------------------
# Parent-side merge hub


class TelemetryHub:
    """Thread-safe mergeable telemetry registry.

    In-process instrumentation calls :meth:`increment` / :meth:`record`
    directly; the worker pool and CDC applier merge whole
    :class:`TelemetrySnapshot` payloads with :meth:`merge_snapshot`.
    Reads (:meth:`snapshot`, :meth:`to_prometheus`) take the same lock
    as merges, so a scrape never observes a half-merged sketch.
    """

    def __init__(self, *, relative_accuracy: float = DEFAULT_ACCURACY) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._sketches: Dict[str, DDSketch] = {}
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=_SPAN_RING_CAPACITY)
        self._accuracy = relative_accuracy
        self._merged_snapshots = 0

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                sketch = DDSketch(self._accuracy)
                self._sketches[name] = sketch
            sketch.record(value)

    def record_span(
        self,
        name: str,
        duration: float,
        *,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        span: Dict[str, Any] = {"name": name, "duration": duration}
        if trace_id is not None:
            span["trace_id"] = trace_id
        if attributes:
            span["attributes"] = attributes
        with self._lock:
            self._spans.append(span)

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a worker's snapshot into the hub (lossless for
        sketches with matching accuracy)."""

        with self._lock:
            self._merged_snapshots += 1
            counters = self._counters
            for name, amount in snapshot.counters.items():
                counters[name] = counters.get(name, 0) + amount
            for name, payload in snapshot.sketches.items():
                incoming = DDSketch.from_dict(payload)
                existing = self._sketches.get(name)
                if existing is None:
                    self._sketches[name] = incoming
                else:
                    existing.merge(incoming)
            self._spans.extend(snapshot.spans)

    def merge_snapshot_dict(self, data: Mapping[str, Any]) -> None:
        self.merge_snapshot(TelemetrySnapshot.from_dict(data))

    def export_snapshot(self) -> TelemetrySnapshot:
        """The hub's whole contents as a wire snapshot.

        The forked batch paths point a child's sinks at a fresh hub,
        do the work, and ship ``export_snapshot().to_dict()`` back for
        the parent to :meth:`merge_snapshot` -- hub-in-child, merge-in-
        parent, with only plain dicts crossing the pipe.
        """

        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                sketches={
                    name: sketch.to_dict()
                    for name, sketch in self._sketches.items()
                },
                spans=list(self._spans),
            )

    # -- reads --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def sketch_snapshots(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                name: sketch.snapshot()
                for name, sketch in self._sketches.items()
            }

    def sketch(self, name: str) -> Optional[DDSketch]:
        """A copy of the named sketch (safe to read without racing
        concurrent merges), or ``None``."""

        with self._lock:
            sketch = self._sketches.get(name)
            if sketch is None:
                return None
            return DDSketch.from_dict(sketch.to_dict())

    def spans(self) -> Tuple[Dict[str, Any], ...]:
        with self._lock:
            return tuple(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "sketches": {
                    name: sketch.snapshot()
                    for name, sketch in self._sketches.items()
                },
                "merged_snapshots": self._merged_snapshots,
                "spans_buffered": len(self._spans),
            }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition: counters as ``_total``,
        sketches as summaries with ``quantile`` labels."""

        lines: List[str] = []
        with self._lock:
            for name in sorted(self._counters):
                metric = f"{prefix}_{_sanitize(name)}_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {self._counters[name]}")
            for name in sorted(self._sketches):
                sketch = self._sketches[name]
                metric = f"{prefix}_{_sanitize(name)}"
                lines.append(f"# TYPE {metric} summary")
                for q in (0.5, 0.9, 0.99):
                    value = sketch.percentile(q)
                    lines.append(
                        f'{metric}{{quantile="{q}"}} {_format(value)}'
                    )
                lines.append(f"{metric}_sum {_format(sketch.total)}")
                lines.append(f"{metric}_count {sketch.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._sketches.clear()
            self._spans.clear()
            self._merged_snapshots = 0


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    return "".join(out)


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".9g")


# ---------------------------------------------------------------------------
# Process-global default hub

_GLOBAL_HUB = TelemetryHub()
_GLOBAL_LOCK = threading.Lock()


def telemetry_hub() -> TelemetryHub:
    """The process-global hub instrumented code falls back to when no
    explicit sink was injected."""

    return _GLOBAL_HUB


def set_telemetry_hub(hub: TelemetryHub) -> TelemetryHub:
    """Swap the process-global hub; returns the previous one (tests
    use this to isolate)."""

    global _GLOBAL_HUB
    with _GLOBAL_LOCK:
        previous = _GLOBAL_HUB
        _GLOBAL_HUB = hub
    return previous
