"""Rewrite-path tracing: one :class:`RewriteTrace` per request.

The serving layer and the ``explain-rewrite`` CLI need to answer two
questions the aggregate metrics cannot: *where did each candidate view
die* (which filter-tree level pruned it, or which subsumption test
rejected it and why) and *what did the winning rewrite cost to build*
(compensation steps, cost comparison against the base plan). This module
records exactly that, as plain dataclasses that serialize to a stable
JSON shape (see :mod:`repro.obs.render` for the schema).

Design constraints, in priority order:

1. **Zero-cost when off.** Every instrumented hot path does one
   ``current_tracer()`` contextvar read and one attribute test
   (``tracer.active``); with the module-level :data:`NULL_TRACER`
   installed -- the default -- nothing else happens. The hot-path
   benchmark gate (``bench-hotpath --check-overhead``) holds this to
   within a few percent of the pre-instrumentation baseline.
2. **Contextvar-scoped.** A tracer is installed for one request on one
   thread (or task); concurrent requests under the serving layer never
   see each other's spans. :func:`activate` returns a token for
   :func:`deactivate`, and the :func:`tracing` context manager wraps the
   pair.
3. **Sampling-friendly.** :class:`TraceSampler` picks every N-th request
   deterministically (no RNG on the hot path, reproducible in tests).

The tracer API is intentionally write-only and forgiving: hooks accept
whatever the call site already has (``MatchResult`` lists, filter trees)
and do their own summarizing, so instrumented modules carry no
trace-model knowledge beyond the hook names.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from .telemetry import current_trace_context

#: Version stamped on every exported trace dict. History:
#:
#: * 1 -- initial shape (PR 3).
#: * 2 -- cross-process telemetry: top-level ``trace_id`` (nullable;
#:   set when a :class:`~repro.obs.telemetry.TraceContext` was active)
#:   so spans recorded in forked matching workers and the CDC applier
#:   stitch to the request trace they belong to.
#: * 3 -- vectorized verification: every funnel entry carries a
#:   ``stage`` ("verify" = full ``match_view`` walk, "preverify" =
#:   rejected by the columnar pre-verifier sweep, "skipped" = never
#:   verified because the optimizer's cost bound proved no cheaper plan
#:   was reachable), so pre-verifier rejects and early terminations are
#:   distinct funnel lines.
#:
#: The validator in :mod:`repro.obs.render` accepts all versions.
TRACE_VERSION = 3


# ---------------------------------------------------------------------------
# Trace model
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed stage of a request (parse, fingerprint, cache, optimize)."""

    name: str
    started: float          # seconds since the trace began
    duration: float = 0.0   # seconds
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "started": self.started,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


@dataclass
class FilterLevelTrace:
    """One filter-tree level's narrowing step for one match invocation."""

    level: str
    entering: int
    survivors: int
    pruned: tuple[str, ...] = ()  # names of the views eliminated here

    @property
    def pruned_count(self) -> int:
        return self.entering - self.survivors

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "entering": self.entering,
            "survivors": self.survivors,
            "pruned": list(self.pruned),
        }


@dataclass
class CandidateTrace:
    """One candidate view's fate in the full matching tests.

    Either ``matched`` with the compensation summary of the substitute,
    or rejected with the :class:`~repro.core.matching.RejectReason` name
    and its detail string. ``stage`` (schema version 3) says how the
    verdict was reached: ``"verify"`` is the full ``match_view`` walk,
    ``"preverify"`` a columnar pre-verifier rejection, ``"skipped"`` a
    candidate the optimizer's cost bound never verified (neither matched
    nor rejected).
    """

    view: str
    matched: bool
    reject_reason: str | None = None
    reject_detail: str = ""
    compensation: tuple[str, ...] = ()
    stage: str = "verify"

    def to_dict(self) -> dict:
        return {
            "view": self.view,
            "matched": self.matched,
            "reject_reason": self.reject_reason,
            "reject_detail": self.reject_detail,
            "compensation": list(self.compensation),
            "stage": self.stage,
        }


@dataclass
class MatchInvocationTrace:
    """One view-matching rule invocation: filter funnel + candidate fates."""

    registered: int
    candidates: int
    levels: tuple[FilterLevelTrace, ...] = ()
    funnel: tuple[CandidateTrace, ...] = ()

    @property
    def matches(self) -> int:
        return sum(1 for c in self.funnel if c.matched)

    @property
    def preverified_rejects(self) -> int:
        return sum(1 for c in self.funnel if c.stage == "preverify")

    @property
    def skipped(self) -> int:
        return sum(1 for c in self.funnel if c.stage == "skipped")

    def to_dict(self) -> dict:
        return {
            "registered": self.registered,
            "candidates": self.candidates,
            "matches": self.matches,
            "levels": [level.to_dict() for level in self.levels],
            "funnel": [candidate.to_dict() for candidate in self.funnel],
        }


@dataclass
class PlanAlternative:
    """One costed plan alternative in the optimizer's final comparison."""

    kind: str               # "base", "view", or "preaggregation"
    cost: float
    views: tuple[str, ...] = ()
    chosen: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cost": self.cost,
            "views": list(self.views),
            "chosen": self.chosen,
        }


@dataclass
class RewriteTrace:
    """Everything recorded about one traced rewrite request."""

    sql: str
    spans: list[Span] = field(default_factory=list)
    invocations: list[MatchInvocationTrace] = field(default_factory=list)
    plan_alternatives: list[PlanAlternative] = field(default_factory=list)
    cache_hit: bool | None = None
    epoch: int | None = None
    error: str | None = None
    total_seconds: float = 0.0
    # The request's cross-process trace id (schema version 2): worker
    # and CDC spans carry the same id in their attributes, so a stitched
    # trace is recognizable even after the spans crossed a fork.
    trace_id: str | None = None

    def reject_tallies(self) -> dict[str, int]:
        """RejectReason-name histogram across every invocation's funnel."""
        tallies: dict[str, int] = {}
        for invocation in self.invocations:
            for candidate in invocation.funnel:
                if candidate.reject_reason is not None:
                    tallies[candidate.reject_reason] = (
                        tallies.get(candidate.reject_reason, 0) + 1
                    )
        return tallies

    def chosen_alternative(self) -> PlanAlternative | None:
        for alternative in self.plan_alternatives:
            if alternative.chosen:
                return alternative
        return None

    def to_dict(self) -> dict:
        return {
            "trace_version": TRACE_VERSION,
            "trace_id": self.trace_id,
            "sql": self.sql,
            "cache_hit": self.cache_hit,
            "epoch": self.epoch,
            "error": self.error,
            "total_seconds": self.total_seconds,
            "spans": [span.to_dict() for span in self.spans],
            "invocations": [inv.to_dict() for inv in self.invocations],
            "plan_alternatives": [
                alt.to_dict() for alt in self.plan_alternatives
            ],
            "reject_tallies": self.reject_tallies(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RewriteTrace":
        """Rebuild a trace from its exported dict, any schema version.

        Version-1 exports simply lack ``trace_id``; every other field
        is shared, so old journals and committed fixtures keep
        rendering after the version bump.
        """
        return cls(
            sql=data.get("sql", ""),
            cache_hit=data.get("cache_hit"),
            epoch=data.get("epoch"),
            error=data.get("error"),
            total_seconds=data.get("total_seconds", 0.0),
            trace_id=data.get("trace_id"),
            spans=[
                Span(
                    name=span["name"],
                    started=span.get("started", 0.0),
                    duration=span.get("duration", 0.0),
                    attributes=dict(span.get("attributes", {})),
                )
                for span in data.get("spans", [])
            ],
            invocations=[
                MatchInvocationTrace(
                    registered=inv.get("registered", 0),
                    candidates=inv.get("candidates", 0),
                    levels=tuple(
                        FilterLevelTrace(
                            level=level["level"],
                            entering=level.get("entering", 0),
                            survivors=level.get("survivors", 0),
                            pruned=tuple(level.get("pruned", ())),
                        )
                        for level in inv.get("levels", [])
                    ),
                    funnel=tuple(
                        CandidateTrace(
                            view=candidate.get("view", "<unnamed>"),
                            matched=candidate.get("matched", False),
                            reject_reason=candidate.get("reject_reason"),
                            reject_detail=candidate.get("reject_detail", ""),
                            compensation=tuple(
                                candidate.get("compensation", ())
                            ),
                            stage=candidate.get("stage", "verify"),
                        )
                        for candidate in inv.get("funnel", [])
                    ),
                )
                for inv in data.get("invocations", [])
            ],
            plan_alternatives=[
                PlanAlternative(
                    kind=alt.get("kind", "base"),
                    cost=alt.get("cost", 0.0),
                    views=tuple(alt.get("views", ())),
                    chosen=alt.get("chosen", False),
                )
                for alt in data.get("plan_alternatives", [])
            ],
        )


# ---------------------------------------------------------------------------
# Tracers
# ---------------------------------------------------------------------------


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def annotate(self, **attributes) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer installed by default.

    Contract (relied on by every instrumented module): ``active`` is
    ``False`` and every hook is a no-op safe to call from any thread.
    Instrumented code tests ``tracer.active`` before doing *any*
    trace-only work -- summarizing results, attributing filter levels --
    so the disabled cost is the contextvar read plus one attribute test.
    """

    __slots__ = ()
    active = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, duration: float, **attributes) -> None:
        return None

    def on_filter_tree(self, tree, query, candidates) -> None:
        return None

    def on_match_invocation(self, registered, candidates, results) -> None:
        return None

    def on_plan_choice(self, alternatives) -> None:
        return None


NULL_TRACER = NullTracer()


class _RecordedSpan:
    """Context manager that appends a timed :class:`Span` on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RewriteTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "_RecordedSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self._span.duration = self._tracer.clock() - (
            self._span.started + self._tracer.epoch_started
        )

    def annotate(self, **attributes) -> None:
        self._span.attributes.update(attributes)


class RewriteTracer:
    """Records one :class:`RewriteTrace`; install with :func:`activate`.

    Not thread-safe: a tracer belongs to exactly one request on one
    thread, which is what the contextvar scoping provides.
    """

    active = True

    def __init__(self, sql: str = "", clock=time.perf_counter):
        self.clock = clock
        self.epoch_started = clock()
        context = current_trace_context()
        self.trace = RewriteTrace(
            sql=sql,
            trace_id=context.trace_id if context is not None else None,
        )
        # The filter-tree hook fires inside ViewMatcher.candidates, before
        # the match loop; the invocation hook then claims the attribution.
        self._pending_levels: tuple[FilterLevelTrace, ...] = ()

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attributes) -> _RecordedSpan:
        span = Span(
            name=name,
            started=self.clock() - self.epoch_started,
            attributes=dict(attributes),
        )
        self.trace.spans.append(span)
        return _RecordedSpan(self, span)

    def record_span(self, name: str, duration: float, **attributes) -> None:
        """Append an already-measured stage (ends now, started ``duration`` ago)."""
        ended = self.clock() - self.epoch_started
        self.trace.spans.append(
            Span(
                name=name,
                started=max(0.0, ended - duration),
                duration=duration,
                attributes=dict(attributes),
            )
        )

    # -- hooks ---------------------------------------------------------------

    def on_filter_tree(self, tree, query, candidates) -> None:
        """Called by :meth:`FilterTree.candidates` after one search.

        Attribution (which level pruned which view) is recomputed by
        direct per-level evaluation -- affordable because it only runs for
        traced requests.
        """
        self._pending_levels = tuple(
            FilterLevelTrace(
                level=name,
                entering=entering,
                survivors=survivors,
                pruned=tuple(pruned),
            )
            for name, entering, survivors, pruned in tree.level_attribution(
                query
            )
        )

    def on_match_invocation(self, registered, candidates, results) -> None:
        """Called by :meth:`ViewMatcher.match` with the invocation's results."""
        funnel = tuple(
            CandidateTrace(
                view=result.view.name or "<unnamed>",
                matched=result.matched,
                reject_reason=(
                    result.reject_reason.name
                    if result.reject_reason is not None
                    else None
                ),
                reject_detail=result.reject_detail,
                compensation=(
                    tuple(result.compensation_steps())
                    if result.matched
                    else ()
                ),
                stage=getattr(result, "stage", "verify"),
            )
            for result in results
        )
        self.trace.invocations.append(
            MatchInvocationTrace(
                registered=registered,
                candidates=len(candidates),
                levels=self._pending_levels,
                funnel=funnel,
            )
        )
        self._pending_levels = ()

    def on_plan_choice(self, alternatives) -> None:
        """Called by the optimizer with the final costed alternatives."""
        self.trace.plan_alternatives.extend(alternatives)

    # -- lifecycle -----------------------------------------------------------

    def finish(
        self,
        cache_hit: bool | None = None,
        epoch: int | None = None,
        error: str | None = None,
    ) -> RewriteTrace:
        """Seal the trace with request-level metadata and total latency."""
        self.trace.total_seconds = self.clock() - self.epoch_started
        if cache_hit is not None:
            self.trace.cache_hit = cache_hit
        if epoch is not None:
            self.trace.epoch = epoch
        if error is not None:
            self.trace.error = error
        return self.trace


# ---------------------------------------------------------------------------
# Contextvar scoping
# ---------------------------------------------------------------------------

_CURRENT_TRACER: ContextVar = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer():
    """The tracer scoped to the current context (the null tracer by default)."""
    return _CURRENT_TRACER.get()


def activate(tracer):
    """Install ``tracer`` for the current context; returns a reset token."""
    return _CURRENT_TRACER.set(tracer)


def deactivate(token) -> None:
    """Undo a prior :func:`activate`."""
    _CURRENT_TRACER.reset(token)


@contextmanager
def tracing(tracer=None):
    """Scope a tracer to a ``with`` block; yields the (possibly new) tracer.

    >>> with tracing() as tracer:
    ...     matcher.match(query)
    >>> tracer.trace.invocations
    """
    if tracer is None:
        tracer = RewriteTracer()
    token = activate(tracer)
    try:
        yield tracer
    finally:
        deactivate(token)


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------


class TraceSampler:
    """Deterministic 1-in-N request sampling.

    ``rate`` is the sampled fraction: 0 never samples, 1 (or more)
    samples everything, 0.01 samples every 100th request. Deterministic
    (a shared counter, no RNG) so tests and benchmarks are reproducible;
    the counter is a single ``itertools.count`` step, which is atomic
    under the GIL.
    """

    def __init__(self, rate: float):
        if rate < 0.0:
            raise ValueError("sample rate must be non-negative")
        self.rate = rate
        self._period = 0 if rate <= 0.0 else max(1, round(1.0 / rate))
        self._counter = itertools.count()

    @property
    def period(self) -> int:
        """Every ``period``-th request is sampled (0 = never)."""
        return self._period

    def should_sample(self) -> bool:
        if self._period == 0:
            return False
        return next(self._counter) % self._period == 0


__all__ = [
    "CandidateTrace",
    "FilterLevelTrace",
    "MatchInvocationTrace",
    "NULL_TRACER",
    "NullTracer",
    "PlanAlternative",
    "RewriteTrace",
    "RewriteTracer",
    "Span",
    "TRACE_VERSION",
    "TraceSampler",
    "activate",
    "current_tracer",
    "deactivate",
    "tracing",
]
