"""Transformation-based optimizer with integrated view matching."""

from .cost import DEFAULT_COST_MODEL, CostModel
from .optimizer import OptimizationResult, Optimizer, OptimizerConfig
from .plans import (
    BlockNode,
    DirectNode,
    FinishNode,
    HashJoinNode,
    PlanNode,
    describe_plan,
    plan_result,
)

__all__ = [
    "BlockNode",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DirectNode",
    "FinishNode",
    "HashJoinNode",
    "OptimizationResult",
    "Optimizer",
    "OptimizerConfig",
    "PlanNode",
    "describe_plan",
    "plan_result",
]
