"""A simple row-based cost model.

Costs are in abstract "rows touched" units: scanning a relation costs its
row count, a hash join costs build + probe + output, grouping costs input +
output. Materialized views are clustered, so a substitute costs a scan of
the view's (usually far smaller) extent plus the compensation work. The
model is deliberately coarse -- the paper's point is that substitutes enter
*normal* cost-based optimization, not that the cost model is clever.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cost-model constants; one instance is shared per optimizer."""

    row_cost: float = 1.0
    filter_cpu_factor: float = 0.1
    group_cpu_factor: float = 1.0

    def scan(self, rows: float) -> float:
        return self.row_cost * max(rows, 1.0)

    def filter(self, input_rows: float) -> float:
        return self.filter_cpu_factor * max(input_rows, 1.0)

    def hash_join(self, left_rows: float, right_rows: float, out_rows: float) -> float:
        return self.row_cost * (
            max(left_rows, 1.0) + max(right_rows, 1.0) + max(out_rows, 1.0)
        )

    def cross_join(self, left_rows: float, right_rows: float) -> float:
        return self.row_cost * max(left_rows * right_rows, 1.0)

    def group(self, input_rows: float, groups: float) -> float:
        return self.group_cpu_factor * (max(input_rows, 1.0) + max(groups, 1.0))

    def block(self, scan_rows: float, filtered: bool) -> float:
        """Cost of producing a leaf block from one stored relation."""
        cost = self.scan(scan_rows)
        if filtered:
            cost += self.filter(scan_rows)
        return cost

    def index_seek(self, matching_rows: float) -> float:
        """Cost of an index seek returning ``matching_rows`` rows."""
        return 10.0 * self.row_cost + self.row_cost * max(matching_rows, 1.0)


DEFAULT_COST_MODEL = CostModel()
